"""Replay a full day of ride requests through the online dispatchers.

Scenario (the paper's first motivating application): an Uber-style platform
receives orders in real time and must answer each rider instantly — accept
and name a driver, or reject.  The platform cannot see future orders, so the
offline planner is out; the paper's two online heuristics compete instead.

The script:

1. generates a day of trips and feeds every pickup request into a zone-based
   surge engine so the fares reflect local demand/supply imbalance (Eq. 15
   with a dynamic multiplier);
2. replays the priced order stream through the Nearest (Algorithm 3) and
   maxMargin (Algorithm 4) dispatchers, plus the value-sorted offline variant
   of maxMargin the paper sketches;
3. compares profit, serve rate and rejection counts, and shows how far each
   online rule lands from the clairvoyant offline greedy plan.

Run with::

    python examples/online_dispatch_day.py
"""

from __future__ import annotations

from repro import (
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    market_from_trace,
)
from repro.analysis import format_table
from repro.online import TaskOrdering, run_online
from repro.pricing import SurgeConfig, SurgeEngine, SurgePricing


def main() -> None:
    trips = generate_trace(trip_count=250, seed=21)
    drivers = generate_drivers(count=45, seed=22)

    # Feed the surge engine with the day's demand and a thinner supply signal,
    # then price every order with the resulting zone multipliers.
    engine = SurgeEngine(SurgeConfig(sensitivity=0.6, max_multiplier=2.5))
    for trip in trips:
        engine.record_demand(trip.origin, trip.start_ts)
    for driver in drivers:
        engine.record_supply(driver.source, driver.start_ts)
    market = market_from_trace(trips, drivers, pricing=SurgePricing(engine=engine))

    surged = sum(
        1
        for task, trip in zip(market.tasks, trips)
        if engine.multiplier(trip.origin, trip.start_ts) > 1.0
    )
    print(f"{market.task_count} orders priced; {surged} of them carry a surge multiplier > 1.0")

    outcomes = {
        "Nearest (Algorithm 3)": run_online(market, NearestDispatcher(seed=3)),
        "maxMargin (Algorithm 4)": run_online(market, MaxMarginDispatcher()),
        "maxMargin, value-sorted (offline variant)": run_online(
            market, MaxMarginDispatcher(), ordering=TaskOrdering.VALUE
        ),
    }
    offline = greedy_assignment(market)

    rows = []
    for name, outcome in outcomes.items():
        rows.append(
            [
                name,
                outcome.total_value,
                outcome.total_value / offline.total_value,
                outcome.serve_rate,
                len(outcome.rejected_tasks),
            ]
        )
    rows.append(
        ["Greedy (clairvoyant offline)", offline.total_value, 1.0, offline.serve_rate, 0]
    )

    print()
    print(
        format_table(
            ["dispatcher", "drivers' profit", "vs offline", "serve rate", "rejected"], rows
        )
    )

    max_margin = outcomes["maxMargin (Algorithm 4)"]
    busiest = max(max_margin.records, key=lambda r: r.task_count)
    print(
        f"\nUnder maxMargin the busiest driver ({busiest.driver_id}) chained "
        f"{busiest.task_count} rides for {busiest.profit:.2f} in profit."
    )


if __name__ == "__main__":
    main()
