"""Offline fleet planning for a delivery service.

Scenario (the paper's second motivating application): an on-demand product
delivery platform knows tonight's batch of delivery orders in advance —
every order has a pickup window at a depot-side location and a drop-off
deadline at the customer.  The platform must hand each courier a complete
travel plan before the shift starts.

The script builds such a batch, plans it offline three ways — the greedy
approximation, the exact MILP optimum (the instance is small enough) and the
LP relaxation — and prints each courier's itinerary, demonstrating:

* the individual-rationality guarantee (no courier loses money),
* how close the 1/(D+1)-approximate greedy plan gets to the true optimum,
* the per-courier task lists a dispatcher would actually hand out.

Run with::

    python examples/offline_fleet_planning.py
"""

from __future__ import annotations

from repro import (
    exact_optimum,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    lp_relaxation_bound,
    market_diameter,
    market_from_trace,
)
from repro.analysis import format_table
from repro.pricing import FareSchedule, LinearPricing
from repro.trace import WorkingModel


def main() -> None:
    # Tonight's batch: 60 delivery orders, 12 couriers doing evening shifts
    # that start and end at home ("home-work-home" working model).
    orders = generate_trace(trip_count=60, seed=11)
    couriers = generate_drivers(count=12, working_model=WorkingModel.HOME_WORK_HOME, seed=12)
    # Deliveries are priced per distance only (no per-minute meter).
    pricing = LinearPricing(schedule=FareSchedule(beta1_per_km=1.1, beta2_per_s=0.0, base_fare=1.5))
    market = market_from_trace(orders, couriers, pricing=pricing)

    print(f"Planning {market.task_count} deliveries for {market.driver_count} couriers")
    print(f"Maximum deliveries any single courier could chain (diameter D): {market_diameter(market)}")

    greedy = greedy_assignment(market)
    greedy.validate()
    exact = exact_optimum(market)
    bound = lp_relaxation_bound(market).upper_bound

    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["greedy plan profit", greedy.total_value],
                ["exact optimum Z*", exact.optimum],
                ["LP relaxation Z*_f", bound],
                ["greedy / optimum", greedy.total_value / exact.optimum],
                ["deliveries served (greedy)", float(greedy.served_count)],
                ["deliveries served (exact)", float(exact.solution.served_count)],
            ],
        )
    )

    print("\nPer-courier itineraries under the greedy plan:")
    rows = []
    for plan in sorted(greedy.iter_nonempty_plans(), key=lambda p: -p.profit):
        stops = " -> ".join(market.tasks[m].task_id.removeprefix("task-") for m in plan.task_indices)
        rows.append([plan.driver_id, plan.task_count, plan.profit, stops[:60]])
    print(format_table(["courier", "orders", "profit", "route"], rows))

    assert all(plan.profit > 0 for plan in greedy.iter_nonempty_plans()), (
        "individual rationality violated"
    )
    print("\nEvery courier with work earns a strictly positive profit (constraint 5b holds).")


if __name__ == "__main__":
    main()
