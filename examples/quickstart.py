"""Quickstart: build a small ride-sharing market and dispatch it three ways.

Run with::

    python examples/quickstart.py

The script generates one synthetic day of Porto-like trips, turns them into
priced tasks, Monte-Carlo-generates a driver fleet, and then solves the same
market with the paper's three algorithms — the offline greedy (Algorithm 1),
the online maximum-marginal-value heuristic (Algorithm 4) and the online
nearest-driver heuristic (Algorithm 3) — comparing each against the LP
relaxation upper bound Z*_f.
"""

from __future__ import annotations

from repro import (
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    lp_relaxation_bound,
    market_from_trace,
)
from repro.analysis import format_table


def main() -> None:
    print("Generating one synthetic day of trips and a driver fleet ...")
    trips = generate_trace(trip_count=200, seed=1)
    drivers = generate_drivers(count=40, seed=2)
    market = market_from_trace(trips, drivers)
    print(f"  market: {market.task_count} tasks, {market.driver_count} drivers")

    print("Solving offline with the greedy algorithm (Algorithm 1) ...")
    greedy = greedy_assignment(market)
    greedy.validate()

    print("Replaying the day online with maxMargin (Algorithm 4) and Nearest (Algorithm 3) ...")
    max_margin = OnlineSimulator(market, MaxMarginDispatcher()).run()
    nearest = OnlineSimulator(market, NearestDispatcher()).run()

    print("Computing the LP-relaxation upper bound Z*_f ...")
    bound = lp_relaxation_bound(market).upper_bound

    rows = []
    for name, result in (
        ("Greedy (offline)", greedy),
        ("maxMargin (online)", max_margin),
        ("Nearest (online)", nearest),
    ):
        rows.append(
            [
                name,
                result.total_value,
                bound / result.total_value if result.total_value > 0 else float("inf"),
                result.served_count,
                result.serve_rate,
            ]
        )
    print()
    print(format_table(["algorithm", "drivers' profit", "ratio vs Z*_f", "served", "serve rate"], rows))
    print(f"\nLP relaxation upper bound Z*_f = {bound:.2f}")

    busiest = max(greedy.iter_nonempty_plans(), key=lambda plan: plan.task_count)
    print(
        f"\nBusiest driver under the greedy plan: {busiest.driver_id} "
        f"serves {busiest.task_count} rides for a profit of {busiest.profit:.2f}"
    )


if __name__ == "__main__":
    main()
