"""A Waze-Rider-style commute ("hitchhiking") market.

Section IV-C of the paper highlights Google's Waze Rider: commuters offer the
two rides of their daily commute, the platform limits every driver to a
couple of tasks, and prices are kept near cost.  Because each driver takes at
most D = 1 task per direction, the greedy algorithm's ``1/(D+1)`` guarantee
becomes a crisp 1/2 — and in practice it lands essentially on the optimum.

The script builds a morning commute market (drivers with distinct home ->
work travel plans, riders requesting rides inside the same window), solves it
with the greedy algorithm, verifies the D = 1 structure, and compares against
the exact optimum and both online heuristics.

Run with::

    python examples/waze_commute_market.py
"""

from __future__ import annotations

from repro import (
    MaxMarginDispatcher,
    NearestDispatcher,
    exact_optimum,
    generate_trace,
    greedy_assignment,
    market_diameter,
    market_from_trace,
    run_online,
)
from repro.analysis import format_table
from repro.pricing import FareSchedule, LinearPricing
from repro.trace import DriverGenerationConfig, DriverScheduleGenerator, WorkingModel


def main() -> None:
    # Morning-peak ride requests only.
    all_trips = generate_trace(trip_count=800, seed=31)
    morning = [t for t in all_trips if 7.0 * 3600 <= t.start_ts % 86400 < 9.5 * 3600][:80]

    # Commuter drivers: distinct home and work locations, short windows that
    # cover one commute, generated with the hitchhiking working model.
    generator = DriverScheduleGenerator(
        DriverGenerationConfig(
            working_model=WorkingModel.HITCHHIKING,
            shift_hours_mean=0.75,
            shift_hours_jitter=0.2,
            earliest_start_s=7.0 * 3600,
            latest_start_s=8.5 * 3600,
            seed=32,
        )
    )
    commuters = generator.generate_from_trips(morning, count=30)

    # Waze Rider keeps fares near cost: low per-km rate, no per-minute meter.
    pricing = LinearPricing(schedule=FareSchedule(beta1_per_km=0.35, beta2_per_s=0.0, base_fare=0.5))
    market = market_from_trace(morning, commuters, pricing=pricing)

    diameter = market_diameter(market)
    print(
        f"Commute market: {market.task_count} ride requests, {market.driver_count} commuter drivers"
    )
    print(f"Graph diameter D = {diameter} -> greedy guarantee 1/(D+1) = {1.0 / (diameter + 1):.2f}")

    greedy = greedy_assignment(market)
    greedy.validate()
    optimum = exact_optimum(market)
    nearest = run_online(market, NearestDispatcher(seed=5))
    max_margin = run_online(market, MaxMarginDispatcher())

    rows = [
        ["Greedy (offline)", greedy.total_value, greedy.total_value / optimum.optimum, greedy.serve_rate],
        ["maxMargin (online)", max_margin.total_value, max_margin.total_value / optimum.optimum, max_margin.serve_rate],
        ["Nearest (online)", nearest.total_value, nearest.total_value / optimum.optimum, nearest.serve_rate],
        ["Exact optimum Z*", optimum.optimum, 1.0, optimum.solution.serve_rate],
    ]
    print()
    print(format_table(["algorithm", "drivers' profit", "fraction of Z*", "serve rate"], rows))

    rides_per_driver = [plan.task_count for plan in greedy.iter_nonempty_plans()]
    print(
        f"\nUnder the greedy plan {len(rides_per_driver)} commuters give rides; "
        f"the largest task list has {max(rides_per_driver)} ride(s) "
        "(the short commute windows keep D small, exactly the Waze Rider regime)."
    )


if __name__ == "__main__":
    main()
