"""Serving a live order stream over a sharded city on a persistent pool.

``examples/distributed_city.py`` re-solves a *known* day offline.  A real
platform never sees the day up front: orders arrive continuously, and the
dispatcher must answer within a window.  This example runs that workload:

1. build one day of the Porto market and group its orders into
   publish-ordered arrival batches (one per dispatch window);
2. replay the stream unsharded with the batched Hungarian dispatcher — the
   quality reference;
3. stream the same batches through ``DistributedCoordinator.solve_stream``:
   each district shard holds a live ``StreamingMarketInstance`` inside a
   persistent worker pool, only the new task columns cross the process
   boundary per batch, and the merged result is bit-identical to a serial
   per-shard replay;
4. stream a *second* day on the same coordinator — the pool (and its forked
   workers) is reused, which is where the persistent pool pays off across
   re-solves and ablation sweeps;
5. let the skew-aware rebalancer split the hottest district between windows
   and show the critical-path cap lifting.

Run with::

    python examples/streaming_city.py
"""

from __future__ import annotations

import time

from repro import (
    DistributedCoordinator,
    PORTO,
    SpatialPartitioner,
    generate_drivers,
    generate_trace,
    market_from_trace,
)
from repro.analysis import format_table
from repro.distributed import RebalancePolicy
from repro.online.batch import BatchConfig, run_batched, window_batches

WINDOW_S = 600.0


def build_day(seed: int):
    trips = generate_trace(trip_count=600, seed=seed)
    drivers = generate_drivers(count=100, seed=seed + 1)
    market = market_from_trace(trips, drivers)
    return market, window_batches(market.tasks, WINDOW_S)


def main() -> None:
    market, batches = build_day(seed=51)
    config = BatchConfig(window_s=WINDOW_S)
    print(
        f"City market: {market.task_count} orders over {len(batches)} arrival "
        f"windows, {market.driver_count} drivers"
    )

    # Unsharded replay: the quality reference (no partition loss).
    start = time.perf_counter()
    replay = run_batched(market, config=config)
    replay_s = time.perf_counter() - start
    print(
        f"Unsharded batched replay: profit {replay.total_value:.2f}, "
        f"serve rate {replay.serve_rate:.0%}, {replay_s:.2f}s"
    )

    rows = []
    with DistributedCoordinator(
        SpatialPartitioner(PORTO, 2, 2), executor="process"
    ) as coordinator:
        # First stream: includes forking the worker pool.
        start = time.perf_counter()
        first = coordinator.solve_stream(market, batches, config=config)
        first_s = time.perf_counter() - start

        # Second day on the SAME pool: startup is already paid.
        second_market, second_batches = build_day(seed=77)
        start = time.perf_counter()
        second = coordinator.solve_stream(second_market, second_batches, config=config)
        second_s = time.perf_counter() - start

        rows.append(_row("day 1, cold pool", first, first_s))
        rows.append(_row("day 2, warm pool", second, second_s))

        # Skew-aware rebalance: split hot districts between windows.
        policy = RebalancePolicy(
            check_every_batches=4, hot_factor=1.2, min_split_tasks=30, max_shards=8
        )
        start = time.perf_counter()
        rebalanced = coordinator.solve_stream(
            market, batches, config=config, rebalance=policy
        )
        rebalanced_s = time.perf_counter() - start
        rows.append(
            _row(
                f"day 1, {rebalanced.report.rebalance_count} rebalances",
                rebalanced,
                rebalanced_s,
            )
        )

    print()
    print(
        format_table(
            ["stream", "shards", "profit", "serve rate", "critical-path x", "wall clock (s)"],
            rows,
        )
    )
    print(
        "\nThe sharded stream trades the cross-district trips for an "
        "embarrassingly parallel live dispatch; the persistent pool amortises "
        "worker startup across days, and splitting hot districts lifts the "
        "total/slowest critical-path cap toward the shard count."
    )


def _row(label: str, result, elapsed: float):
    return [
        label,
        result.report.shard_count,
        result.solution.total_value,
        result.solution.served_count / max(1, result.solution.instance.task_count),
        result.report.critical_path_speedup,
        elapsed,
    ]


if __name__ == "__main__":
    main()
