"""Declarative city workloads: the scenario engine end to end.

Every other example runs the one calibrated synthetic Porto day.  Real
platforms live off the happy path — a stadium lets out, rain slows the
whole city, a third of the fleet goes on strike — and the scenario engine
expresses those days declaratively and compiles them deterministically into
the exact inputs the offline and streaming stacks already consume.  This
walkthrough:

1. lists the built-in scenario library (one spec per imagined city day);
2. composes a *custom* scenario — an evening festival with a road closure
   and a late supply shock — from the typed event vocabulary;
3. compiles it twice and shows the compile is bit-reproducible;
4. runs it through the offline sharded solver and as a live sharded stream
   on a persistent worker pool — same compiled artifacts, both stacks;
5. sweeps several scenarios x dispatch modes on one warm pool with the
   scenario suite and prints the comparison table (serve rate, revenue,
   mean customer wait, shard-load skew).

Run with::

    python examples/scenario_showcase.py
"""

from __future__ import annotations

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.online.batch import BatchConfig
from repro.scenarios import (
    DemandSurge,
    ScenarioSpec,
    SpatialFootprint,
    SupplyShock,
    ZoneClosure,
    compile_scenario,
    get_scenario,
    run_scenario_suite,
    scenario_names,
)

#: Small enough for a laptop demo, large enough to show scenario contrasts.
TRIPS, DRIVERS = 300, 36


def showcase_library() -> None:
    print("=== built-in scenario library ===")
    for name in scenario_names():
        spec = get_scenario(name)
        events = ", ".join(type(event).__name__ for event in spec.events)
        print(f"  {name:18s} [{events}]")
    print()


def build_festival() -> ScenarioSpec:
    """A custom scenario: riverfront festival, cordon, late reinforcements."""
    riverfront = SpatialFootprint(south=0.05, west=0.30, north=0.30, east=0.70)
    cordon = SpatialFootprint(south=0.30, west=0.40, north=0.45, east=0.60)
    return ScenarioSpec(
        name="riverfront-festival",
        description="Evening festival on the river: surge, cordon, reinforcements.",
        trip_count=TRIPS,
        driver_count=DRIVERS,
        events=(
            DemandSurge(start_hour=19.0, end_hour=23.0, intensity=3.0, footprint=riverfront),
            ZoneClosure(start_hour=18.0, end_hour=23.0, footprint=cordon),
            SupplyShock(at_hour=20.0, driver_fraction=0.25, duration_hours=5.0),
        ),
    )


def run_festival(spec: ScenarioSpec) -> None:
    print(f"=== {spec.name}: compile + both stacks ===")
    compiled = compile_scenario(spec)
    again = compile_scenario(spec)
    print(
        f"compiled {len(compiled.trips)} trips, {compiled.instance.task_count} tasks, "
        f"{compiled.instance.driver_count} drivers"
    )
    print(f"deterministic: {compiled.checksum() == again.checksum()} "
          f"(checksum {compiled.checksum()[:12]})")

    partitioner = SpatialPartitioner(spec.region, 2, 2)
    with DistributedCoordinator(partitioner, "greedy", executor="process") as coordinator:
        offline = coordinator.solve(compiled.instance, reuse_pool=True)
        print(
            f"offline-greedy : serve {offline.solution.serve_rate:.3f}, "
            f"value {offline.solution.total_value:.1f}, "
            f"{offline.report.shard_count} shards"
        )
        streamed = coordinator.solve_stream(
            compiled.instance,
            compiled.arrival_batches(),
            config=BatchConfig(window_s=spec.window_s),
            pool=coordinator.stream_pool(),
        )
        print(
            f"stream-batched : serve {streamed.solution.serve_rate:.3f}, "
            f"value {streamed.solution.total_value:.1f}, "
            f"mean wait {streamed.report.mean_wait_s:.0f}s, "
            f"{streamed.report.batch_count} batches"
        )
    print()


def compare_city_days() -> None:
    print("=== scenario suite: one warm pool, scenarios x modes ===")
    suite = run_scenario_suite(
        [
            get_scenario(name).with_scale(TRIPS, DRIVERS)
            for name in ("morning-surge", "rainy-day", "driver-strike")
        ],
        solvers=("greedy",),
        stream=True,
        executor="process",
        worker_count=2,
    )
    print(suite.render())


def main() -> None:
    showcase_library()
    spec = build_festival()
    run_festival(spec)
    compare_city_days()


if __name__ == "__main__":
    main()
