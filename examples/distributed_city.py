"""Distributed solving of a city-scale market.

The paper argues the matching problem must be partitioned at city scale to be
tractable — but not much further, because riders and drivers cross district
boundaries.  This example makes that trade-off concrete, and shows the
coordinator's *executor policy* knob (``serial`` / ``thread`` / ``process``):

1. build one day of the Porto market;
2. solve it centrally with the greedy algorithm;
3. shard it into a 2x2 district grid and solve every shard under each
   executor policy via the :class:`DistributedCoordinator` — the merged
   solutions are bit-identical, only the wall clock changes;
4. sweep the grid to 4x4 districts and report how much objective value each
   sharding retains.

Pick ``executor="process"`` for city-scale instances (every core solves its
own shards), ``"thread"`` when NumPy kernels dominate, and ``"serial"`` for
tests and debugging — see ``repro/distributed/coordinator.py`` for the full
decision guide.  For consuming a *live* order stream over the same shards,
see ``examples/streaming_city.py``.

Run with::

    python examples/distributed_city.py
"""

from __future__ import annotations

import time

from repro import (
    DistributedCoordinator,
    PORTO,
    SpatialPartitioner,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    market_from_trace,
)
from repro.analysis import format_table
from repro.distributed import EXECUTOR_POLICIES


def main() -> None:
    trips = generate_trace(trip_count=400, seed=41)
    drivers = generate_drivers(count=80, seed=42)
    market = market_from_trace(trips, drivers)
    print(f"City market: {market.task_count} tasks, {market.driver_count} drivers")

    start = time.perf_counter()
    central = greedy_assignment(market)
    central_time = time.perf_counter() - start
    print(f"Central greedy: profit {central.total_value:.2f} in {central_time:.2f}s")

    # --- executor policies: same 2x2 sharding, bit-identical merges -------
    print("\nExecutor policies on the 2x2 grid (identical merged solutions):")
    policy_rows = []
    fingerprints = set()
    for executor in EXECUTOR_POLICIES:
        coordinator = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), solver_name="greedy", executor=executor
        )
        start = time.perf_counter()
        result = coordinator.solve(market)
        elapsed = time.perf_counter() - start
        fingerprints.add(
            (
                result.solution.total_value,
                tuple(sorted(result.solution.assignment().items())),
            )
        )
        policy_rows.append(
            [
                executor,
                result.report.worker_count,
                result.solution.total_value,
                elapsed,
                result.report.critical_path_speedup,
            ]
        )
    assert len(fingerprints) == 1, "executor policies must merge identically"
    print(
        format_table(
            ["executor", "workers", "profit", "wall clock (s)", "critical-path x"],
            policy_rows,
        )
    )

    # --- grid sweep: the retention/speed trade-off ------------------------
    rows = [["central (1 shard)", 1, central.total_value, 1.0, central_time, central.served_count]]
    for grid in ((2, 2), (4, 4)):
        coordinator = DistributedCoordinator(
            SpatialPartitioner(PORTO, *grid), solver_name="greedy", executor="process"
        )
        start = time.perf_counter()
        result = coordinator.solve(market)
        elapsed = time.perf_counter() - start
        result.solution.validate()
        rows.append(
            [
                f"{grid[0]}x{grid[1]} districts",
                result.report.shard_count,
                result.solution.total_value,
                result.solution.total_value / central.total_value,
                elapsed,
                result.solution.served_count,
            ]
        )
        busiest = max(result.plan.shards, key=lambda s: s.task_count)
        print(
            f"  {grid[0]}x{grid[1]}: slowest shard {result.report.slowest_shard_s * 1000:.0f} ms, "
            f"busiest district has {busiest.task_count} tasks / {busiest.driver_count} drivers"
        )

    print()
    print(
        format_table(
            ["deployment", "shards", "profit", "retention", "wall clock (s)", "served"], rows
        )
    )
    print(
        "\nFiner grids cut per-shard work but lose the cross-district trips the paper "
        "warns about: district-level sharding trades a few percent of profit for an "
        "embarrassingly parallel solve."
    )


if __name__ == "__main__":
    main()
