"""Distributed solving of a city-scale market.

The paper argues the matching problem must be partitioned at city scale to be
tractable — but not much further, because riders and drivers cross district
boundaries.  This example makes that trade-off concrete:

1. build one day of the Porto market;
2. solve it centrally with the greedy algorithm;
3. shard it into 2x2 and 4x4 district grids, solve every shard independently
   on a thread pool via the :class:`DistributedCoordinator`, and merge;
4. report how much objective value each sharding retains and how the
   per-shard work shrinks.

Run with::

    python examples/distributed_city.py
"""

from __future__ import annotations

import time

from repro import (
    DistributedCoordinator,
    PORTO,
    SpatialPartitioner,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    market_from_trace,
)
from repro.analysis import format_table


def main() -> None:
    trips = generate_trace(trip_count=400, seed=41)
    drivers = generate_drivers(count=80, seed=42)
    market = market_from_trace(trips, drivers)
    print(f"City market: {market.task_count} tasks, {market.driver_count} drivers")

    start = time.perf_counter()
    central = greedy_assignment(market)
    central_time = time.perf_counter() - start
    print(f"Central greedy: profit {central.total_value:.2f} in {central_time:.2f}s")

    rows = [["central (1 shard)", 1, central.total_value, 1.0, central_time, central.served_count]]
    for grid in ((2, 2), (4, 4)):
        coordinator = DistributedCoordinator(
            SpatialPartitioner(PORTO, *grid), solver_name="greedy", parallel=True
        )
        start = time.perf_counter()
        result = coordinator.solve(market)
        elapsed = time.perf_counter() - start
        result.solution.validate()
        rows.append(
            [
                f"{grid[0]}x{grid[1]} districts",
                result.report.shard_count,
                result.solution.total_value,
                result.solution.total_value / central.total_value,
                elapsed,
                result.solution.served_count,
            ]
        )
        busiest = max(result.plan.shards, key=lambda s: s.task_count)
        print(
            f"  {grid[0]}x{grid[1]}: slowest shard {result.report.slowest_shard_s * 1000:.0f} ms, "
            f"busiest district has {busiest.task_count} tasks / {busiest.driver_count} drivers"
        )

    print()
    print(
        format_table(
            ["deployment", "shards", "profit", "retention", "wall clock (s)", "served"], rows
        )
    )
    print(
        "\nFiner grids cut per-shard work but lose the cross-district trips the paper "
        "warns about: district-level sharding trades a few percent of profit for an "
        "embarrassingly parallel solve."
    )


if __name__ == "__main__":
    main()
