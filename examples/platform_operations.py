"""Platform-operations view: batched dispatch, fleet fairness and persistence.

This example goes beyond the paper's figures and shows the operational tools
built around the core algorithms:

1. **Batched dispatch** — the rolling-horizon matcher (the usual next step
   after the paper's per-order heuristics) swept over several window lengths.
2. **Fleet statistics** — how evenly the work and the income spread across
   drivers (Gini coefficient, active fraction, empty-mileage ratio) for the
   offline plan vs. the online heuristic.
3. **Persistence** — the exact market instance and the chosen plan are saved
   to JSON so the run can be reproduced or audited later
   (`repro solve --market ...` on the command line reads the same file).

Run with::

    python examples/platform_operations.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    MaxMarginDispatcher,
    OnlineSimulator,
    fleet_stats,
    generate_drivers,
    generate_trace,
    greedy_assignment,
    load_instance,
    market_from_trace,
    run_batched,
    save_instance,
    save_solution,
)
from repro.analysis import format_table


def main() -> None:
    trips = generate_trace(trip_count=220, seed=51)
    drivers = generate_drivers(count=40, seed=52)
    market = market_from_trace(trips, drivers)
    print(f"Market: {market.task_count} orders, {market.driver_count} drivers")

    # --- 1. dispatch policies -------------------------------------------------
    offline = greedy_assignment(market)
    per_order = OnlineSimulator(market, MaxMarginDispatcher()).run()
    rows = [
        ["offline greedy", offline.total_value, offline.serve_rate],
        ["per-order maxMargin", per_order.total_value, per_order.serve_rate],
    ]
    for window in (30.0, 120.0, 300.0):
        batched = run_batched(market, window_s=window)
        rows.append([f"batched ({window:.0f}s window)", batched.total_value, batched.serve_rate])
    print()
    print(format_table(["dispatch policy", "drivers' profit", "serve rate"], rows))

    # --- 2. fleet fairness ----------------------------------------------------
    print("\nFleet statistics (offline greedy vs. per-order maxMargin):")
    stats_rows = []
    for name, assignment in (
        ("offline greedy", offline.assignment()),
        ("maxMargin", per_order.assignment()),
    ):
        stats = fleet_stats(market, assignment)
        stats_rows.append(
            [
                name,
                stats.active_fraction,
                stats.gini_revenue,
                stats.mean_utilization,
                stats.mean_empty_ratio,
            ]
        )
    print(
        format_table(
            ["policy", "active fraction", "income Gini", "utilization", "empty-km ratio"],
            stats_rows,
        )
    )

    # --- 3. persistence -------------------------------------------------------
    out_dir = Path(tempfile.mkdtemp(prefix="repro-ops-"))
    market_path = out_dir / "market.json"
    plan_path = out_dir / "greedy_plan.json"
    save_instance(market, market_path)
    save_solution(offline, plan_path, algorithm="greedy")
    reloaded = load_instance(market_path)
    assert reloaded.task_count == market.task_count
    print(f"\nSaved the market to {market_path}")
    print(f"Saved the greedy plan to {plan_path}")
    print("Re-run the same instance from the command line with:")
    print(f"  python -m repro solve --market {market_path} --algorithm greedy")


if __name__ == "__main__":
    main()
