"""Solution representation and feasibility validation.

A :class:`MarketSolution` records which task list (path in her task map) each
driver was assigned, regardless of which algorithm produced it — the offline
greedy, the exact solver or the online heuristics all return this type, which
is what makes head-to-head evaluation straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..market.instance import MarketInstance
from .objectives import Objective, assignment_value, consumer_surplus, total_revenue


class InfeasibleSolutionError(ValueError):
    """Raised by :meth:`MarketSolution.validate` when a solution violates the
    constraints of the optimisation problem (Eqs. 5a-5h)."""


@dataclass(frozen=True, slots=True)
class DriverPlan:
    """One driver's assigned task list and its objective contribution."""

    driver_id: str
    task_indices: Tuple[int, ...]
    profit: float

    @property
    def task_count(self) -> int:
        return len(self.task_indices)


@dataclass(frozen=True)
class MarketSolution:
    """An assignment of node-disjoint task lists to drivers."""

    instance: MarketInstance
    plans: Tuple[DriverPlan, ...]
    objective: Objective = Objective.DRIVERS_PROFIT

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls,
        instance: MarketInstance,
        assignment: Mapping[str, Sequence[int]],
        objective: Objective = Objective.DRIVERS_PROFIT,
    ) -> "MarketSolution":
        """Build a solution from a ``driver_id -> task index list`` mapping,
        computing each driver's profit from her task map.

        Construction is lenient: a task list that is not a feasible path in
        the driver's task map is stored with a profit of 0 and flagged later
        by :meth:`validate`, so callers can always build a solution object
        first and decide how to handle infeasibility afterwards.
        """
        plans: List[DriverPlan] = []
        for driver in instance.drivers:
            path = tuple(assignment.get(driver.driver_id, ()))
            task_map = instance.task_map(driver.driver_id)
            if task_map.is_feasible_path(path):
                profit = task_map.path_profit(path, use_valuation=objective.uses_valuation)
            else:
                profit = 0.0
            plans.append(DriverPlan(driver.driver_id, path, profit))
        return cls(instance=instance, plans=tuple(plans), objective=objective)

    @classmethod
    def empty(
        cls, instance: MarketInstance, objective: Objective = Objective.DRIVERS_PROFIT
    ) -> "MarketSolution":
        """The all-drivers-idle solution (objective value 0)."""
        return cls.from_assignment(instance, {}, objective)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def plan_for(self, driver_id: str) -> DriverPlan:
        for plan in self.plans:
            if plan.driver_id == driver_id:
                return plan
        raise KeyError(f"no plan for driver {driver_id!r}")

    def assignment(self) -> Dict[str, Tuple[int, ...]]:
        """The underlying ``driver_id -> task indices`` mapping (non-empty plans)."""
        return {p.driver_id: p.task_indices for p in self.plans if p.task_indices}

    def served_tasks(self) -> Set[int]:
        """Indices of all tasks served by some driver."""
        served: Set[int] = set()
        for plan in self.plans:
            served.update(plan.task_indices)
        return served

    def iter_nonempty_plans(self) -> Iterator[DriverPlan]:
        for plan in self.plans:
            if plan.task_indices:
                yield plan

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def total_value(self) -> float:
        """The objective value (drivers' total profit, or social welfare)."""
        return sum(plan.profit for plan in self.plans)

    @property
    def served_count(self) -> int:
        return len(self.served_tasks())

    @property
    def serve_rate(self) -> float:
        """Fraction of tasks served (Fig. 7).  1.0 for an empty task set."""
        if self.instance.task_count == 0:
            return 1.0
        return self.served_count / self.instance.task_count

    @property
    def total_revenue(self) -> float:
        """Total payoff of served tasks (Fig. 6)."""
        return total_revenue(self.instance, self.assignment())

    @property
    def consumer_surplus(self) -> float:
        return consumer_surplus(self.instance, self.assignment())

    @property
    def active_driver_count(self) -> int:
        """Drivers with at least one task."""
        return sum(1 for _ in self.iter_nonempty_plans())

    def revenue_per_driver(self) -> float:
        """Average revenue per driver in the fleet (Fig. 8).

        The denominator is the fleet size (not just active drivers), matching
        the congestion story of the paper: adding drivers dilutes everyone's
        income.
        """
        if self.instance.driver_count == 0:
            return 0.0
        return self.total_revenue / self.instance.driver_count

    def tasks_per_driver(self) -> float:
        """Average number of tasks served per driver in the fleet (Fig. 9)."""
        if self.instance.driver_count == 0:
            return 0.0
        return self.served_count / self.instance.driver_count

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every constraint of the optimisation problem.

        * each driver's task list is a feasible path in her task map
          (flow-conservation constraints 5c-5f);
        * no task is served by more than one driver (constraint 5a);
        * every driver's profit is non-negative (individual rationality, 5b);
        * every served task is publishable (customer rationality, 7a).

        Raises
        ------
        InfeasibleSolutionError
            With a message naming the violated constraint.
        """
        known_drivers = {d.driver_id for d in self.instance.drivers}
        seen: Dict[int, str] = {}
        for plan in self.plans:
            if plan.driver_id not in known_drivers:
                raise InfeasibleSolutionError(f"unknown driver {plan.driver_id!r}")
            task_map = self.instance.task_map(plan.driver_id)
            if not task_map.is_feasible_path(plan.task_indices):
                raise InfeasibleSolutionError(
                    f"driver {plan.driver_id!r}: task list {plan.task_indices} is not a "
                    "feasible path in her task map"
                )
            for m in plan.task_indices:
                if m in seen:
                    raise InfeasibleSolutionError(
                        f"task {m} assigned to both {seen[m]!r} and {plan.driver_id!r}"
                    )
                seen[m] = plan.driver_id
                if not self.instance.tasks[m].is_publishable:
                    raise InfeasibleSolutionError(
                        f"task {m} is not publishable (price exceeds customer valuation)"
                    )
            if plan.task_indices and plan.profit < -1e-6:
                raise InfeasibleSolutionError(
                    f"driver {plan.driver_id!r} has negative profit {plan.profit:.4f} "
                    "(individual rationality violated)"
                )

    def is_feasible(self) -> bool:
        """``True`` when :meth:`validate` passes."""
        try:
            self.validate()
        except InfeasibleSolutionError:
            return False
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """A flat metric dictionary for reports and benchmarks."""
        return {
            "total_value": self.total_value,
            "total_revenue": self.total_revenue,
            "served_count": float(self.served_count),
            "serve_rate": self.serve_rate,
            "revenue_per_driver": self.revenue_per_driver(),
            "tasks_per_driver": self.tasks_per_driver(),
            "active_drivers": float(self.active_driver_count),
            "consumer_surplus": self.consumer_surplus,
        }
