"""The two objective functions of the paper.

* **Drivers' profit** (Eq. 4): total task payoff collected by the drivers
  minus the *excess* driving cost (everything they drive beyond their original
  source-to-destination plans).
* **Social welfare** (Eq. 6): the same expression with the customer valuation
  ``b_m`` in place of the price ``p_m`` — i.e. producer surplus plus consumer
  surplus.

Both objectives are evaluated over an assignment of task lists (paths) to
drivers; the per-driver arithmetic lives in
:meth:`repro.market.taskmap.DriverTaskMap.path_profit`.
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence

from ..market.instance import MarketInstance


class Objective(enum.Enum):
    """Which value each served task contributes to the objective."""

    #: Eq. (4) — each served task contributes its price ``p_m``.
    DRIVERS_PROFIT = "drivers_profit"
    #: Eq. (6) — each served task contributes the customer valuation ``b_m``.
    SOCIAL_WELFARE = "social_welfare"

    @property
    def uses_valuation(self) -> bool:
        return self is Objective.SOCIAL_WELFARE


def path_value(
    instance: MarketInstance,
    driver_id: str,
    path: Sequence[int],
    objective: Objective = Objective.DRIVERS_PROFIT,
) -> float:
    """The objective contribution of assigning task list ``path`` to a driver."""
    task_map = instance.task_map(driver_id)
    return task_map.path_profit(path, use_valuation=objective.uses_valuation)


def assignment_value(
    instance: MarketInstance,
    assignment: Mapping[str, Sequence[int]],
    objective: Objective = Objective.DRIVERS_PROFIT,
) -> float:
    """Total objective value of an assignment ``driver_id -> task list``.

    Drivers that do not appear in the mapping take no tasks and contribute 0,
    exactly as the empty path does.
    """
    total = 0.0
    for driver_id, path in assignment.items():
        total += path_value(instance, driver_id, path, objective)
    return total


def total_revenue(instance: MarketInstance, assignment: Mapping[str, Sequence[int]]) -> float:
    """Total payoff of all served tasks — the "total revenue in the market"
    plotted in Fig. 6 of the paper."""
    prices = instance.task_network.prices
    revenue = 0.0
    for path in assignment.values():
        for m in path:
            revenue += float(prices[m])
    return revenue


def consumer_surplus(instance: MarketInstance, assignment: Mapping[str, Sequence[int]]) -> float:
    """Total customer surplus ``sum(b_m - p_m)`` over served tasks."""
    network = instance.task_network
    surplus = 0.0
    for path in assignment.values():
        for m in path:
            surplus += float(network.valuations[m] - network.prices[m])
    return surplus
