"""Core of the framework: objectives, solutions and their validation."""

from .objectives import (
    Objective,
    assignment_value,
    consumer_surplus,
    path_value,
    total_revenue,
)
from .solution import DriverPlan, InfeasibleSolutionError, MarketSolution

__all__ = [
    "Objective",
    "path_value",
    "assignment_value",
    "total_revenue",
    "consumer_surplus",
    "DriverPlan",
    "MarketSolution",
    "InfeasibleSolutionError",
]
