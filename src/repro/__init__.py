"""repro — an optimization framework for online ride-sharing markets.

A production-quality reproduction of *"An Optimization Framework for Online
Ride-sharing Markets"* (Jia, Xu, Liu — ICDCS 2017): the two-sided market
model, per-driver task-map construction, the offline greedy node-disjoint-path
algorithm with its ``1/(D+1)`` guarantee, the LP/exact/Lagrangian upper
bounds, the Nearest and maxMargin online heuristics, surge pricing, a
Porto-like trace substrate, a distributed (sharded) solving mode, a
declarative scenario engine (demand surges, closures, supply shocks —
see :mod:`repro.scenarios`), and the experiment harness that regenerates
every figure of the paper's evaluation.

Quickstart
----------
>>> from repro import (
...     generate_trace, generate_drivers, market_from_trace,
...     greedy_assignment,
... )
>>> trips = generate_trace(trip_count=100, seed=1)
>>> drivers = generate_drivers(count=20, seed=2)
>>> market = market_from_trace(trips, drivers)
>>> solution = greedy_assignment(market)
>>> solution.validate()
>>> round(solution.serve_rate, 2) >= 0.0
True
"""

from .core import (
    DriverPlan,
    InfeasibleSolutionError,
    MarketSolution,
    Objective,
)
from .geo import BoundingBox, GeoPoint, PORTO, TravelModel, default_travel_model
from .market import (
    Driver,
    MarketCostModel,
    MarketInstance,
    Task,
    build_market_graph,
    market_diameter,
    market_from_trace,
    tasks_from_trips,
)
from .offline import (
    GreedySolver,
    best_path,
    brute_force_optimum,
    build_tight_example,
    exact_optimum,
    greedy_assignment,
    lagrangian_bound,
    lp_relaxation_bound,
)
from .online import (
    BatchedSimulator,
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineOutcome,
    OnlineSimulator,
    run_batched,
    run_online,
)
from .pricing import FareSchedule, LinearPricing, SurgeEngine, SurgePricing
from .trace import (
    PortoLikeTraceGenerator,
    TraceConfig,
    TripRecord,
    WorkingModel,
    generate_drivers,
    generate_trace,
    load_porto_trips,
)
from .distributed import DistributedCoordinator, SpatialPartitioner
from .scenarios import (
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    run_scenario_suite,
    scenario_names,
)
from .analysis import BoundKind, PerformanceRatio, compute_upper_bound, fleet_stats
from .io import load_instance, load_solution, save_instance, save_solution
from .experiments import (
    ExperimentConfig,
    ExperimentScale,
    run_distribution_experiment,
    run_everything,
    run_fig5,
    run_market_insight_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Objective",
    "MarketSolution",
    "DriverPlan",
    "InfeasibleSolutionError",
    # geo
    "GeoPoint",
    "BoundingBox",
    "PORTO",
    "TravelModel",
    "default_travel_model",
    # market
    "Driver",
    "Task",
    "MarketCostModel",
    "MarketInstance",
    "market_from_trace",
    "tasks_from_trips",
    "build_market_graph",
    "market_diameter",
    # offline
    "GreedySolver",
    "greedy_assignment",
    "best_path",
    "lp_relaxation_bound",
    "lagrangian_bound",
    "exact_optimum",
    "brute_force_optimum",
    "build_tight_example",
    # online
    "OnlineSimulator",
    "run_online",
    "BatchedSimulator",
    "run_batched",
    "NearestDispatcher",
    "MaxMarginDispatcher",
    "OnlineOutcome",
    # pricing
    "FareSchedule",
    "LinearPricing",
    "SurgeEngine",
    "SurgePricing",
    # trace
    "TripRecord",
    "TraceConfig",
    "PortoLikeTraceGenerator",
    "generate_trace",
    "generate_drivers",
    "WorkingModel",
    "load_porto_trips",
    # distributed
    "SpatialPartitioner",
    "DistributedCoordinator",
    # scenarios
    "ScenarioSpec",
    "compile_scenario",
    "get_scenario",
    "scenario_names",
    "run_scenario_suite",
    # analysis
    "BoundKind",
    "PerformanceRatio",
    "compute_upper_bound",
    "fleet_stats",
    # io
    "save_instance",
    "load_instance",
    "save_solution",
    "load_solution",
    # experiments
    "ExperimentConfig",
    "ExperimentScale",
    "run_distribution_experiment",
    "run_fig5",
    "run_market_insight_sweep",
    "run_everything",
]
