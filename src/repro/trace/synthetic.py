"""Synthetic Porto-like trace generation.

The real ECML/PKDD-15 trace is not available offline, so the evaluation runs
on a synthetic trace calibrated to the marginals the paper reports:

* trip travel times and travel distances with a power-law-shaped heavy tail
  (Figs. 3 and 4 of the paper);
* a 442-taxi fleet operating inside the Porto bounding box;
* a diurnal demand cycle (morning and evening peaks) so that "one day of
  records" is a meaningful workload slice;
* spatially clustered demand (downtown-heavy pickups).

The generator is fully deterministic given a seed, so every benchmark and
test run reproduces the exact same workload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..geo import BoundingBox, GeoPoint, PORTO, TravelModel, default_travel_model
from .powerlaw import PowerLawDistribution
from .records import TripRecord

#: Hook signature for custom pickup sampling: receives the generator's RNG and
#: the trip's start offset (seconds of day) and returns a point, or ``None``
#: to fall back to the generator's default spatial model.
OriginSampler = Callable[[random.Random, float], Optional[GeoPoint]]


def sample_demand_point(
    rng: random.Random, box: BoundingBox, downtown_fraction: float
) -> GeoPoint:
    """The library's canonical spatial demand model: downtown-clustered with
    probability ``downtown_fraction``, uniform otherwise.

    The single source of truth shared by this generator's default pickup
    sampling and the scenario compiler's event samplers — they must draw the
    RNG identically for scenario composition to stay faithful to base
    demand, so any change to the model belongs here, not at a call site.
    """
    if rng.random() < downtown_fraction:
        return box.sample_gaussian(rng)
    return box.sample_uniform(rng)


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Configuration of the synthetic trace generator.

    The defaults reproduce the paper's setup: the Porto service area, a
    442-taxi fleet and heavy-tailed trip durations whose median sits around
    ten minutes (the mode of Fig. 3).
    """

    bounding_box: BoundingBox = PORTO
    fleet_size: int = 442
    #: Power-law exponent of the trip-duration distribution.
    duration_alpha: float = 2.6
    #: Minimum / maximum trip duration in seconds.
    duration_min_s: float = 180.0
    duration_max_s: float = 7200.0
    #: Average driving speed used to derive distances from durations.
    speed_kmh: float = 28.0
    #: Relative jitter applied to per-trip speed (0.2 = +/-20%).
    speed_jitter: float = 0.2
    #: Fraction of demand drawn from the downtown Gaussian cluster.
    downtown_fraction: float = 0.65
    #: Mean number of trips per driver per day.
    trips_per_driver_per_day: float = 12.0
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be >= 1")
        if not 0.0 <= self.downtown_fraction <= 1.0:
            raise ValueError("downtown_fraction must be in [0, 1]")
        if self.duration_min_s <= 0 or self.duration_max_s <= self.duration_min_s:
            raise ValueError("invalid duration bounds")
        if self.speed_kmh <= 0:
            raise ValueError("speed_kmh must be positive")
        if not 0.0 <= self.speed_jitter < 1.0:
            raise ValueError("speed_jitter must be in [0, 1)")
        if self.trips_per_driver_per_day <= 0:
            raise ValueError("trips_per_driver_per_day must be positive")


#: Hourly demand weights (24 entries) modelling Porto's diurnal cycle:
#: a small night trough, a morning peak around 08-09h and an evening peak
#: around 18-19h.
DIURNAL_WEIGHTS: Sequence[float] = (
    0.4, 0.3, 0.25, 0.2, 0.25, 0.4,  # 00-05
    0.8, 1.3, 1.6, 1.4, 1.1, 1.0,    # 06-11
    1.1, 1.0, 0.9, 1.0, 1.2, 1.5,    # 12-17
    1.7, 1.6, 1.3, 1.0, 0.8, 0.6,    # 18-23
)


class PortoLikeTraceGenerator:
    """Generates synthetic trips with Porto-trace-like marginals.

    Two optional hooks let callers (most prominently the scenario engine in
    :mod:`repro.scenarios`) vary demand over time and space without forking
    the generator:

    ``slot_weights``
        Replaces the hourly :data:`DIURNAL_WEIGHTS` with a custom demand
        profile of any resolution: ``K`` weights partition the day into
        ``K`` equal slots (``K=24`` reproduces the hourly default, ``K=96``
        gives 15-minute resolution for sharp surges).  ``None`` keeps the
        built-in diurnal cycle — and consumes the RNG identically to
        previous releases, so existing seeded traces are unchanged.
    ``origin_sampler``
        Called as ``origin_sampler(rng, start_offset_s)`` for every trip;
        returning a point overrides the pickup location, returning ``None``
        falls back to the default downtown-clustered model.  The hook sees
        the generator's own RNG, so a deterministic sampler keeps the whole
        trace deterministic from the seed.
    """

    def __init__(
        self,
        config: TraceConfig | None = None,
        *,
        slot_weights: Optional[Sequence[float]] = None,
        origin_sampler: Optional[OriginSampler] = None,
    ) -> None:
        self.config = config or TraceConfig()
        if slot_weights is not None:
            slot_weights = tuple(float(w) for w in slot_weights)
            if not slot_weights or any(w < 0 for w in slot_weights):
                raise ValueError("slot_weights must be non-empty and non-negative")
            if sum(slot_weights) <= 0:
                raise ValueError("slot_weights must have positive total mass")
        self.slot_weights = slot_weights
        self.origin_sampler = origin_sampler
        self._duration_dist = PowerLawDistribution(
            alpha=self.config.duration_alpha,
            x_min=self.config.duration_min_s,
            x_max=self.config.duration_max_s,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate_day(self, day_index: int = 0, trip_count: Optional[int] = None) -> List[TripRecord]:
        """Generate one day of trips.

        Parameters
        ----------
        day_index:
            Which day of the trace to generate; the seed is derived from it
            so different days differ but each day is reproducible.
        trip_count:
            Total number of trips to generate.  Defaults to
            ``fleet_size * trips_per_driver_per_day``.
        """
        if day_index < 0:
            raise ValueError("day_index must be non-negative")
        cfg = self.config
        rng = random.Random(f"{cfg.seed}:day:{day_index}")
        count = trip_count if trip_count is not None else int(
            round(cfg.fleet_size * cfg.trips_per_driver_per_day)
        )
        if count < 0:
            raise ValueError("trip_count must be non-negative")

        day_start = day_index * 86400.0
        trips: List[TripRecord] = []
        for i in range(count):
            start_offset = self._sample_start_offset(rng)
            duration = self._duration_dist.sample(rng)
            origin = self._sample_location(rng, start_offset)
            destination = self._sample_destination(rng, origin, duration)
            speed = cfg.speed_kmh * (1.0 + rng.uniform(-cfg.speed_jitter, cfg.speed_jitter))
            distance = duration / 3600.0 * speed
            driver_id = f"taxi-{rng.randrange(cfg.fleet_size):04d}"
            trips.append(
                TripRecord(
                    trip_id=f"day{day_index}-trip{i:06d}",
                    driver_id=driver_id,
                    start_ts=day_start + start_offset,
                    end_ts=day_start + start_offset + duration,
                    origin=origin,
                    destination=destination,
                    distance_km=distance,
                )
            )
        trips.sort(key=lambda t: t.start_ts)
        return trips

    def generate_days(self, day_count: int, trips_per_day: Optional[int] = None) -> List[TripRecord]:
        """Generate ``day_count`` consecutive days of trips."""
        if day_count < 0:
            raise ValueError("day_count must be non-negative")
        trips: List[TripRecord] = []
        for day in range(day_count):
            trips.extend(self.generate_day(day, trips_per_day))
        return trips

    # ------------------------------------------------------------------
    # sampling internals
    # ------------------------------------------------------------------
    def _sample_start_offset(self, rng: random.Random) -> float:
        """Sample a second-of-day according to the demand profile.

        Without ``slot_weights`` this is the hourly diurnal cycle (and draws
        the RNG exactly as it always has); with them, the day is divided
        into ``len(slot_weights)`` equal slots and the start is uniform
        within the chosen slot.
        """
        if self.slot_weights is None:
            hour = rng.choices(range(24), weights=DIURNAL_WEIGHTS, k=1)[0]
            return hour * 3600.0 + rng.uniform(0.0, 3600.0)
        slot_count = len(self.slot_weights)
        slot_s = 86400.0 / slot_count
        slot = rng.choices(range(slot_count), weights=self.slot_weights, k=1)[0]
        return slot * slot_s + rng.uniform(0.0, slot_s)

    def _sample_location(self, rng: random.Random, start_offset_s: float = 0.0) -> GeoPoint:
        """Sample a pickup location (hook first, else downtown-clustered or
        uniform)."""
        if self.origin_sampler is not None:
            point = self.origin_sampler(rng, start_offset_s)
            if point is not None:
                return point
        return sample_demand_point(
            rng, self.config.bounding_box, self.config.downtown_fraction
        )

    def _sample_destination(
        self, rng: random.Random, origin: GeoPoint, duration_s: float
    ) -> GeoPoint:
        """Sample a drop-off roughly consistent with the trip duration.

        The crow-fly displacement is the driven distance divided by a 1.3
        circuity factor, placed in a uniformly random direction and clamped
        to the service area.
        """
        cfg = self.config
        distance_km = duration_s / 3600.0 * cfg.speed_kmh
        crow_fly_km = distance_km / 1.3
        bearing = rng.uniform(0.0, 2.0 * math.pi)
        north = crow_fly_km * math.cos(bearing)
        east = crow_fly_km * math.sin(bearing)
        try:
            destination = origin.offset_km(north, east)
        except ValueError:
            destination = origin
        return cfg.bounding_box.clamp(destination)


def generate_trace(
    trip_count: int,
    seed: int = 2017,
    config: TraceConfig | None = None,
) -> List[TripRecord]:
    """Convenience helper: one day of exactly ``trip_count`` synthetic trips."""
    base = config or TraceConfig()
    cfg = TraceConfig(
        bounding_box=base.bounding_box,
        fleet_size=base.fleet_size,
        duration_alpha=base.duration_alpha,
        duration_min_s=base.duration_min_s,
        duration_max_s=base.duration_max_s,
        speed_kmh=base.speed_kmh,
        speed_jitter=base.speed_jitter,
        downtown_fraction=base.downtown_fraction,
        trips_per_driver_per_day=base.trips_per_driver_per_day,
        seed=seed,
    )
    generator = PortoLikeTraceGenerator(cfg)
    return generator.generate_day(0, trip_count=trip_count)
