"""Trace substrate: trip records, Porto loader, synthetic generation, cleaning."""

from .records import DriverShift, TripRecord, shifts_from_trips, slice_by_time
from .powerlaw import (
    PowerLawDistribution,
    complementary_cdf,
    fit_power_law_mle,
    tail_heaviness,
)
from .porto import (
    PORTO_FLEET_SIZE,
    PORTO_SAMPLE_INTERVAL_S,
    PortoFormatError,
    PortoRow,
    iter_porto_rows,
    load_porto_trips,
    parse_polyline,
    parse_row,
    row_to_trip,
    write_porto_csv,
)
from .cleaning import (
    CleaningConfig,
    CleaningReport,
    clean_trips,
    first_n_by_time,
    sample_day,
)
from .synthetic import (
    DIURNAL_WEIGHTS,
    PortoLikeTraceGenerator,
    TraceConfig,
    generate_trace,
)
from .drivers import (
    DriverGenerationConfig,
    DriverScheduleGenerator,
    WorkingModel,
    generate_drivers,
)

__all__ = [
    "TripRecord",
    "DriverShift",
    "shifts_from_trips",
    "slice_by_time",
    "PowerLawDistribution",
    "fit_power_law_mle",
    "complementary_cdf",
    "tail_heaviness",
    "PortoFormatError",
    "PortoRow",
    "PORTO_FLEET_SIZE",
    "PORTO_SAMPLE_INTERVAL_S",
    "parse_polyline",
    "parse_row",
    "row_to_trip",
    "iter_porto_rows",
    "load_porto_trips",
    "write_porto_csv",
    "CleaningConfig",
    "CleaningReport",
    "clean_trips",
    "sample_day",
    "first_n_by_time",
    "TraceConfig",
    "DIURNAL_WEIGHTS",
    "PortoLikeTraceGenerator",
    "generate_trace",
    "DriverGenerationConfig",
    "DriverScheduleGenerator",
    "WorkingModel",
    "generate_drivers",
]
