"""Trace cleaning.

The paper cleans the raw Porto trace with pandas before running experiments.
Pandas is not available in this environment, so this module provides the
equivalent pure-Python filters: dropping degenerate trips, clipping physically
implausible speeds, restricting to the service area, and de-duplicating trip
identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from ..geo import BoundingBox
from .records import TripRecord


@dataclass(frozen=True, slots=True)
class CleaningConfig:
    """Thresholds for :func:`clean_trips`.

    The defaults mirror the implicit assumptions of the paper's evaluation:
    city-scale trips of at least one minute, at most three hours, with
    plausible urban driving speeds.
    """

    min_duration_s: float = 60.0
    max_duration_s: float = 3.0 * 3600.0
    min_distance_km: float = 0.2
    max_distance_km: float = 100.0
    max_speed_kmh: float = 120.0
    bounding_box: BoundingBox | None = None

    def __post_init__(self) -> None:
        if self.min_duration_s < 0 or self.max_duration_s <= self.min_duration_s:
            raise ValueError("invalid duration bounds")
        if self.min_distance_km < 0 or self.max_distance_km <= self.min_distance_km:
            raise ValueError("invalid distance bounds")
        if self.max_speed_kmh <= 0:
            raise ValueError("max_speed_kmh must be positive")


@dataclass(slots=True)
class CleaningReport:
    """Counts of trips removed by each filter, for auditability."""

    input_count: int = 0
    kept: int = 0
    dropped_duration: int = 0
    dropped_distance: int = 0
    dropped_speed: int = 0
    dropped_outside_area: int = 0
    dropped_duplicate: int = 0

    @property
    def dropped_total(self) -> int:
        return self.input_count - self.kept

    def as_dict(self) -> dict:
        return {
            "input_count": self.input_count,
            "kept": self.kept,
            "dropped_duration": self.dropped_duration,
            "dropped_distance": self.dropped_distance,
            "dropped_speed": self.dropped_speed,
            "dropped_outside_area": self.dropped_outside_area,
            "dropped_duplicate": self.dropped_duplicate,
        }


def clean_trips(
    trips: Iterable[TripRecord],
    config: CleaningConfig | None = None,
) -> tuple[List[TripRecord], CleaningReport]:
    """Apply the cleaning filters; return the kept trips and a report.

    Filters are applied in a fixed order (duplicate id, duration, distance,
    speed, service area) and each dropped trip is counted against the first
    filter that rejects it.
    """
    cfg = config or CleaningConfig()
    report = CleaningReport()
    seen_ids: set[str] = set()
    kept: List[TripRecord] = []

    for trip in trips:
        report.input_count += 1
        if trip.trip_id in seen_ids:
            report.dropped_duplicate += 1
            continue
        seen_ids.add(trip.trip_id)

        if not cfg.min_duration_s <= trip.duration_s <= cfg.max_duration_s:
            report.dropped_duration += 1
            continue
        if not cfg.min_distance_km <= trip.distance_km <= cfg.max_distance_km:
            report.dropped_distance += 1
            continue
        if trip.average_speed_kmh > cfg.max_speed_kmh:
            report.dropped_speed += 1
            continue
        if cfg.bounding_box is not None and not (
            cfg.bounding_box.contains(trip.origin)
            and cfg.bounding_box.contains(trip.destination)
        ):
            report.dropped_outside_area += 1
            continue

        kept.append(trip)
        report.kept += 1

    return kept, report


def sample_day(
    trips: Sequence[TripRecord],
    day_index: int,
    day_length_s: float = 86400.0,
) -> List[TripRecord]:
    """Return the trips of the ``day_index``-th day of the trace.

    Day boundaries are measured from the earliest trip start in the
    collection, which matches how the paper selects "1000 records during one
    day in the dataset".
    """
    if day_index < 0:
        raise ValueError("day_index must be non-negative")
    if not trips:
        return []
    epoch = min(t.start_ts for t in trips)
    day_start = epoch + day_index * day_length_s
    day_end = day_start + day_length_s
    return [t for t in trips if day_start <= t.start_ts < day_end]


def first_n_by_time(trips: Sequence[TripRecord], count: int) -> List[TripRecord]:
    """The ``count`` earliest trips by start time (ties broken by trip id)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ordered = sorted(trips, key=lambda t: (t.start_ts, t.trip_id))
    return ordered[:count]
