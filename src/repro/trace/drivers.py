"""Monte-Carlo generation of driver travel plans.

Section VI-A of the paper: "We generate the source and destination of each
driver using Monte Carlo method.  A special case that the driver has the same
source and destination ... is referred to as the 'home-work-home' model (the
working model for full-time drivers on Uber).  There are also cases when the
driver has different source and destination (e.g. the working model for
part-time drivers on Google's Waze Rider), and we refer this working model as
the 'hitchhiking' model."

This module samples those travel plans and, optionally, derives realistic
shift lengths from a trip collection.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geo import BoundingBox, GeoPoint, PORTO
from ..market.driver import Driver
from .records import TripRecord


class WorkingModel(enum.Enum):
    """The two driver working models evaluated in the paper."""

    #: Random, distinct source and destination — part-time commuters
    #: (Google Waze Rider style).
    HITCHHIKING = "hitchhiking"
    #: Source equals destination — full-time drivers who leave home, work a
    #: shift and return (Uber style).
    HOME_WORK_HOME = "home_work_home"


@dataclass(frozen=True, slots=True)
class DriverGenerationConfig:
    """Configuration for :class:`DriverScheduleGenerator`.

    The defaults follow the paper's observation that Uber drivers average
    roughly four hours per working period.
    """

    bounding_box: BoundingBox = PORTO
    working_model: WorkingModel = WorkingModel.HITCHHIKING
    #: Mean and spread of the shift length, in hours.
    shift_hours_mean: float = 4.0
    shift_hours_jitter: float = 1.5
    #: Earliest and latest possible shift start, as seconds of day.
    earliest_start_s: float = 6.0 * 3600.0
    latest_start_s: float = 20.0 * 3600.0
    #: Fraction of drivers whose home is sampled from the downtown cluster.
    downtown_fraction: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.shift_hours_mean <= 0:
            raise ValueError("shift_hours_mean must be positive")
        if self.shift_hours_jitter < 0:
            raise ValueError("shift_hours_jitter must be non-negative")
        if self.latest_start_s < self.earliest_start_s:
            raise ValueError("latest_start_s must not precede earliest_start_s")
        if not 0.0 <= self.downtown_fraction <= 1.0:
            raise ValueError("downtown_fraction must be in [0, 1]")


class DriverScheduleGenerator:
    """Samples driver travel plans (source, destination, working window)."""

    def __init__(self, config: DriverGenerationConfig | None = None) -> None:
        self.config = config or DriverGenerationConfig()

    def generate(self, count: int, day_index: int = 0) -> List[Driver]:
        """Generate ``count`` drivers for day ``day_index``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        cfg = self.config
        rng = random.Random(f"{cfg.seed}:{day_index}:{cfg.working_model.value}")
        day_start = day_index * 86400.0
        drivers: List[Driver] = []
        for i in range(count):
            start_offset = rng.uniform(cfg.earliest_start_s, cfg.latest_start_s)
            shift_hours = max(
                0.5,
                rng.gauss(cfg.shift_hours_mean, cfg.shift_hours_jitter / 2.0),
            )
            start_ts = day_start + start_offset
            end_ts = start_ts + shift_hours * 3600.0
            source = self._sample_point(rng)
            if cfg.working_model is WorkingModel.HOME_WORK_HOME:
                destination = source
            else:
                destination = self._sample_point(rng)
            drivers.append(
                Driver(
                    driver_id=f"driver-{day_index}-{i:04d}",
                    source=source,
                    destination=destination,
                    start_ts=start_ts,
                    end_ts=end_ts,
                )
            )
        return drivers

    def generate_from_trips(
        self,
        trips: Sequence[TripRecord],
        count: Optional[int] = None,
        day_index: int = 0,
    ) -> List[Driver]:
        """Generate drivers whose working windows cover the trip timestamps.

        The shift windows are anchored to the time span of ``trips`` so that a
        sweep such as Fig. 5 ("1000 records during one day, drivers from 20 to
        300") produces drivers who are actually on duty while the selected
        tasks arrive.
        """
        if not trips:
            return self.generate(count or 0, day_index=day_index)
        cfg = self.config
        rng = random.Random(
            f"{cfg.seed}:{day_index}:from-trips:{cfg.working_model.value}"
        )
        span_start = min(t.start_ts for t in trips)
        span_end = max(t.end_ts for t in trips)
        n = count if count is not None else len({t.driver_id for t in trips})
        drivers: List[Driver] = []
        for i in range(n):
            shift_hours = max(
                1.0, rng.gauss(cfg.shift_hours_mean, cfg.shift_hours_jitter / 2.0)
            )
            shift_s = shift_hours * 3600.0
            latest_start = max(span_start, span_end - shift_s)
            start_ts = rng.uniform(span_start, latest_start)
            end_ts = start_ts + shift_s
            source = self._sample_point(rng)
            if cfg.working_model is WorkingModel.HOME_WORK_HOME:
                destination = source
            else:
                destination = self._sample_point(rng)
            drivers.append(
                Driver(
                    driver_id=f"driver-{day_index}-{i:04d}",
                    source=source,
                    destination=destination,
                    start_ts=start_ts,
                    end_ts=end_ts,
                )
            )
        return drivers

    def _sample_point(self, rng: random.Random) -> GeoPoint:
        box = self.config.bounding_box
        if rng.random() < self.config.downtown_fraction:
            return box.sample_gaussian(rng)
        return box.sample_uniform(rng)


def generate_drivers(
    count: int,
    working_model: WorkingModel = WorkingModel.HITCHHIKING,
    bounding_box: BoundingBox = PORTO,
    seed: int = 7,
) -> List[Driver]:
    """Convenience helper mirroring :func:`repro.trace.synthetic.generate_trace`."""
    config = DriverGenerationConfig(
        bounding_box=bounding_box, working_model=working_model, seed=seed
    )
    return DriverScheduleGenerator(config).generate(count)
