"""Loader for the ECML/PKDD-15 Porto taxi trace (Kaggle ``train.csv``).

The paper's evaluation uses this trace: a full year (2013-07-01 to
2014-06-30) of trips for the 442 taxis of Porto, Portugal.  The raw file is
not redistributable and is not available in this offline environment, so the
default workload is the synthetic generator in :mod:`repro.trace.synthetic`;
this module lets users who have downloaded the Kaggle file plug the real data
into the exact same pipeline.

File format (comma-separated, quoted strings)::

    TRIP_ID, CALL_TYPE, ORIGIN_CALL, ORIGIN_STAND, TAXI_ID, TIMESTAMP,
    DAY_TYPE, MISSING_DATA, POLYLINE

``POLYLINE`` is a JSON list of ``[lon, lat]`` pairs sampled every 15 seconds.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..geo import GeoPoint
from .records import TripRecord

#: Number of taxis in the Porto trace, as reported by the paper.
PORTO_FLEET_SIZE = 442

#: GPS sampling interval of the Porto trace, in seconds.
PORTO_SAMPLE_INTERVAL_S = 15.0


class PortoFormatError(ValueError):
    """Raised when a row of the Porto CSV cannot be parsed."""


@dataclass(frozen=True, slots=True)
class PortoRow:
    """A parsed raw row of the Porto CSV, before conversion to a trip."""

    trip_id: str
    call_type: str
    taxi_id: str
    timestamp: float
    day_type: str
    missing_data: bool
    polyline: Sequence[GeoPoint]


def parse_polyline(raw: str) -> List[GeoPoint]:
    """Parse the ``POLYLINE`` JSON column into a list of points.

    The Kaggle file stores coordinates as ``[longitude, latitude]`` pairs.
    """
    try:
        pairs = json.loads(raw) if raw.strip() else []
    except json.JSONDecodeError as exc:
        raise PortoFormatError(f"invalid POLYLINE JSON: {exc}") from exc
    points: List[GeoPoint] = []
    for pair in pairs:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise PortoFormatError(f"invalid polyline element {pair!r}")
        lon, lat = float(pair[0]), float(pair[1])
        points.append(GeoPoint(lat, lon))
    return points


def parse_row(row: dict) -> PortoRow:
    """Parse one csv.DictReader row into a :class:`PortoRow`."""
    try:
        return PortoRow(
            trip_id=row["TRIP_ID"],
            call_type=row.get("CALL_TYPE", ""),
            taxi_id=row["TAXI_ID"],
            timestamp=float(row["TIMESTAMP"]),
            day_type=row.get("DAY_TYPE", ""),
            missing_data=row.get("MISSING_DATA", "False").strip().lower() == "true",
            polyline=parse_polyline(row.get("POLYLINE", "[]")),
        )
    except KeyError as exc:
        raise PortoFormatError(f"missing column {exc}") from exc
    except ValueError as exc:
        if isinstance(exc, PortoFormatError):
            raise
        raise PortoFormatError(str(exc)) from exc


def row_to_trip(row: PortoRow) -> Optional[TripRecord]:
    """Convert a parsed row into a :class:`TripRecord`.

    Returns ``None`` for rows that cannot produce a usable trip (flagged as
    missing data, or with fewer than two GPS samples) — the same rows the
    paper's pandas cleaning step discards.
    """
    if row.missing_data:
        return None
    if len(row.polyline) < 2:
        return None
    return TripRecord.from_polyline(
        trip_id=row.trip_id,
        driver_id=str(row.taxi_id),
        start_ts=row.timestamp,
        polyline=row.polyline,
        sample_interval_s=PORTO_SAMPLE_INTERVAL_S,
    )


def iter_porto_rows(path: Union[str, Path]) -> Iterator[PortoRow]:
    """Stream raw rows from a Porto-format CSV file."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for raw in reader:
            yield parse_row(raw)


def load_porto_trips(
    path: Union[str, Path],
    limit: Optional[int] = None,
) -> List[TripRecord]:
    """Load trips from a Porto-format CSV, dropping unusable rows.

    Parameters
    ----------
    path:
        Path to a ``train.csv``-style file.
    limit:
        Optional maximum number of *usable* trips to return, handy for
        sampling the 1.7-million-row file.
    """
    trips: List[TripRecord] = []
    for row in iter_porto_rows(path):
        trip = row_to_trip(row)
        if trip is None:
            continue
        trips.append(trip)
        if limit is not None and len(trips) >= limit:
            break
    return trips


def trips_to_csv_rows(trips: Iterable[TripRecord]) -> Iterator[dict]:
    """Serialise trips back to Porto-format dictionaries (for round-tripping
    synthetic traces through the same tooling as the real data)."""
    for trip in trips:
        polyline = trip.polyline or (trip.origin, trip.destination)
        yield {
            "TRIP_ID": trip.trip_id,
            "CALL_TYPE": "A",
            "ORIGIN_CALL": "",
            "ORIGIN_STAND": "",
            "TAXI_ID": trip.driver_id,
            "TIMESTAMP": str(int(trip.start_ts)),
            "DAY_TYPE": "A",
            "MISSING_DATA": "False",
            "POLYLINE": json.dumps([[p.lon, p.lat] for p in polyline]),
        }


def write_porto_csv(trips: Iterable[TripRecord], path: Union[str, Path]) -> int:
    """Write trips in Porto CSV format.  Returns the number of rows written."""
    path = Path(path)
    fieldnames = [
        "TRIP_ID",
        "CALL_TYPE",
        "ORIGIN_CALL",
        "ORIGIN_STAND",
        "TAXI_ID",
        "TIMESTAMP",
        "DAY_TYPE",
        "MISSING_DATA",
        "POLYLINE",
    ]
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in trips_to_csv_rows(trips):
            writer.writerow(row)
            count += 1
    return count
