"""Power-law (Pareto-tail) sampling and fitting.

The paper observes (Figs. 3 and 4) that both the travel-time and the
travel-distance distributions of the Porto trace "exhibit the shape following
the power law distribution".  The synthetic trace generator therefore samples
trip durations and distances from a truncated Pareto distribution, and the
analysis package fits power-law exponents back out of trip collections so the
Fig. 3/4 benches can verify the shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class PowerLawDistribution:
    """A Pareto distribution ``p(x) ∝ x^(-alpha)`` for ``x >= x_min``,
    optionally truncated at ``x_max``."""

    alpha: float
    x_min: float
    x_max: float | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a normalisable power law")
        if self.x_min <= 0:
            raise ValueError("x_min must be positive")
        if self.x_max is not None and self.x_max <= self.x_min:
            raise ValueError("x_max must exceed x_min")

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> float:
        """Draw a single value by inverse-transform sampling."""
        u = rng.random()
        return self._inverse_cdf(u)

    def sample_many(self, rng: random.Random, count: int) -> list[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]

    def _inverse_cdf(self, u: float) -> float:
        a = 1.0 - self.alpha
        if self.x_max is None:
            # Unbounded Pareto: F^-1(u) = x_min * (1-u)^(1/(1-alpha))
            return self.x_min * (1.0 - u) ** (1.0 / a)
        lo = self.x_min ** a
        hi = self.x_max ** a
        return (lo + u * (hi - lo)) ** (1.0 / a)

    # ------------------------------------------------------------------
    # densities / moments
    # ------------------------------------------------------------------
    def pdf(self, x: float) -> float:
        """Probability density at ``x`` (0 outside the support)."""
        if x < self.x_min:
            return 0.0
        if self.x_max is not None and x > self.x_max:
            return 0.0
        a = 1.0 - self.alpha
        if self.x_max is None:
            norm = -a / (self.x_min ** a)
        else:
            norm = a / (self.x_max ** a - self.x_min ** a)
        return norm * x ** (-self.alpha)

    def mean(self) -> float:
        """Analytic mean of the (truncated) distribution."""
        if self.x_max is None:
            if self.alpha <= 2.0:
                raise ValueError("mean diverges for alpha <= 2 without truncation")
            return self.x_min * (self.alpha - 1.0) / (self.alpha - 2.0)
        a1 = 1.0 - self.alpha
        a2 = 2.0 - self.alpha
        if abs(a2) < 1e-12:
            numerator = math.log(self.x_max / self.x_min)
        else:
            numerator = (self.x_max ** a2 - self.x_min ** a2) / a2
        denominator = (self.x_max ** a1 - self.x_min ** a1) / a1
        return numerator / denominator


def fit_power_law_mle(samples: Sequence[float], x_min: float | None = None) -> PowerLawDistribution:
    """Fit the exponent of a power law by the standard Hill/MLE estimator.

    ``alpha_hat = 1 + n / sum(ln(x_i / x_min))`` over samples ``x_i >= x_min``.
    If ``x_min`` is not supplied, the smallest positive sample is used.
    """
    values = np.asarray([s for s in samples if s > 0], dtype=float)
    if values.size < 2:
        raise ValueError("need at least two positive samples to fit a power law")
    if x_min is None:
        x_min = float(values.min())
    if x_min <= 0:
        raise ValueError("x_min must be positive")
    tail = values[values >= x_min]
    if tail.size < 2:
        raise ValueError("fewer than two samples at or above x_min")
    log_ratio_sum = float(np.log(tail / x_min).sum())
    if log_ratio_sum <= 0:
        raise ValueError("degenerate samples: all equal to x_min")
    alpha = 1.0 + tail.size / log_ratio_sum
    return PowerLawDistribution(alpha=alpha, x_min=x_min, x_max=float(tail.max()))


def complementary_cdf(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF (survival function) of positive samples.

    Returns ``(sorted_values, P(X >= value))`` — the standard way to display a
    heavy-tailed distribution on log-log axes (Figs. 3 and 4).
    """
    values = np.sort(np.asarray([s for s in samples if s > 0], dtype=float))
    if values.size == 0:
        raise ValueError("no positive samples")
    ranks = np.arange(values.size, 0, -1, dtype=float) / values.size
    return values, ranks


def tail_heaviness(samples: Sequence[float]) -> float:
    """A scale-free heaviness indicator: p99 / median.

    Heavy-tailed (power-law-like) trip collections score well above light
    tailed ones; the Fig. 3/4 tests assert on this rather than on the exact
    exponent, which is noisy for small samples.
    """
    values = np.asarray([s for s in samples if s > 0], dtype=float)
    if values.size == 0:
        raise ValueError("no positive samples")
    median = float(np.percentile(values, 50))
    p99 = float(np.percentile(values, 99))
    if median <= 0:
        raise ValueError("median must be positive")
    return p99 / median
