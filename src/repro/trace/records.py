"""Record types for taxi-trace data.

A :class:`TripRecord` is one customer trip (one row of the ECML/PKDD-15 Porto
trace, or one synthetic trip); a :class:`DriverShift` is one driver's working
period for a day, recovered from the timestamps of her trips exactly as the
paper describes ("we can get the working time of each driver from her driver
ID and the timestamps of her trips").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..geo import GeoPoint, polyline_length_km


@dataclass(frozen=True, slots=True)
class TripRecord:
    """A single completed taxi trip.

    Attributes
    ----------
    trip_id:
        Unique identifier of the trip.
    driver_id:
        Identifier of the driver (taxi) that served the trip.
    start_ts:
        Trip start time, seconds since the start of the trace epoch.
    end_ts:
        Trip end time, seconds since the start of the trace epoch.
    origin / destination:
        Pickup and drop-off locations.
    distance_km:
        Driven distance.  For Porto records this is the polyline length; for
        synthetic records it is drawn from the distance distribution.
    polyline:
        Optional raw GPS trajectory (15-second samples in the Porto trace).
    """

    trip_id: str
    driver_id: str
    start_ts: float
    end_ts: float
    origin: GeoPoint
    destination: GeoPoint
    distance_km: float
    polyline: Optional[Sequence[GeoPoint]] = None

    def __post_init__(self) -> None:
        if self.end_ts < self.start_ts:
            raise ValueError(
                f"trip {self.trip_id!r}: end_ts {self.end_ts} precedes start_ts {self.start_ts}"
            )
        if self.distance_km < 0:
            raise ValueError(f"trip {self.trip_id!r}: negative distance")

    @property
    def duration_s(self) -> float:
        """Trip duration in seconds."""
        return self.end_ts - self.start_ts

    @property
    def duration_min(self) -> float:
        """Trip duration in minutes."""
        return self.duration_s / 60.0

    @property
    def average_speed_kmh(self) -> float:
        """Mean speed over the trip; 0 for zero-duration trips."""
        if self.duration_s <= 0:
            return 0.0
        return self.distance_km / (self.duration_s / 3600.0)

    @classmethod
    def from_polyline(
        cls,
        trip_id: str,
        driver_id: str,
        start_ts: float,
        polyline: Sequence[GeoPoint],
        sample_interval_s: float = 15.0,
    ) -> "TripRecord":
        """Build a record from a GPS polyline, Porto-style.

        The Porto trace samples positions every 15 seconds, so the duration is
        ``(len(polyline) - 1) * 15`` and the distance is the polyline length.
        """
        if len(polyline) < 2:
            raise ValueError(f"trip {trip_id!r}: polyline needs at least two points")
        duration = (len(polyline) - 1) * sample_interval_s
        return cls(
            trip_id=trip_id,
            driver_id=driver_id,
            start_ts=start_ts,
            end_ts=start_ts + duration,
            origin=polyline[0],
            destination=polyline[-1],
            distance_km=polyline_length_km(polyline),
            polyline=tuple(polyline),
        )


@dataclass(frozen=True, slots=True)
class DriverShift:
    """One driver's working period (start of first trip to end of last trip)."""

    driver_id: str
    start_ts: float
    end_ts: float
    trip_count: int

    def __post_init__(self) -> None:
        if self.end_ts < self.start_ts:
            raise ValueError(f"shift of {self.driver_id!r}: end precedes start")
        if self.trip_count < 0:
            raise ValueError("trip_count must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def duration_h(self) -> float:
        return self.duration_s / 3600.0


def shifts_from_trips(trips: Iterable[TripRecord]) -> List[DriverShift]:
    """Recover per-driver shifts from trip timestamps.

    Each driver's shift spans from the start of her earliest trip to the end
    of her latest trip within the supplied collection (the caller slices the
    collection to a day before calling this for daily shifts).
    """
    per_driver: Dict[str, List[TripRecord]] = {}
    for trip in trips:
        per_driver.setdefault(trip.driver_id, []).append(trip)
    shifts = []
    for driver_id, driver_trips in sorted(per_driver.items()):
        start = min(t.start_ts for t in driver_trips)
        end = max(t.end_ts for t in driver_trips)
        shifts.append(
            DriverShift(
                driver_id=driver_id,
                start_ts=start,
                end_ts=end,
                trip_count=len(driver_trips),
            )
        )
    return shifts


def slice_by_time(
    trips: Sequence[TripRecord], start_ts: float, end_ts: float
) -> List[TripRecord]:
    """Trips whose start time falls in ``[start_ts, end_ts)``."""
    if end_ts < start_ts:
        raise ValueError("end_ts must not precede start_ts")
    return [t for t in trips if start_ts <= t.start_ts < end_ts]
