"""Pluggable array-compute backends for the geo and dispatch hot kernels.

The repo's two hottest inner loops — the batch distance metrics of
:mod:`repro.geo.batch` and the window cost-matrix assembly of
:class:`~repro.online.candidates.CandidateKernel` — are pure array
arithmetic.  This module puts them behind a tiny registry so the *same*
call sites can run on different compute substrates:

* ``numpy`` (default, always available): the canonical vectorised
  implementations.  This is the reference backend — every parity contract
  in ``docs/parity-contracts.md`` is stated against it.
* ``numba`` (optional): ``@njit``-compiled versions of the same kernels,
  fusing the distance computation with the feasibility masks so the window
  assembly makes one pass over the ``(tasks x drivers)`` matrix instead of
  a dozen NumPy temporaries.  Registered only when :mod:`numba` imports;
  the repo never requires it.

Selection is **per process**: :func:`set_backend` flips a module-global
that the kernels resolve at call time, and the
:class:`~repro.distributed.pool.PersistentWorkerPool` slot initialiser
calls it in every worker process (``backend=`` on the pool), which is how a
coordinator picks a backend for its whole fan-out.  Under the serial and
thread policies the workers share this interpreter, so the caller sets the
process-global backend directly.

Parity: every backend must reproduce the numpy backend's kernels to the
same tolerance the batch==scalar contracts pin (1e-9 km at city scale),
and merged coordinator solutions must be backend-independent; the
backend-parametrised tests in ``tests/geo/test_batch.py`` and
``tests/geo/test_backends.py`` pin both (numba cases skip when the import
is unavailable).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

# The canonical radian-input kernels live in geo.batch (the historical
# home every parity test points at); this registry only *routes* to them.
# geo.batch in turn resolves its public ``metric_fn`` through the active
# backend, importing this module lazily — so this top-level import is the
# only edge and there is no cycle.
from .geo.batch import _METRIC_FNS as _NUMPY_METRICS
from .geo.batch import METRICS

#: Return signature of :meth:`ArrayBackend.window_costs`.
WindowCosts = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class ArrayBackend:
    """Interface of one compute backend.

    ``metric_fn(name)`` returns the raw batch kernel for one distance
    metric: ``fn(lat1, lon1, lat2, lon2)`` with *radian* inputs (scalars or
    broadcastable arrays), returning kilometres.

    ``window_costs(...)`` is the fused dispatch-window assembly used by
    :meth:`~repro.online.candidates.CandidateKernel.candidates_for_window`
    on the fast radian path: given the window's driver/task coordinate
    arrays and timing columns it returns
    ``(feasible, arrival, dropoff, approach_cost, marginal)`` — the
    ``(T, D')`` matrices the Hungarian assignment is built from.
    """

    name = "abstract"

    def metric_fn(self, metric: str) -> Callable:
        raise NotImplementedError

    def window_costs(
        self,
        metric: str,
        scale: float,
        loc_rad: np.ndarray,  # (D', 2) driver locations
        dest_rad: np.ndarray,  # (D', 2) driver home destinations
        src_rad: np.ndarray,  # (T, 2) task sources
        dst_rad: np.ndarray,  # (T, 2) task destinations
        depart: np.ndarray,  # (D',)
        sdl: np.ndarray,  # (T,) start deadlines
        edl: np.ndarray,  # (T,) end deadlines
        prices: np.ndarray,  # (T,)
        ride_durations: np.ndarray,  # (T,)
        service_costs: np.ndarray,  # (T,)
        current_home_km: np.ndarray,  # (D',)
        driver_end: np.ndarray,  # (D',)
        speed_kmh: float,
        cost_per_km: float,
        wait_for_pickup_deadline: bool,
    ) -> WindowCosts:
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The canonical vectorised implementation (always available).

    ``window_costs`` replicates the historical inline assembly of
    ``candidates_for_window`` operation for operation — same broadcast
    shapes, same transposes, same epsilons — so routing through the
    registry changes nothing about the reference results.
    """

    name = "numpy"

    def metric_fn(self, metric: str) -> Callable:
        try:
            return _NUMPY_METRICS[metric]
        except KeyError:
            raise ValueError(f"unknown metric {metric!r}; available: {METRICS}") from None

    def window_costs(
        self,
        metric,
        scale,
        loc_rad,
        dest_rad,
        src_rad,
        dst_rad,
        depart,
        sdl,
        edl,
        prices,
        ride_durations,
        service_costs,
        current_home_km,
        driver_end,
        speed_kmh,
        cost_per_km,
        wait_for_pickup_deadline,
    ) -> WindowCosts:
        fn = self.metric_fn(metric)
        feasible = depart[None, :] <= sdl[:, None]  # (T, D')

        approach_km = scale * fn(
            loc_rad[:, 0][:, None], loc_rad[:, 1][:, None],
            src_rad[:, 0][None, :], src_rad[:, 1][None, :],
        )  # (D', T)
        approach_time = (approach_km / speed_kmh * 3600.0).T  # (T, D')
        approach_cost = (approach_km * cost_per_km).T
        arrival = depart[None, :] + approach_time
        feasible &= arrival <= sdl[:, None] + 1e-9
        if wait_for_pickup_deadline:
            pickup = np.maximum(arrival, sdl[:, None])
        else:
            pickup = arrival
        dropoff = pickup + ride_durations[:, None]
        feasible &= dropoff <= edl[:, None] + 1e-9

        home_km = scale * fn(
            dst_rad[:, 0][:, None], dst_rad[:, 1][:, None],
            dest_rad[:, 0][None, :], dest_rad[:, 1][None, :],
        )  # (T, D')
        home_time = home_km / speed_kmh * 3600.0
        home_cost = home_km * cost_per_km
        feasible &= dropoff + home_time <= driver_end[None, :] + 1e-9

        current_home_cost = current_home_km * cost_per_km  # (D',)
        marginal = prices[:, None] - (
            home_cost + service_costs[:, None] + approach_cost - current_home_cost[None, :]
        )
        return feasible, arrival, dropoff, approach_cost, marginal


class NumbaBackend(ArrayBackend):
    """``@njit``-compiled kernels (optional; requires :mod:`numba`).

    The metric kernels are the numpy formulas compiled as-is; the window
    assembly is a fused per-cell loop — one pass computing both legs, every
    mask and the marginal value without materialising the intermediate
    matrices.  Same arithmetic per element, in the same order, as the numpy
    backend.
    """

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba  # noqa: F401
        except ImportError as exc:  # pragma: no cover - exercised without numba
            raise RuntimeError(
                "the 'numba' backend needs the numba package (pip install numba)"
            ) from exc
        self._metric_fns: Dict[str, Callable] = {}
        self._window_fns: Dict[str, Callable] = {}

    def metric_fn(self, metric: str) -> Callable:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; available: {METRICS}")
        fn = self._metric_fns.get(metric)
        if fn is None:
            from numba import njit

            fn = njit(cache=False)(_NUMPY_METRICS[metric])
            self._metric_fns[metric] = fn
        return fn

    def _window_fn(self, metric: str, wait_for_pickup_deadline: bool) -> Callable:
        key = f"{metric}:{int(wait_for_pickup_deadline)}"
        fn = self._window_fns.get(key)
        if fn is None:
            from numba import njit

            point_km = self.metric_fn(metric)

            @njit(cache=False)
            def _window(
                loc_rad, dest_rad, src_rad, dst_rad, depart, sdl, edl, prices,
                ride_durations, service_costs, current_home_km, driver_end,
                scale, speed_kmh, cost_per_km,
            ):
                t = src_rad.shape[0]
                d = loc_rad.shape[0]
                feasible = np.empty((t, d), dtype=np.bool_)
                arrival = np.empty((t, d), dtype=np.float64)
                dropoff = np.empty((t, d), dtype=np.float64)
                approach_cost = np.empty((t, d), dtype=np.float64)
                marginal = np.empty((t, d), dtype=np.float64)
                for i in range(t):
                    for j in range(d):
                        ok = depart[j] <= sdl[i]
                        approach_km = scale * point_km(
                            loc_rad[j, 0], loc_rad[j, 1], src_rad[i, 0], src_rad[i, 1]
                        )
                        arr = depart[j] + approach_km / speed_kmh * 3600.0
                        ok = ok and (arr <= sdl[i] + 1e-9)
                        if wait_for_pickup_deadline:
                            pickup = max(arr, sdl[i])
                        else:
                            pickup = arr
                        drop = pickup + ride_durations[i]
                        ok = ok and (drop <= edl[i] + 1e-9)
                        home_km = scale * point_km(
                            dst_rad[i, 0], dst_rad[i, 1], dest_rad[j, 0], dest_rad[j, 1]
                        )
                        ok = ok and (
                            drop + home_km / speed_kmh * 3600.0 <= driver_end[j] + 1e-9
                        )
                        a_cost = approach_km * cost_per_km
                        feasible[i, j] = ok
                        arrival[i, j] = arr
                        dropoff[i, j] = drop
                        approach_cost[i, j] = a_cost
                        marginal[i, j] = prices[i] - (
                            home_km * cost_per_km
                            + service_costs[i]
                            + a_cost
                            - current_home_km[j] * cost_per_km
                        )
                return feasible, arrival, dropoff, approach_cost, marginal

            fn = _window
            self._window_fns[key] = fn
        return fn

    def window_costs(
        self,
        metric,
        scale,
        loc_rad,
        dest_rad,
        src_rad,
        dst_rad,
        depart,
        sdl,
        edl,
        prices,
        ride_durations,
        service_costs,
        current_home_km,
        driver_end,
        speed_kmh,
        cost_per_km,
        wait_for_pickup_deadline,
    ) -> WindowCosts:
        fn = self._window_fn(metric, bool(wait_for_pickup_deadline))
        return fn(
            np.ascontiguousarray(loc_rad), np.ascontiguousarray(dest_rad),
            np.ascontiguousarray(src_rad), np.ascontiguousarray(dst_rad),
            np.ascontiguousarray(depart), np.ascontiguousarray(sdl),
            np.ascontiguousarray(edl), np.ascontiguousarray(prices),
            np.ascontiguousarray(ride_durations), np.ascontiguousarray(service_costs),
            np.ascontiguousarray(current_home_km), np.ascontiguousarray(driver_end),
            float(scale), float(speed_kmh), float(cost_per_km),
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def numba_available() -> bool:
    """Whether the optional numba backend can be constructed here."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {"numpy": NumpyBackend}
if numba_available():  # pragma: no branch - registry is import-time
    _FACTORIES["numba"] = NumbaBackend

_instances: Dict[str, ArrayBackend] = {}
_lock = threading.Lock()
_active: str = "numpy"


def backend_names() -> Tuple[str, ...]:
    """Names of the backends constructible in this process ("numpy" always;
    "numba" when the import succeeds)."""
    return tuple(sorted(_FACTORIES))


def _instance(name: str) -> ArrayBackend:
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; available here: {backend_names()}"
        )
    with _lock:
        backend = _instances.get(name)
        if backend is None:
            backend = _FACTORIES[name]()
            _instances[name] = backend
    return backend


def get_backend() -> ArrayBackend:
    """The process-active backend (resolved by the kernels at call time)."""
    return _instance(_active)


def set_backend(name: str) -> ArrayBackend:
    """Select the process-active backend by name (returns it).

    Raises ``ValueError`` for names not constructible here, so a worker
    initialiser asked for an unavailable backend fails loudly at pool
    startup, never silently mid-solve.
    """
    global _active
    backend = _instance(name)
    _active = name
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Temporarily select a backend (tests, single solves)."""
    global _active
    previous = _active
    backend = set_backend(name)
    try:
        yield backend
    finally:
        _active = previous
