"""Declarative city-workload scenarios driving the offline and streaming stacks.

The scenario engine separates the *plan* from the *execution engine*: a
frozen :class:`ScenarioSpec` composes a base trace configuration with a
timeline of typed events (demand surges, zone closures, supply shocks,
travel slowdowns, hotspot migrations), the :class:`ScenarioCompiler` lowers
it deterministically into the artifacts the existing stacks consume (a
trip day, a priced market instance, publish-ordered arrival batches), the
built-in library names ready-made city days, and :func:`run_scenario_suite`
sweeps scenarios x dispatch modes on one warm worker pool and reports the
per-scenario comparison (serve rate, revenue, mean wait, shard-load skew).

Because compilation produces ordinary market inputs, every parity contract
of the execution layers — stream == replay, serial == thread == process,
pool == fork — extends to every scenario for free.
"""

from .compiler import CompiledScenario, ScenarioCompiler, compile_scenario
from .library import BUILTIN_SCENARIOS, get_scenario, scenario_names
from .spec import (
    DemandSurge,
    HotspotMigration,
    ScenarioEvent,
    ScenarioSpec,
    SpatialFootprint,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
)
from .suite import (
    OFFLINE_SOLVERS,
    ScenarioRunMetrics,
    ScenarioSuiteResult,
    run_scenario_suite,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioEvent",
    "SpatialFootprint",
    "DemandSurge",
    "ZoneClosure",
    "SupplyShock",
    "TravelSlowdown",
    "HotspotMigration",
    "ScenarioCompiler",
    "CompiledScenario",
    "compile_scenario",
    "BUILTIN_SCENARIOS",
    "get_scenario",
    "scenario_names",
    "ScenarioRunMetrics",
    "ScenarioSuiteResult",
    "run_scenario_suite",
    "OFFLINE_SOLVERS",
]
