"""Scenario suite: sweep scenarios x dispatch modes on one warm pool.

The suite is the scenario engine's answer to "which dispatcher survives
which city day": every scenario is compiled once, then run through the
offline sharded ``solve()`` path (one run per requested solver) and the
streamed ``solve_stream()`` path (batched Hungarian dispatch over the
compiled arrival batches) — **all on a single warm
:class:`~repro.distributed.pool.PersistentWorkerPool`**, so a six-scenario,
four-mode sweep pays worker startup once, exactly like the ablation sweeps.

Per (scenario, mode) the suite records the comparison row the ISSUE asks
for: serve rate, revenue/value, mean customer wait (streamed modes; the
offline solver has no clock) and the shard-load skew
(:attr:`~repro.distributed.partition.ShardLoadReport.max_over_mean`) the
scenario induced on the partition — the number that tells you a stadium
scenario needs a rebalance policy while a rainy day does not.  The first
offline solve's load report also feeds the pool's LPT placement
(``solve(pool=..., load_report=...)``) for the remaining solvers, so the
suite itself exercises the load round trip it reports on.

With ``bounds=True`` (the default) every scenario additionally runs the
exact tier once (``solver="lp"``, :mod:`repro.offline.flow`) and stamps the
scenario's bound sandwich — greedy value, LP value, Lagrangian bound and the
greedy optimality gap — onto each of its rows, so the suite reports numbers
*with error bars* (the "Exact tier at scale" ROADMAP item).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.reporting import format_table
from ..distributed.coordinator import DistributedCoordinator
from ..distributed.partition import ShardLoadReport, SpatialPartitioner
from ..distributed.pool import PersistentWorkerPool
from ..online.batch import BatchConfig
from .compiler import CompiledScenario, compile_scenario
from .library import get_scenario
from .spec import ScenarioSpec

#: Offline shard solvers the suite can sweep (mirrors the coordinator's).
OFFLINE_SOLVERS = ("greedy", "nearest", "maxMargin", "lp", "auto")


def _json_float(value: float) -> Optional[float]:
    return None if math.isnan(value) else value


@dataclass(frozen=True, slots=True)
class ScenarioRunMetrics:
    """One (scenario, mode) comparison row."""

    scenario: str
    #: ``"offline-<solver>"``, ``"stream-batched"`` or ``"stream-horizon"``.
    mode: str
    executor: str
    task_count: int
    driver_count: int
    shard_count: int
    serve_rate: float
    total_value: float
    total_revenue: float
    #: Mean publish->pickup wait of a served task; NaN for offline solvers
    #: (their assignment has no dispatch clock).
    mean_wait_s: float
    #: Hottest shard's task load over the mean (1.0 = perfectly balanced).
    shard_skew: float
    wall_clock_s: float
    #: Scenario-level bound sandwich from the exact tier's sharded solve
    #: (``bounds=True``): greedy and LP *objective* values and the summed
    #: per-shard Lagrangian bound.  Every row of a scenario shares the same
    #: values — they are properties of the scenario, not of the row's mode —
    #: so each scenario's numbers carry their error bar wherever the rows
    #: travel.  NaN when the bounds pass was disabled.
    greedy_revenue: float = float("nan")
    lp_revenue: float = float("nan")
    lagrangian_bound: float = float("nan")
    #: Relative gap of the greedy incumbent against the certified upper
    #: bound (min of LP and Lagrangian per shard, summed) — how far the
    #: heuristic tier can be from the sharded optimum; always >= 0.  The
    #: stream rows keep the same offline-referenced gap: an online dispatch
    #: may legally chain tasks the offline task-map DAG rules out, so the
    #: DAG bound does not bound stream revenue.
    optimality_gap: float = float("nan")

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe view: the offline modes' NaN wait (and the NaN bound
        columns of a boundless run) become ``None`` so artifacts built from
        these rows stay valid strict JSON."""
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "executor": self.executor,
            "task_count": self.task_count,
            "driver_count": self.driver_count,
            "shard_count": self.shard_count,
            "serve_rate": self.serve_rate,
            "total_value": self.total_value,
            "total_revenue": self.total_revenue,
            "mean_wait_s": _json_float(self.mean_wait_s),
            "shard_skew": self.shard_skew,
            "wall_clock_s": self.wall_clock_s,
            "greedy_revenue": _json_float(self.greedy_revenue),
            "lp_revenue": _json_float(self.lp_revenue),
            "lagrangian_bound": _json_float(self.lagrangian_bound),
            "optimality_gap": _json_float(self.optimality_gap),
        }


@dataclass(frozen=True)
class ScenarioSuiteResult:
    """Every comparison row of one suite run."""

    rows: Tuple[ScenarioRunMetrics, ...]
    executor: str
    worker_count: int

    def rows_for(self, scenario: str) -> Tuple[ScenarioRunMetrics, ...]:
        """The rows of one scenario, in run order."""
        return tuple(row for row in self.rows if row.scenario == scenario)

    def scenarios(self) -> List[str]:
        """Distinct scenario names, preserving run order."""
        seen: List[str] = []
        for row in self.rows:
            if row.scenario not in seen:
                seen.append(row.scenario)
        return seen

    def render(self) -> str:
        """The per-scenario metrics comparison as an aligned text table."""
        headers = (
            "scenario", "mode", "tasks", "drivers", "serve_rate",
            "total_value", "revenue", "wait_s", "shard_skew", "opt_gap", "wall_s",
        )
        table_rows = [
            (
                row.scenario,
                row.mode,
                row.task_count,
                row.driver_count,
                row.serve_rate,
                row.total_value,
                row.total_revenue,
                "-" if math.isnan(row.mean_wait_s) else f"{row.mean_wait_s:.1f}",
                row.shard_skew,
                "-" if math.isnan(row.optimality_gap) else f"{row.optimality_gap:.4f}",
                row.wall_clock_s,
            )
            for row in self.rows
        ]
        title = (
            f"Scenario suite — {len(self.scenarios())} scenarios, "
            f"executor={self.executor}, {self.worker_count} pool workers"
        )
        return title + "\n" + format_table(headers, table_rows)


def _resolve_specs(
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]]
) -> List[ScenarioSpec]:
    from .library import scenario_names

    if scenarios is None:
        scenarios = scenario_names()
    specs: List[ScenarioSpec] = []
    for item in scenarios:
        specs.append(get_scenario(item) if isinstance(item, str) else item)
    return specs


def run_scenario_suite(
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]] = None,
    *,
    solvers: Sequence[str] = ("greedy",),
    stream: bool = True,
    rows: int = 2,
    cols: int = 2,
    executor: str = "serial",
    worker_count: Optional[int] = None,
    pool: Optional[PersistentWorkerPool] = None,
    bounds: bool = True,
    gap_threshold: float = 0.02,
    horizon: int = 1,
    overlap: int = 0,
    forecast: str = "ewma",
) -> ScenarioSuiteResult:
    """Sweep scenarios x dispatch modes on one warm worker pool.

    Parameters
    ----------
    scenarios:
        Built-in names and/or explicit :class:`ScenarioSpec`\\ s; default is
        the whole built-in library.
    solvers:
        Offline shard solvers to run per scenario (subset of
        :data:`OFFLINE_SOLVERS`; empty to skip the offline path).
    stream:
        Also run the streamed batched-Hungarian path per scenario.
    rows / cols:
        The shard grid over each scenario's service region.
    executor / worker_count:
        Pool policy and width when the suite creates its own pool.
    pool:
        An externally owned warm pool — the suite never closes it, so one
        pool can serve many suites (and interleave with other work).
    bounds:
        Run the exact tier (``solver="lp"``) once per scenario and stamp the
        scenario's bound sandwich — ``greedy_revenue``, ``lp_revenue``,
        ``lagrangian_bound``, ``optimality_gap`` — onto every row, turning
        the suite's numbers into numbers with error bars.  When ``"lp"`` is
        among ``solvers`` the bounds pass doubles as that row (no second
        solve); disable to skip the LP cost entirely (the columns are NaN).
    gap_threshold:
        Relative-gap knob forwarded to the exact tier (used by ``"auto"``
        rows; the bounds pass itself always solves the LP).
    horizon / overlap / forecast:
        With ``horizon > 1`` (and ``stream=True``) each scenario also runs a
        ``"stream-horizon"`` row: the same streamed path under rolling-horizon
        dispatch (:mod:`repro.online.horizon`), so the suite reports the
        serve-rate/mean-wait delta of lookahead over the myopic stream row.
        Streamed runs reveal the future only as it publishes, so the live
        forecaster is ``"ewma"`` (the ``"oracle"`` variant needs replay and
        is rejected by ``stream_begin``).
    """
    specs = _resolve_specs(scenarios)
    for solver in solvers:
        if solver not in OFFLINE_SOLVERS:
            raise ValueError(
                f"unknown solver {solver!r}; expected a subset of {OFFLINE_SOLVERS}"
            )
    own_pool = pool is None
    if own_pool:
        pool = PersistentWorkerPool(executor=executor, worker_count=worker_count)
    metrics: List[ScenarioRunMetrics] = []
    try:
        for spec in specs:
            compiled = compile_scenario(spec)
            metrics.extend(
                _run_one(compiled, solvers=solvers, stream=stream,
                         rows=rows, cols=cols, pool=pool,
                         bounds=bounds, gap_threshold=gap_threshold,
                         horizon=horizon, overlap=overlap, forecast=forecast)
            )
    finally:
        if own_pool:
            pool.close()
    return ScenarioSuiteResult(
        rows=tuple(metrics), executor=pool.executor, worker_count=pool.worker_count
    )


def _run_one(
    compiled: CompiledScenario,
    *,
    solvers: Sequence[str],
    stream: bool,
    rows: int,
    cols: int,
    pool: PersistentWorkerPool,
    bounds: bool = True,
    gap_threshold: float = 0.02,
    horizon: int = 1,
    overlap: int = 0,
    forecast: str = "ewma",
) -> List[ScenarioRunMetrics]:
    """All modes of one compiled scenario on the shared pool."""
    spec = compiled.spec
    instance = compiled.instance
    out: List[ScenarioRunMetrics] = []
    load_report: Optional[ShardLoadReport] = None

    def coordinator_for(solver: str) -> DistributedCoordinator:
        return DistributedCoordinator(
            SpatialPartitioner(spec.region, rows, cols),
            solver_name=solver,
            executor=pool.executor,
            gap_threshold=gap_threshold,
        )

    # Bounds pass: one exact-tier solve per scenario; its report carries the
    # scenario's error bar (columns stamped onto every row below), and —
    # when "lp" is among the requested solvers — it *is* that row's solve.
    bound_columns = {
        "greedy_revenue": float("nan"),
        "lp_revenue": float("nan"),
        "lagrangian_bound": float("nan"),
        "optimality_gap": float("nan"),
    }
    lp_precomputed = None
    if bounds:
        start = time.perf_counter()
        lp_result = coordinator_for("lp").solve(instance, pool=pool)
        lp_wall = time.perf_counter() - start
        lp_precomputed = (lp_result, lp_wall)
        report = lp_result.report
        bound_columns = {
            "greedy_revenue": report.greedy_revenue,
            "lp_revenue": report.lp_revenue,
            "lagrangian_bound": report.lagrangian_bound,
            "optimality_gap": report.greedy_gap,
        }
        # The bounds pass's skew steers slot placement for every later solve.
        load_report = ShardLoadReport.from_prior(lp_result)

    for solver in solvers:
        if solver == "lp" and lp_precomputed is not None:
            result, wall = lp_precomputed
        else:
            start = time.perf_counter()
            result = coordinator_for(solver).solve(
                instance, pool=pool, load_report=load_report
            )
            wall = time.perf_counter() - start
        report = ShardLoadReport.from_prior(result)
        if load_report is None:
            # The first solve's skew steers slot placement for the rest.
            load_report = report
        solution = result.solution
        out.append(
            ScenarioRunMetrics(
                scenario=spec.name,
                mode=f"offline-{solver}",
                executor=pool.executor,
                task_count=instance.task_count,
                driver_count=instance.driver_count,
                shard_count=result.report.shard_count,
                serve_rate=solution.serve_rate,
                total_value=solution.total_value,
                total_revenue=solution.total_revenue,
                mean_wait_s=float("nan"),
                shard_skew=report.max_over_mean,
                wall_clock_s=wall,
                **bound_columns,
            )
        )
    if stream:
        stream_configs = [("stream-batched", BatchConfig(window_s=spec.window_s))]
        if horizon > 1:
            stream_configs.append(
                (
                    "stream-horizon",
                    BatchConfig(
                        window_s=spec.window_s,
                        horizon=horizon,
                        overlap=overlap,
                        forecast=forecast,
                    ),
                )
            )
        coordinator = DistributedCoordinator(
            SpatialPartitioner(spec.region, rows, cols), executor=pool.executor
        )
        for mode, config in stream_configs:
            start = time.perf_counter()
            result = coordinator.solve_stream(
                instance,
                compiled.arrival_batches(),
                config=config,
                pool=pool,
            )
            wall = time.perf_counter() - start
            out.append(
                ScenarioRunMetrics(
                    scenario=spec.name,
                    mode=mode,
                    executor=pool.executor,
                    task_count=instance.task_count,
                    driver_count=instance.driver_count,
                    shard_count=result.report.shard_count,
                    serve_rate=result.solution.serve_rate,
                    total_value=result.solution.total_value,
                    total_revenue=result.solution.total_revenue,
                    mean_wait_s=result.report.mean_wait_s,
                    shard_skew=ShardLoadReport.from_prior(result).max_over_mean,
                    wall_clock_s=wall,
                    **bound_columns,
                )
            )
    return out
