"""Deterministic lowering of a :class:`~repro.scenarios.spec.ScenarioSpec`.

The compiler is the bridge between the declarative scenario layer and the
execution stacks: it turns a spec into exactly the artifacts they already
consume —

* a :class:`~repro.trace.records.TripRecord` day (through
  :class:`~repro.trace.synthetic.PortoLikeTraceGenerator` and its demand
  hooks, so scenario demand shares the calibrated Porto marginals),
* a priced task set and a driver fleet inside one
  :class:`~repro.market.instance.MarketInstance` (whose cost model carries
  any :class:`~repro.scenarios.spec.TravelSlowdown` scaling),
* publish-ordered arrival batches
  (:func:`~repro.online.batch.stream_schedule`) for the streamed path.

**Determinism contract:** compilation is a pure function of the spec (the
seed lives in the spec) — same spec, same artifacts, bit for bit, on any
machine.  Every random draw comes from :class:`random.Random` instances
seeded from ``(spec.name, spec.seed)``, events are applied in spec order,
and no wall-clock or environment state is read.  Because the compiled
instance and batches are ordinary market inputs, the existing parity
contracts (stream == replay, serial == thread == process, pool == fork)
extend to every scenario with no new execution machinery
(``tests/scenarios/test_parity.py`` pins this per built-in scenario).

Event lowering
--------------

=================  ==========================================================
DemandSurge        Scales the generator's slot weights (15-minute slots) in
                   the window — which also grows the compiled trip count by
                   the added mass — and redirects the surplus fraction
                   ``(k-1)/k`` of in-window pickups into the footprint.
ZoneClosure        Pickup sampler resamples (bounded, deterministic) any
                   in-window pickup that falls inside the footprint;
                   a final deterministic nudge guarantees termination.
SupplyShock        Rewrites the fleet: joining drivers get fresh shifts
                   starting at the shock; leaving drivers have their windows
                   truncated (or are dropped when their shift had not
                   started) — both stacks enforce windows already.
TravelSlowdown     Day-level events compose multiplicatively into the travel
                   model via :meth:`~repro.geo.distance.TravelModel.scaled`;
                   windowed events compile into a
                   :class:`~repro.geo.TimeVaryingTravelModel` slot profile.
HotspotMigration   Pickup sampler moves a fraction of in-window demand from
                   the source footprint into the target footprint.
=================  ==========================================================
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..geo import BoundingBox, GeoPoint, TimeVaryingTravelModel, default_travel_model
from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance, tasks_from_trips
from ..market.task import Task
from ..online.batch import stream_schedule
from ..pricing import FareSchedule, LinearPricing
from ..trace.drivers import DriverGenerationConfig, DriverScheduleGenerator, WorkingModel
from ..trace.records import TripRecord
from ..trace.synthetic import (
    DIURNAL_WEIGHTS,
    PortoLikeTraceGenerator,
    sample_demand_point,
)
from .spec import (
    DemandSurge,
    HotspotMigration,
    ScenarioSpec,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
)

#: Demand-profile resolution: 15-minute slots (96 per day), fine enough for
#: sharp surges while staying a clean multiple of the hourly base profile.
SLOT_COUNT = 96

#: Bounded retries before the closure sampler nudges a point outside
#: deterministically (termination guarantee).
_CLOSURE_RETRIES = 16


@dataclass(frozen=True)
class CompiledScenario:
    """The executable artifacts one spec lowers to.

    Everything the two stacks need: ``instance`` feeds
    ``DistributedCoordinator.solve`` (and any offline solver) directly, and
    :meth:`arrival_batches` feeds ``solve_stream`` /
    ``open_stream().append_batch()`` the same tasks as a publish-ordered
    live stream — so scenario metrics share denominators across modes.
    """

    spec: ScenarioSpec
    trips: Tuple[TripRecord, ...]
    drivers: Tuple[Driver, ...]
    instance: MarketInstance

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self.instance.tasks

    @property
    def region(self) -> BoundingBox:
        return self.spec.region

    def arrival_batches(self, window_s: Optional[float] = None) -> List[List[Task]]:
        """Publish-ordered arrival batches, one per dispatch window.

        Carries *every* task (non-publishable ones ride along), exactly like
        ``solve_stream``'s default schedule, so a streamed run over these
        batches is the offline replay's sharded twin.
        """
        return stream_schedule(self.tasks, window_s or self.spec.window_s)

    def checksum(self) -> str:
        """A stable digest of the compiled artifacts.

        Two compilations of the same spec produce the same checksum on any
        machine (``repr`` of floats round-trips exactly); the determinism
        tests and the scenario benchmark pin compile reproducibility with
        it.
        """
        digest = hashlib.sha256()
        for trip in self.trips:
            digest.update(
                f"{trip.trip_id}|{trip.driver_id}|{trip.start_ts!r}|{trip.end_ts!r}|"
                f"{trip.origin.lat!r},{trip.origin.lon!r}|"
                f"{trip.destination.lat!r},{trip.destination.lon!r}|"
                f"{trip.distance_km!r}\n".encode()
            )
        for driver in self.drivers:
            digest.update(
                f"{driver.driver_id}|{driver.start_ts!r}|{driver.end_ts!r}|"
                f"{driver.source.lat!r},{driver.source.lon!r}|"
                f"{driver.destination.lat!r},{driver.destination.lon!r}\n".encode()
            )
        for task in self.tasks:
            digest.update(f"{task.task_id}|{task.publish_ts!r}|{task.price!r}\n".encode())
        model = self.instance.cost_model.travel_model
        digest.update(f"{model.speed_kmh!r}|{model.cost_per_km!r}".encode())
        profile = getattr(model, "speed_factors", None)
        if profile is not None:
            digest.update(
                f"|{model.window_s!r}|{model.speed_factors!r}|"
                f"{model.cost_factors!r}|{model.origin_ts!r}".encode()
            )
        return digest.hexdigest()


class ScenarioCompiler:
    """Lowers one spec; stateless between :meth:`compile` calls."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # demand profile
    # ------------------------------------------------------------------
    def slot_weights(self) -> List[float]:
        """The day's demand profile: the diurnal base resampled to
        :data:`SLOT_COUNT` slots, scaled by every surge's window overlap."""
        per_hour = SLOT_COUNT // 24
        weights = [float(DIURNAL_WEIGHTS[slot // per_hour]) for slot in range(SLOT_COUNT)]
        slot_s = 86400.0 / SLOT_COUNT
        for event in self.spec.events_of_type(DemandSurge):
            start_s = event.start_hour * 3600.0
            end_s = event.end_hour * 3600.0
            for slot in range(SLOT_COUNT):
                lo = slot * slot_s
                hi = lo + slot_s
                overlap = max(0.0, min(hi, end_s) - max(lo, start_s)) / slot_s
                if overlap > 0.0:
                    weights[slot] *= 1.0 + (event.intensity - 1.0) * overlap
        return weights

    def effective_trip_count(self) -> int:
        """Trip volume after surges add demand mass.

        The base count corresponds to the base profile's mass; scaling the
        count by the mass ratio makes a 2x surge over two hours actually
        put ~2x the trips into those hours instead of just reshaping a
        fixed-size day.
        """
        per_hour = SLOT_COUNT // 24
        base = [float(DIURNAL_WEIGHTS[slot // per_hour]) for slot in range(SLOT_COUNT)]
        factor = sum(self.slot_weights()) / sum(base)
        return max(1, round(self.spec.trip_count * factor))

    # ------------------------------------------------------------------
    # spatial sampling
    # ------------------------------------------------------------------
    def _base_pickup(self, rng: random.Random) -> GeoPoint:
        """The generator's default spatial model (the shared
        :func:`~repro.trace.synthetic.sample_demand_point`), so the event
        sampler composes with base demand draw-for-draw."""
        return sample_demand_point(
            rng, self.spec.base.bounding_box, self.spec.base.downtown_fraction
        )

    @staticmethod
    def _sample_in_box(rng: random.Random, box: BoundingBox) -> GeoPoint:
        """A clustered draw inside a footprint box (events concentrate
        demand, they do not spread it uniformly)."""
        return box.sample_gaussian(rng, sigma_fraction=0.35)

    @staticmethod
    def _nudge_outside(point: GeoPoint, closed: BoundingBox, region: BoundingBox) -> GeoPoint:
        """Deterministically move ``point`` just past the nearest edge of a
        closed box (termination fallback of the closure resampler); returns
        the point unchanged when the closure spans the whole region."""
        pad_lat = (region.north - region.south) * 1e-3
        pad_lon = (region.east - region.west) * 1e-3
        for candidate in (
            GeoPoint(closed.south - pad_lat, point.lon),
            GeoPoint(closed.north + pad_lat, point.lon),
            GeoPoint(point.lat, closed.west - pad_lon),
            GeoPoint(point.lat, closed.east + pad_lon),
        ):
            clamped = region.clamp(candidate)
            if not closed.contains(clamped):
                return clamped
        return point

    def origin_sampler(self) -> Callable[[random.Random, float], Optional[GeoPoint]]:
        """The pickup-location hook for the trace generator.

        Resolves every footprint once, then applies — in spec order, which
        is the determinism tie-break — surge concentration, hotspot
        migration and zone closure to each trip's pickup.  Returns ``None``
        (generator default) only when the spec has no spatial events at
        all, so specs without footprints compile through the exact default
        path.
        """
        region = self.spec.region
        surges = [
            (e.start_hour * 3600.0, e.end_hour * 3600.0, e.intensity, e.footprint.to_box(region))
            for e in self.spec.events_of_type(DemandSurge)
            if e.footprint is not None
        ]
        migrations = [
            (
                e.start_hour * 3600.0,
                e.end_hour * 3600.0,
                e.source.to_box(region),
                e.target.to_box(region),
                e.fraction,
            )
            for e in self.spec.events_of_type(HotspotMigration)
        ]
        closures = [
            (e.start_hour * 3600.0, e.end_hour * 3600.0, e.footprint.to_box(region))
            for e in self.spec.events_of_type(ZoneClosure)
        ]
        if not surges and not migrations and not closures:
            return lambda _rng, _t: None

        def sample(rng: random.Random, t: float) -> GeoPoint:
            point: Optional[GeoPoint] = None
            for start_s, end_s, intensity, box in surges:
                if start_s <= t < end_s and intensity > 1.0:
                    surplus = (intensity - 1.0) / intensity
                    if rng.random() < surplus:
                        point = self._sample_in_box(rng, box)
                        break
            if point is None:
                point = self._base_pickup(rng)
            for start_s, end_s, source_box, target_box, fraction in migrations:
                if start_s <= t < end_s and source_box.contains(point):
                    if rng.random() < fraction:
                        point = self._sample_in_box(rng, target_box)
            # Closures are enforced jointly: resampling against the *union*
            # of active closed boxes, so escaping one closure can never land
            # a pickup inside another.
            active = [closed for start_s, end_s, closed in closures if start_s <= t < end_s]
            if active:
                for _ in range(_CLOSURE_RETRIES):
                    if not any(box.contains(point) for box in active):
                        break
                    point = self._base_pickup(rng)
                # Deterministic fallback: nudge out of whichever closed box
                # still holds the point, a few passes in case a nudge crosses
                # into a neighbouring closure (best-effort when closures tile
                # the whole region).
                for _ in range(len(active) + 1):
                    containing = next(
                        (box for box in active if box.contains(point)), None
                    )
                    if containing is None:
                        break
                    point = self._nudge_outside(point, containing, region)
            return point

        return sample

    # ------------------------------------------------------------------
    # supply
    # ------------------------------------------------------------------
    def _apply_supply_shocks(self, drivers: Sequence[Driver]) -> Tuple[Driver, ...]:
        """Rewrite the fleet's working windows per the supply timeline."""
        shocks = self.spec.events_of_type(SupplyShock)
        fleet: List[Driver] = list(drivers)
        if not shocks:
            return tuple(fleet)
        rng = random.Random(f"scenario:{self.spec.name}:{self.spec.seed}:supply")
        box = self.spec.region
        downtown = self.spec.base.downtown_fraction

        def sample_point() -> GeoPoint:
            return sample_demand_point(rng, box, downtown)

        for shock_index, shock in enumerate(shocks):
            at_s = shock.at_hour * 3600.0
            delta = shock.resolved_delta(self.spec.driver_count)
            if delta > 0:
                for i in range(delta):
                    source = sample_point()
                    if self.spec.working_model is WorkingModel.HOME_WORK_HOME:
                        destination = source
                    else:
                        destination = sample_point()
                    fleet.append(
                        Driver(
                            driver_id=f"{self.spec.name}-shock{shock_index}-{i:04d}",
                            source=source,
                            destination=destination,
                            start_ts=at_s,
                            end_ts=at_s + shock.duration_hours * 3600.0,
                        )
                    )
            elif delta < 0:
                # Whoever is (or would be) on the road past the shock can
                # strike; sampled over sorted ids so the draw is stable.
                candidates = sorted(
                    (d for d in fleet if d.end_ts > at_s), key=lambda d: d.driver_id
                )
                leaving = rng.sample(candidates, min(-delta, len(candidates)))
                leaving_ids = {d.driver_id for d in leaving}
                rewritten: List[Driver] = []
                for driver in fleet:
                    if driver.driver_id not in leaving_ids:
                        rewritten.append(driver)
                    elif driver.start_ts < at_s:
                        rewritten.append(driver.with_window(driver.start_ts, at_s))
                    # else: the shift never started — the driver stays home.
                fleet = rewritten
        return tuple(fleet)

    # ------------------------------------------------------------------
    # travel model
    # ------------------------------------------------------------------
    def slowdown_factors(self) -> Tuple[float, float]:
        """``(speed_factor, cost_factor)`` composed over every *day-level*
        slowdown.

        Applied to *both* the travel model and the trace generator's trip
        speed: rain slows the recorded rides exactly as it slows the empty
        drives, so a trip's estimated in-task time stays consistent with
        its recorded window (scaling only the model would silently make
        every recorded trip infeasible).

        Windowed slowdowns are excluded here — they compile into the travel
        model's time profile (:meth:`slowdown_profile`) and deliberately do
        *not* rescale the recorded trips: the storm cell slows the empty
        drives and the model's duration estimates inside its window, while
        the trace keeps its recorded history.
        """
        speed_factor = 1.0
        cost_factor = 1.0
        for event in self.spec.events_of_type(TravelSlowdown):
            if event.is_day_level:
                speed_factor *= event.speed_factor
                cost_factor *= event.cost_factor
        return speed_factor, cost_factor

    def slowdown_profile(self) -> Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]]:
        """Per-slot ``(speed_factors, cost_factors)`` of the windowed
        slowdowns, at the demand profile's :data:`SLOT_COUNT` resolution —
        or ``None`` when every slowdown is day-level (the historical case).

        A slot carries an event's factors iff its midpoint lies inside the
        event's ``[start_hour, end_hour)`` window; events compose
        multiplicatively per slot.
        """
        windowed = [
            event
            for event in self.spec.events_of_type(TravelSlowdown)
            if not event.is_day_level
        ]
        if not windowed:
            return None
        slot_s = 86400.0 / SLOT_COUNT
        speed = [1.0] * SLOT_COUNT
        cost = [1.0] * SLOT_COUNT
        for event in windowed:
            start_s = event.start_hour * 3600.0
            end_s = event.end_hour * 3600.0
            for slot in range(SLOT_COUNT):
                mid = (slot + 0.5) * slot_s
                if start_s <= mid < end_s:
                    speed[slot] *= event.speed_factor
                    cost[slot] *= event.cost_factor
        return tuple(speed), tuple(cost)

    def cost_model(self) -> MarketCostModel:
        """The market cost model, with every slowdown composed in.

        Day-level slowdowns scale the base model (a plain
        :class:`~repro.geo.TravelModel`, exactly as before); windowed
        slowdowns wrap it in a :class:`~repro.geo.TimeVaryingTravelModel`
        whose profile carries their factors slot by slot.
        """
        speed_factor, cost_factor = self.slowdown_factors()
        model = default_travel_model()
        if speed_factor != 1.0 or cost_factor != 1.0:
            model = model.scaled(speed_factor=speed_factor, cost_factor=cost_factor)
        profile = self.slowdown_profile()
        if profile is None:
            return MarketCostModel(model)
        speed_factors, cost_factors = profile
        return MarketCostModel(
            TimeVaryingTravelModel(
                base=model,
                window_s=86400.0 / SLOT_COUNT,
                speed_factors=speed_factors,
                cost_factors=cost_factors,
                origin_ts=0.0,
            )
        )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledScenario:
        """Lower the spec into trips, a fleet and a ready-to-run instance."""
        spec = self.spec
        base = spec.base
        speed_factor, _cost_factor = self.slowdown_factors()
        trace_config = replace(
            base, speed_kmh=base.speed_kmh * speed_factor, seed=spec.seed
        )
        generator = PortoLikeTraceGenerator(
            trace_config,
            slot_weights=self.slot_weights(),
            origin_sampler=self.origin_sampler(),
        )
        trips = tuple(generator.generate_day(0, trip_count=self.effective_trip_count()))

        driver_generator = DriverScheduleGenerator(
            DriverGenerationConfig(
                bounding_box=spec.region,
                working_model=spec.working_model,
                seed=spec.seed,
            )
        )
        drivers = self._apply_supply_shocks(
            driver_generator.generate_from_trips(trips, count=spec.driver_count)
        )

        pricing = LinearPricing(schedule=FareSchedule(), alpha=spec.surge_multiplier)
        tasks = tasks_from_trips(trips, pricing=pricing, seed=spec.seed)
        instance = MarketInstance.create(
            drivers=drivers, tasks=tasks, cost_model=self.cost_model()
        )
        return CompiledScenario(
            spec=spec, trips=trips, drivers=drivers, instance=instance
        )


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Convenience wrapper: ``ScenarioCompiler(spec).compile()``."""
    return ScenarioCompiler(spec).compile()
