"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the *plan* half of the scenario engine: a frozen,
hashable description of one city day — a base
:class:`~repro.trace.synthetic.TraceConfig` composed with a timeline of typed
events — that says nothing about *how* the workload is produced.  The
:class:`~repro.scenarios.compiler.ScenarioCompiler` lowers a spec
deterministically into the exact artifacts the execution stacks consume
(trips, priced tasks, a driver fleet, publish-ordered arrival batches), so
one spec drives the offline ``solve()`` path, the streamed
``solve_stream()`` path and every executor policy bit-identically.

Event vocabulary
----------------

========================  ====================================================
:class:`DemandSurge`      Extra demand in a time window, optionally
                          concentrated in a spatial footprint (a stadium
                          letting out, a festival, rain-induced hailing).
:class:`ZoneClosure`      No pickups originate inside a footprint during a
                          window (roadworks, a police cordon); demand is
                          displaced to the rest of the city, not destroyed.
:class:`SupplyShock`      Drivers join or leave mid-day (shift change,
                          strike); compiled into the fleet's working windows,
                          which both stacks already honour, so mid-stream
                          supply changes need no new execution machinery.
:class:`TravelSlowdown`   City-wide speed (and optionally cost) scaling —
                          day-level (a rainy city) or windowed (rush-hour
                          congestion, compiled into a time-indexed travel
                          model).
:class:`HotspotMigration` A fraction of the demand that would originate in
                          one footprint originates in another during a
                          window (commute corridors, event build-up).
========================  ====================================================

Footprints are *fractional* (:class:`SpatialFootprint`): expressed in [0, 1]
coordinates of the service region, so the same spec runs unchanged on Porto,
NYC or any custom bounding box.  Times are hours of the simulated day.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple, Union

from ..geo import BoundingBox
from ..trace.drivers import WorkingModel
from ..trace.synthetic import TraceConfig

#: Hours in the simulated day (events are clipped to it).
DAY_HOURS = 24.0


@dataclass(frozen=True, slots=True)
class SpatialFootprint:
    """A rectangular sub-area of the service region, in fractional coords.

    ``south``/``west``/``north``/``east`` are fractions in [0, 1] of the
    region's latitude/longitude extent, so a footprint is city-independent;
    :meth:`to_box` resolves it against a concrete region.
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        for name in ("south", "west", "north", "east"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"footprint {name} must be in [0, 1], got {value}")
        if self.south >= self.north:
            raise ValueError("footprint south must be strictly below north")
        if self.west >= self.east:
            raise ValueError("footprint west must be strictly below east")

    def to_box(self, region: BoundingBox) -> BoundingBox:
        """Resolve the fractional footprint against a concrete region."""
        lat_span = region.north - region.south
        lon_span = region.east - region.west
        return BoundingBox(
            south=region.south + self.south * lat_span,
            west=region.west + self.west * lon_span,
            north=region.south + self.north * lat_span,
            east=region.west + self.east * lon_span,
        )


def _check_window(start_hour: float, end_hour: float) -> None:
    if not 0.0 <= start_hour < end_hour <= DAY_HOURS:
        raise ValueError(
            f"event window must satisfy 0 <= start < end <= {DAY_HOURS}, "
            f"got [{start_hour}, {end_hour}]"
        )


@dataclass(frozen=True, slots=True)
class DemandSurge:
    """Demand multiplied by ``intensity`` during ``[start_hour, end_hour)``.

    The surge both *adds volume* (the compiled trip count grows with the
    extra demand mass) and, when a ``footprint`` is given, *concentrates*
    the extra trips inside it: the surplus fraction ``(k-1)/k`` of in-window
    pickups is drawn from the footprint, the base demand keeps its usual
    spatial distribution.
    """

    start_hour: float
    end_hour: float
    intensity: float
    footprint: SpatialFootprint | None = None

    def __post_init__(self) -> None:
        _check_window(self.start_hour, self.end_hour)
        if self.intensity <= 0.0:
            raise ValueError("intensity must be positive")


@dataclass(frozen=True, slots=True)
class ZoneClosure:
    """No pickups originate inside ``footprint`` during the window.

    Demand is displaced, not destroyed: a pickup that would fall inside the
    closed zone is deterministically resampled from the rest of the city
    (riders walk to the cordon's edge and hail from there).
    """

    start_hour: float
    end_hour: float
    footprint: SpatialFootprint

    def __post_init__(self) -> None:
        _check_window(self.start_hour, self.end_hour)


@dataclass(frozen=True, slots=True)
class SupplyShock:
    """Drivers join (positive) or leave (negative) the fleet at ``at_hour``.

    Exactly one of ``driver_delta`` (absolute head count) or
    ``driver_fraction`` (fraction of the spec's fleet, so scaled specs keep
    their shape) must be non-zero.  Joining drivers work
    ``duration_hours``-long shifts from ``at_hour``; leaving drivers have
    their shifts truncated at ``at_hour`` (drivers whose shift had not yet
    started simply never show up).  Because both execution stacks already
    enforce driver working windows, a compiled supply shock changes
    mid-stream capacity without any new runtime machinery — and therefore
    without touching the stream==offline parity contract.
    """

    at_hour: float
    driver_delta: int = 0
    driver_fraction: float = 0.0
    duration_hours: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_hour <= DAY_HOURS:
            raise ValueError("at_hour must be within the day")
        if (self.driver_delta == 0) == (self.driver_fraction == 0.0):
            raise ValueError(
                "exactly one of driver_delta and driver_fraction must be non-zero"
            )
        if not -1.0 <= self.driver_fraction <= 1.0:
            raise ValueError("driver_fraction must be in [-1, 1]")
        if self.duration_hours <= 0.0:
            raise ValueError("duration_hours must be positive")

    def resolved_delta(self, fleet_size: int) -> int:
        """The head-count change for a concrete fleet size."""
        if self.driver_delta != 0:
            return self.driver_delta
        return round(self.driver_fraction * fleet_size)


@dataclass(frozen=True, slots=True)
class TravelSlowdown:
    """City-wide travel-model scaling, for the whole day or a time window.

    ``speed_factor`` scales the average speed (0.7 ≈ a rainy day),
    ``cost_factor`` the per-km cost.  Multiple slowdowns compose
    multiplicatively.  The default window is the whole day, which compiles
    to a plain scaled :class:`~repro.geo.TravelModel` exactly as before; a
    narrower ``[start_hour, end_hour)`` window compiles into a
    :class:`~repro.geo.TimeVaryingTravelModel` whose per-slot profile
    carries the factors only inside the window (rush-hour congestion, a
    storm cell passing through).  Task durations/costs resolve the rates at
    each task's pickup deadline — a pure function of (task, model) — so the
    incremental-maintenance and stream == replay parity contracts hold
    under windowed slowdowns too.
    """

    speed_factor: float
    cost_factor: float = 1.0
    start_hour: float = 0.0
    end_hour: float = DAY_HOURS

    def __post_init__(self) -> None:
        if self.speed_factor <= 0.0:
            raise ValueError("speed_factor must be positive")
        if self.cost_factor < 0.0:
            raise ValueError("cost_factor must be non-negative")
        _check_window(self.start_hour, self.end_hour)

    @property
    def is_day_level(self) -> bool:
        """Whether the slowdown covers the whole simulated day."""
        return self.start_hour == 0.0 and self.end_hour == DAY_HOURS


@dataclass(frozen=True, slots=True)
class HotspotMigration:
    """Demand mass moves between footprints during a window.

    A pickup that would originate inside ``source`` during the window
    instead originates inside ``target`` with probability ``fraction``.
    """

    start_hour: float
    end_hour: float
    source: SpatialFootprint
    target: SpatialFootprint
    fraction: float

    def __post_init__(self) -> None:
        _check_window(self.start_hour, self.end_hour)
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


ScenarioEvent = Union[
    DemandSurge, ZoneClosure, SupplyShock, TravelSlowdown, HotspotMigration
]

#: Event classes accepted in :attr:`ScenarioSpec.events` (order matters:
#: samplers apply footprint events in spec order, so the spec is the single
#: source of deterministic tie-breaking).
EVENT_TYPES = (DemandSurge, ZoneClosure, SupplyShock, TravelSlowdown, HotspotMigration)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One declarative city day: a base trace config plus an event timeline.

    Frozen and hashable; compilation is a pure function of ``(spec, seed)``
    (the seed lives *in* the spec), which is what makes every scenario
    reproducible across machines, executors and sessions.
    """

    name: str
    description: str = ""
    #: Base trace configuration: service region, duration/speed marginals,
    #: downtown concentration.  The spec's own ``seed`` supersedes the
    #: config's for compilation.
    base: TraceConfig = TraceConfig()
    #: Demand volume before events scale it (trips generated for the day).
    trip_count: int = 600
    #: Fleet size before supply shocks change it.
    driver_count: int = 60
    working_model: WorkingModel = WorkingModel.HITCHHIKING
    events: Tuple[ScenarioEvent, ...] = ()
    seed: int = 2017
    #: Dispatch window of the streamed run (and the stream schedule).
    window_s: float = 60.0
    #: Static surge multiplier of the pricing policy (Eq. 15's alpha).
    surge_multiplier: float = 1.2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        if self.driver_count < 1:
            raise ValueError("driver_count must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        for event in self.events:
            if not isinstance(event, EVENT_TYPES):
                raise TypeError(
                    f"unsupported event type {type(event).__name__!r}; "
                    f"expected one of {[t.__name__ for t in EVENT_TYPES]}"
                )
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def region(self) -> BoundingBox:
        """The service region every footprint resolves against."""
        return self.base.bounding_box

    def with_scale(
        self, trip_count: int | None = None, driver_count: int | None = None
    ) -> "ScenarioSpec":
        """The same scenario at a different size (tests, CI smokes, sweeps).

        Events scale with it: footprints are fractional and supply shocks
        expressed as fleet fractions resolve against the new fleet.
        """
        return replace(
            self,
            trip_count=self.trip_count if trip_count is None else trip_count,
            driver_count=self.driver_count if driver_count is None else driver_count,
        )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same scenario under a different random seed."""
        return replace(self, seed=seed)

    def events_of_type(self, event_type: type) -> Tuple[ScenarioEvent, ...]:
        """The spec's events of one type, in timeline (spec) order."""
        return tuple(e for e in self.events if isinstance(e, event_type))
