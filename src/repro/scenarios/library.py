"""The built-in scenario library.

Six named city days exercising every event type — the workloads the
distributed/streaming machinery gets stress-tested against beyond the one
calibrated synthetic Porto day:

==================  ========================================================
``morning-surge``   Commute rush: downtown demand at 2.5x between 07:30 and
                    09:30.
``stadium-event``   An evening match in the north-east: build-up migration
                    from downtown, a kick-out surge at 3.5x, and a road
                    cordon around the ground while fans stream in.
``rainy-day``       A slowed city (speeds at 70%) hailing 1.4x more all day.
``driver-strike``   A third of the fleet walks out at noon; partial
                    replacements sign on in the evening.
``airport-corridor``Early-morning demand mass migrating from downtown to
                    the airport corridor on the eastern edge, with a surge
                    on top.
``downtown-closure``The city core closed to pickups through the evening
                    peak — demand displaced to the ring around it.
==================  ========================================================

All are deterministic from their spec (seed included) and scale-free:
``get_scenario(name).with_scale(...)`` reruns any of them at CI-smoke or
city scale without changing shape.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import (
    DemandSurge,
    HotspotMigration,
    ScenarioSpec,
    SpatialFootprint,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
)

#: Fractional footprints reused across the library: the dense city core, a
#: stadium district in the north-east, the airport corridor on the east edge.
DOWNTOWN = SpatialFootprint(south=0.35, west=0.35, north=0.65, east=0.65)
STADIUM = SpatialFootprint(south=0.70, west=0.70, north=0.95, east=0.95)
STADIUM_APPROACH = SpatialFootprint(south=0.55, west=0.55, north=0.70, east=0.70)
AIRPORT = SpatialFootprint(south=0.40, west=0.80, north=0.60, east=1.00)


def _builtin_specs() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="morning-surge",
            description="Commute rush: 2.5x downtown demand between 07:30 and 09:30.",
            events=(
                DemandSurge(start_hour=7.5, end_hour=9.5, intensity=2.5, footprint=DOWNTOWN),
            ),
        ),
        ScenarioSpec(
            name="stadium-event",
            description=(
                "Evening match: build-up migration to the ground from 18:00, a "
                "road cordon on its approach while fans arrive, and a 3.5x "
                "kick-out surge at the stadium from 21:00."
            ),
            events=(
                HotspotMigration(
                    start_hour=18.0, end_hour=20.0,
                    source=DOWNTOWN, target=STADIUM, fraction=0.5,
                ),
                ZoneClosure(start_hour=19.0, end_hour=21.0, footprint=STADIUM_APPROACH),
                DemandSurge(start_hour=21.0, end_hour=23.0, intensity=3.5, footprint=STADIUM),
            ),
        ),
        ScenarioSpec(
            name="rainy-day",
            description="City-wide rain: speeds at 70%, 1.4x hailing all day.",
            events=(
                TravelSlowdown(speed_factor=0.7),
                DemandSurge(start_hour=0.0, end_hour=24.0, intensity=1.4),
            ),
        ),
        ScenarioSpec(
            name="driver-strike",
            description=(
                "A third of the fleet walks out at 12:00; replacements for "
                "half of them sign on at 17:00 for the evening."
            ),
            events=(
                SupplyShock(at_hour=12.0, driver_fraction=-1.0 / 3.0),
                SupplyShock(at_hour=17.0, driver_fraction=1.0 / 6.0, duration_hours=6.0),
            ),
        ),
        ScenarioSpec(
            name="airport-corridor",
            description=(
                "Early flights: 05:00-08:00 demand migrates from downtown to "
                "the airport corridor, with a 2x surge on the corridor itself."
            ),
            events=(
                HotspotMigration(
                    start_hour=5.0, end_hour=8.0,
                    source=DOWNTOWN, target=AIRPORT, fraction=0.6,
                ),
                DemandSurge(start_hour=5.0, end_hour=8.0, intensity=2.0, footprint=AIRPORT),
            ),
        ),
        ScenarioSpec(
            name="downtown-closure",
            description=(
                "The city core closed to pickups through the evening peak "
                "(16:00-20:00); demand hails from the surrounding ring."
            ),
            events=(
                ZoneClosure(start_hour=16.0, end_hour=20.0, footprint=DOWNTOWN),
            ),
        ),
    ]


#: Name -> spec registry of the built-in scenarios.
BUILTIN_SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in _builtin_specs()
}


def scenario_names() -> List[str]:
    """The built-in scenario names, in library order."""
    return list(BUILTIN_SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name.

    Raises
    ------
    KeyError
        With the available names, when ``name`` is unknown.
    """
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None
