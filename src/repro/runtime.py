"""Process-level runtime knobs shared by the pool and the benchmarks.

The multicore story of this repo is *process* parallelism: every shard worker
is a single-worker process and the speedup comes from running shards on
separate cores.  BLAS/OpenMP nested threading fights that design — NumPy
linked against OpenBLAS/MKL will happily spawn ``os.cpu_count()`` threads
*per worker process*, oversubscribing the machine and understating the
fan-out's speedup (the threads contend instead of the shards progressing).

:func:`pin_blas_threads` pins the common native thread pools to one thread.
It is called

* by the :class:`~repro.distributed.pool.PersistentWorkerPool` slot
  initialiser (so every worker process is pinned regardless of how it was
  started), and
* at the top of the benchmark harness (``benchmarks/conftest.py``) and the
  city-scale runner, *before* NumPy is imported — most BLAS builds read the
  environment once at load time, so pinning early in the parent also covers
  fork-started workers.

The default is ``setdefault`` semantics: an operator who deliberately
exported ``OMP_NUM_THREADS=8`` keeps their setting; pass ``force=True`` to
override.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

#: Environment variables read by the native thread pools NumPy/SciPy link
#: against (OpenMP, OpenBLAS, MKL, Accelerate, numexpr).
BLAS_ENV_VARS: Tuple[str, ...] = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def pin_blas_threads(threads: int = 1, *, force: bool = False) -> Dict[str, str]:
    """Pin BLAS/OpenMP thread pools to ``threads`` (default 1) via the
    environment.

    Returns the mapping of variables this call actually set.  With
    ``force=False`` (default) existing values — an operator's explicit
    choice — are left alone.  Call as early as possible: most BLAS builds
    size their pools once, when the library loads.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    value = str(threads)
    applied: Dict[str, str] = {}
    for name in BLAS_ENV_VARS:
        if force or name not in os.environ:
            os.environ[name] = value
            applied[name] = value
    return applied
