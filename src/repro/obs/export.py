"""Exposition: Chrome trace-event JSON, Prometheus text, and a tiny HTTP server.

Chrome trace format — each finished span becomes one complete event
(``"ph": "X"``) with microsecond timestamps rebased to the earliest span, so
the file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Track assignment follows the span tree: a span
inherits the ``pid`` attribute of its nearest annotated ancestor (worker
roots are stamped with their OS pid), so each worker process gets its own
track and the coordinator's spans sit on track 0.

Prometheus text exposition (version 0.0.4) — ``# HELP`` / ``# TYPE``
comments per family, escaped label values, cumulative ``_bucket{le=...}``
lines plus ``_sum`` / ``_count`` for histograms.

The HTTP server is a hand-rolled ``asyncio.start_server`` responder (the
container has no aiohttp and the service already owns an event loop):
``GET /metrics`` renders a registry, ``GET /health`` renders a JSON payload,
anything else is 404.  One request per connection, ``Connection: close``.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import NO_PARENT, SpanTuple

__all__ = [
    "chrome_trace_events",
    "render_prometheus",
    "start_http_server",
    "write_chrome_trace",
]


# -- Chrome trace-event JSON -----------------------------------------------


def _resolve_pids(spans: Sequence[SpanTuple]) -> Dict[int, int]:
    """Map span_id -> pid by walking up to the nearest ``pid`` attribute."""
    by_id = {entry[0]: entry for entry in spans}
    memo: Dict[int, int] = {}

    def pid_of(span_id: int) -> int:
        if span_id in memo:
            return memo[span_id]
        chain = []
        current = span_id
        pid = 0
        while current in by_id and current not in memo:
            chain.append(current)
            entry = by_id[current]
            attr_pid = next(
                (value for key, value in entry[5] if key == "pid"), None
            )
            if attr_pid is not None:
                pid = int(attr_pid)
                break
            parent = entry[1]
            if parent == NO_PARENT or parent not in by_id:
                break
            current = parent
        else:
            if current in memo:
                pid = memo[current]
        for visited in chain:
            memo[visited] = pid
        return pid

    for entry in spans:
        pid_of(entry[0])
    return memo


def chrome_trace_events(spans: Sequence[SpanTuple]) -> List[dict]:
    """Spans as Chrome trace complete events (list for ``traceEvents``)."""
    if not spans:
        return []
    origin_s = min(entry[3] for entry in spans)
    pids = _resolve_pids(spans)
    events = []
    for span_id, _parent, name, start_s, end_s, attrs in spans:
        pid = pids.get(span_id, 0)
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": round((start_s - origin_s) * 1e6, 3),
                "dur": round(max(0.0, end_s - start_s) * 1e6, 3),
                "pid": pid,
                "tid": pid,
                "args": {str(key): value for key, value in attrs},
            }
        )
    return events


def write_chrome_trace(path: str, spans: Sequence[SpanTuple]) -> None:
    """Write spans as a Perfetto/chrome://tracing loadable JSON file."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "pid": os.getpid()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


# -- Prometheus text exposition --------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Iterable[Tuple[str, str]]) -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for name, (kind, help_text, metrics) in registry.collect().items():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for label_key, metric in sorted(metrics.items()):
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_labels_text(label_key)} {_format_value(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    bucket_labels = _labels_text(
                        list(label_key) + [("le", _format_value(bound))]
                    )
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                inf_labels = _labels_text(list(label_key) + [("le", "+Inf")])
                lines.append(f"{name}_bucket{inf_labels} {metric.count}")
                lines.append(
                    f"{name}_sum{_labels_text(label_key)} {_format_value(metric.sum)}"
                )
                lines.append(f"{name}_count{_labels_text(label_key)} {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


# -- asyncio /metrics + /health endpoint -----------------------------------

_MAX_REQUEST_BYTES = 16384


def _http_response(status: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _handle_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    registry_fn: Callable[[], MetricsRegistry],
    health_fn: Optional[Callable[[], Mapping[str, object]]],
) -> None:
    try:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
        ):
            return
        request_line = raw.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        target = parts[1] if len(parts) >= 2 else ""
        path = target.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(registry_fn()).encode("utf-8")
            response = _http_response("200 OK", PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/health" and health_fn is not None:
            body = json.dumps(health_fn()).encode("utf-8")
            response = _http_response("200 OK", "application/json", body)
        else:
            response = _http_response(
                "404 Not Found", "text/plain; charset=utf-8", b"not found\n"
            )
        writer.write(response)
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(
    registry_fn: Callable[[], MetricsRegistry],
    health_fn: Optional[Callable[[], Mapping[str, object]]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Serve ``/metrics`` (and ``/health``) on the current event loop.

    ``registry_fn`` is called per scrape so the caller can hand back a
    long-lived registry whose collectors read live objects.  Returns the
    ``asyncio`` server; the bound port is
    ``server.sockets[0].getsockname()[1]`` when ``port=0``.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_request(reader, writer, registry_fn, health_fn)

    return await asyncio.start_server(
        handler, host=host, port=port, limit=_MAX_REQUEST_BYTES
    )
