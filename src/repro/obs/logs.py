"""Structured logging for the ``repro.*`` logger tree.

Every module logs through ``logging.getLogger("repro.<module>")``; nothing
is emitted until :func:`configure_logging` installs a handler on the
``repro`` root — so library users who never opt in see no output change,
and the CLI's diagnostic prints stay prints.  Configuration comes from
``--log-level`` on the CLI or the ``REPRO_LOG`` environment variable
(``REPRO_LOG=debug repro solve ...``); the flag wins when both are set.

Worker processes can't see the parent's handlers, so the pool relays:
:class:`~repro.distributed.pool.PersistentWorkerPool` creates a
``multiprocessing.Queue``, the slot initializer calls
:func:`init_worker_logging` to point the worker's ``repro`` logger at a
``QueueHandler``, and the parent's :func:`start_record_relay` listener
re-dispatches each record through the parent logger tree — one stream of
records, worker provenance preserved in ``processName``.
"""

from __future__ import annotations

import logging
import logging.handlers
import os
from typing import Optional, Tuple

__all__ = [
    "configure_logging",
    "configured_level",
    "get_logger",
    "init_worker_logging",
    "resolve_level",
    "start_record_relay",
]

ENV_VAR = "REPRO_LOG"
ROOT_LOGGER = "repro"
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(processName)s %(name)s: %(message)s"

_configured_level: Optional[int] = None

_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}


def resolve_level(spec: object) -> Optional[int]:
    """Parse a level name (``"debug"``) or number; None/"" -> None."""
    if spec is None:
        return None
    if isinstance(spec, int):
        return spec
    text = str(spec).strip().lower()
    if not text:
        return None
    if text in _LEVELS:
        return _LEVELS[text]
    if text.isdigit():
        return int(text)
    raise ValueError(
        f"unknown log level {spec!r} (expected one of {sorted(_LEVELS)})"
    )


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (bare names are namespaced)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level: object = None) -> Optional[int]:
    """Install a stderr handler on the ``repro`` logger at ``level``.

    ``level`` may be a name, a number, or None — None falls back to the
    ``REPRO_LOG`` environment variable, and if that is unset too this is a
    no-op returning None.  Idempotent: reconfiguring adjusts the level
    without stacking handlers.
    """
    global _configured_level
    resolved = resolve_level(level)
    if resolved is None:
        resolved = resolve_level(os.environ.get(ENV_VAR))
    if resolved is None:
        return None
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(resolved)
    logger.propagate = False
    if not any(
        isinstance(handler, logging.StreamHandler)
        and getattr(handler, "_repro_handler", False)
        for handler in logger.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    _configured_level = resolved
    return resolved


def configured_level() -> Optional[int]:
    """The level :func:`configure_logging` last installed, if any."""
    return _configured_level


# -- worker-process relay ---------------------------------------------------


class _RelayHandler(logging.Handler):
    """Re-dispatch a worker's record through the parent's logger tree."""

    def emit(self, record: logging.LogRecord) -> None:
        logging.getLogger(record.name).handle(record)


def start_record_relay(queue) -> logging.handlers.QueueListener:
    """Parent side: drain worker records from ``queue`` into local handlers."""
    listener = logging.handlers.QueueListener(
        queue, _RelayHandler(), respect_handler_level=False
    )
    listener.start()
    return listener


def init_worker_logging(spec: Optional[Tuple[object, int]]) -> None:
    """Worker side: route the ``repro`` tree into the parent's relay queue.

    ``spec`` is ``(queue, level)`` as shipped through the slot initializer,
    or None when the parent never configured logging (then workers fall back
    to ``REPRO_LOG`` so a bare pool still honours the environment).
    """
    if spec is None:
        configure_logging(None)
        return
    queue, level = spec
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    if not any(
        isinstance(handler, logging.handlers.QueueHandler)
        for handler in logger.handlers
    ):
        logger.addHandler(logging.handlers.QueueHandler(queue))
    global _configured_level
    _configured_level = level
