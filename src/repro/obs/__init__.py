"""Cross-cutting observability: flight-recorder tracing, metrics, exposition.

Every layer below the service is timing-sensitive — candidate kernels,
per-window Hungarian solves, LP tiers, shm transport, merges — and every
layer above it wants to know where the time went.  This package is the one
place both meet:

:mod:`~repro.obs.trace`
    A span-based flight recorder on the monotonic clock.  Spans carry a
    name, parent, and small attribute tuples; worker-side spans are
    collected inside slot executors and shipped back as plain tuples on the
    existing result wire, then stitched into one cross-process tree per
    solve / stream / epoch.  Disabled (the default) it is a no-op.

:mod:`~repro.obs.registry`
    Counters / gauges / fixed-bucket histograms with bounded memory, plus
    duck-typed views that absorb :class:`~repro.service.metrics.CityMetrics`
    and :class:`~repro.distributed.transport.TransportStats` so the service,
    the coordinator, and the benchmarks all read one schema.

:mod:`~repro.obs.export`
    Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``),
    Prometheus text exposition, and the tiny asyncio HTTP endpoint behind
    ``repro serve --metrics-port``.

:mod:`~repro.obs.logs`
    Structured ``logging`` configuration (``--log-level`` / ``REPRO_LOG``)
    with worker-process records relayed to the parent through the pool.

**Parity contract 19 (traced == untraced):** enabling tracing only ever
reads clocks and appends to buffers — it never feeds back into dispatch
arithmetic, so merges, reports, and wait totals are bit-identical with
tracing on or off, across serial/thread/process executors and the shm
transport.  Pinned by ``tests/distributed/test_obs_parity.py``.
"""

from .logs import configure_logging, configured_level, resolve_level
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_city_metrics,
    bind_transport_stats,
)
from .trace import (
    PHASE_NAMES,
    TraceRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    phase_of,
    phase_totals,
    span,
    tracing_enabled,
)
from .export import (
    chrome_trace_events,
    render_prometheus,
    start_http_server,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASE_NAMES",
    "TraceRecorder",
    "active_recorder",
    "bind_city_metrics",
    "bind_transport_stats",
    "chrome_trace_events",
    "configure_logging",
    "configured_level",
    "disable_tracing",
    "enable_tracing",
    "phase_of",
    "phase_totals",
    "render_prometheus",
    "resolve_level",
    "span",
    "start_http_server",
    "tracing_enabled",
    "write_chrome_trace",
]
