"""Span-based flight recorder on the monotonic clock.

A *span* is a named interval with a parent, recorded as a plain tuple::

    (span_id, parent_id, name, start_s, end_s, attrs)

where ``attrs`` is a tuple of ``(key, value)`` pairs holding only
str/int/float/bool values.  Plain tuples are the whole point: they pickle
through the worker result wire unchanged, they survive the shm transport's
descriptor path (results always return pickled), and they need no import of
this module to be carried around.

Timestamps come from :func:`time.perf_counter`.  On Linux that is
``CLOCK_MONOTONIC``, which shares one epoch across every process on the
machine — so spans recorded inside slot executors can be stitched into the
coordinator's tree by :meth:`TraceRecorder.adopt` without clock translation.
(On platforms where ``perf_counter`` is per-process the stitched tree still
nests correctly; only cross-process gaps become approximate.)

The recorder is **off by default and a no-op when off**: the module-level
:func:`span` helper returns a shared null context manager after a single
``is None`` check, so instrumented hot paths (one or two spans per dispatch
window) cost nanoseconds when nobody is recording.  Parity contract 19
holds structurally — tracing reads clocks and appends to a list, and never
feeds back into dispatch arithmetic.

Memory is bounded: a recorder keeps at most ``max_spans`` spans and counts
the rest in :attr:`TraceRecorder.dropped`.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "NO_PARENT",
    "PHASE_NAMES",
    "SpanTuple",
    "TraceRecorder",
    "active_recorder",
    "disable_tracing",
    "enable_tracing",
    "phase_of",
    "phase_totals",
    "span",
    "tracing_enabled",
]

#: Attribute tuple: ((key, value), ...) with scalar values only.
AttrTuple = Tuple[Tuple[str, object], ...]

#: The wire format for one finished span.
SpanTuple = Tuple[int, int, str, float, float, AttrTuple]

#: ``parent_id`` of a root span.
NO_PARENT = -1

#: Sentinel id returned by ``begin`` once the span budget is exhausted.
DROPPED = -2

#: Default span budget per recorder (~64 bytes/span of tuples).
DEFAULT_MAX_SPANS = 250_000


def _freeze_attrs(attrs: Dict[str, object]) -> AttrTuple:
    return tuple((key, value) for key, value in attrs.items())


class _SpanHandle:
    """Re-entrant-safe context manager closing one ``begin``-ed span."""

    __slots__ = ("_recorder", "_span_id")

    def __init__(self, recorder: "TraceRecorder", span_id: int) -> None:
        self._recorder = recorder
        self._span_id = span_id

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._recorder.end(self._span_id)


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects spans with implicit per-thread parent nesting.

    ``begin``/``end`` are the primitive API (needed for spans that outlive a
    single call frame, e.g. a stream session's lifetime span); ``span`` is
    the context-manager sugar used everywhere else.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = int(max_spans)
        self.dropped = 0
        # Each entry: [span_id, parent_id, name, start_s, end_s|None, attrs]
        self._spans: List[list] = []
        self._tls = threading.local()

    # -- primitives --------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def begin(
        self,
        name: str,
        parent_id: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Open a span; returns its id (or a sentinel once over budget)."""
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return DROPPED
        stack = self._stack()
        if parent_id is None:
            parent_id = stack[-1] if stack else NO_PARENT
        span_id = len(self._spans)
        self._spans.append(
            [span_id, parent_id, name, perf_counter(), None, _freeze_attrs(attrs)]
        )
        stack.append(span_id)
        return span_id

    def end(self, span_id: int) -> None:
        """Close a previously ``begin``-ed span."""
        if span_id < 0:
            return
        end_s = perf_counter()
        entry = self._spans[span_id]
        if entry[4] is None:
            entry[4] = end_s
        stack = self._stack()
        if span_id in stack:
            # Pop through: abandoning children closes them at the same time.
            while stack:
                popped = stack.pop()
                inner = self._spans[popped]
                if inner[4] is None:
                    inner[4] = end_s
                if popped == span_id:
                    break

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        return _SpanHandle(self, self.begin(name, **attrs))

    def annotate(self, span_id: int, **attrs: object) -> None:
        """Append attributes to an open or closed span."""
        if span_id < 0:
            return
        entry = self._spans[span_id]
        entry[5] = entry[5] + _freeze_attrs(attrs)

    # -- export / stitch ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def mark(self) -> int:
        """Position marker for :meth:`spans_since`."""
        return len(self._spans)

    def export(self) -> Tuple[SpanTuple, ...]:
        """All spans as immutable wire tuples (open spans closed at *now*)."""
        return self.spans_since(0)

    def spans_since(self, mark: int) -> Tuple[SpanTuple, ...]:
        now = perf_counter()
        out = []
        for entry in self._spans[mark:]:
            end_s = entry[4] if entry[4] is not None else now
            out.append((entry[0], entry[1], entry[2], entry[3], end_s, entry[5]))
        return tuple(out)

    def adopt(
        self,
        spans: Sequence[SpanTuple],
        parent_id: int = NO_PARENT,
        **root_attrs: object,
    ) -> int:
        """Graft spans exported by another recorder under ``parent_id``.

        Ids are remapped by offset so the grafted subtree keeps its internal
        parent/child structure; spans that were roots in the worker become
        children of ``parent_id``.  ``root_attrs`` are appended to those
        re-rooted spans (e.g. ``shard=3``).  Returns the number adopted.
        """
        if not spans:
            return 0
        base = len(self._spans)
        budget = self.max_spans - base
        if budget <= 0:
            self.dropped += len(spans)
            return 0
        extra = _freeze_attrs(root_attrs)
        adopted = 0
        for span_id, old_parent, name, start_s, end_s, attrs in spans:
            if adopted >= budget:
                self.dropped += 1
                continue
            if old_parent == NO_PARENT:
                new_parent = parent_id
                new_attrs = attrs + extra if extra else attrs
            else:
                new_parent = base + old_parent
                new_attrs = attrs
            self._spans.append(
                [base + adopted, new_parent, name, start_s, end_s, new_attrs]
            )
            adopted += 1
        return adopted


# -- module-level switch ---------------------------------------------------
#
# The active recorder is **thread-local**: a shard session running on a
# thread-pool slot installs its own recorder for the duration of each call
# without ever seeing (or disturbing) the coordinator's recorder on the main
# thread — which is what keeps worker-side span attribution correct under
# the thread executor policy, where many shards share one process.

_TLS = threading.local()


def enable_tracing(max_spans: int = DEFAULT_MAX_SPANS) -> TraceRecorder:
    """Install (and return) a fresh recorder for the calling thread."""
    recorder = TraceRecorder(max_spans=max_spans)
    _TLS.recorder = recorder
    return recorder


def disable_tracing() -> Optional[TraceRecorder]:
    """Remove the calling thread's recorder; returns it for export."""
    recorder = getattr(_TLS, "recorder", None)
    _TLS.recorder = None
    return recorder


def install_recorder(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Swap in a specific recorder (worker sessions save/restore with this)."""
    previous = getattr(_TLS, "recorder", None)
    _TLS.recorder = recorder
    return previous


def active_recorder() -> Optional[TraceRecorder]:
    return getattr(_TLS, "recorder", None)


def tracing_enabled() -> bool:
    return getattr(_TLS, "recorder", None) is not None


def span(name: str, **attrs: object):
    """Record a span on the active recorder; free no-op when tracing is off."""
    recorder = getattr(_TLS, "recorder", None)
    if recorder is None:
        return _NULL_SPAN
    return _SpanHandle(recorder, recorder.begin(name, **attrs))


# -- phase aggregation -----------------------------------------------------

#: Per-phase breakdown columns reported by CoordinatorReport / StreamReport.
PHASE_NAMES: Tuple[str, ...] = ("candidates", "hungarian", "lp", "transport", "merge")

_PHASE_BY_SPAN: Dict[str, str] = {
    "candidates": "candidates",
    "hungarian": "hungarian",
    "greedy": "lp",
    "lagrangian": "lp",
    "lp": "lp",
    "merge": "merge",
}


def phase_of(name: str) -> Optional[str]:
    """Map a span name onto one of :data:`PHASE_NAMES` (None = uncategorised).

    Only leaf-level span names are categorised — container spans such as
    ``shard_solve`` or ``append`` deliberately map to None so a phase's
    seconds are never double-counted through nesting.
    """
    if name.startswith("transport:"):
        return "transport"
    return _PHASE_BY_SPAN.get(name)


def phase_totals(spans: Iterable[SpanTuple]) -> Tuple[Tuple[str, float], ...]:
    """Sum span durations by phase, in :data:`PHASE_NAMES` order."""
    totals = {phase: 0.0 for phase in PHASE_NAMES}
    for _, _, name, start_s, end_s, _ in spans:
        phase = phase_of(name)
        if phase is not None:
            totals[phase] += max(0.0, end_s - start_s)
    return tuple((phase, totals[phase]) for phase in PHASE_NAMES)
