"""Unified counters / gauges / histograms with bounded memory.

One registry, one schema: the asyncio service, the coordinator, and the
benchmarks all describe themselves through the same three instrument kinds,
and :func:`repro.obs.export.render_prometheus` turns any registry into text
exposition.  Memory is bounded by construction — counters and gauges are a
single float, histograms hold a fixed bucket array, and the latency views
below read :class:`~repro.service.metrics.LatencyRecorder`'s fixed-size
reservoir rather than keeping samples of their own.

Existing stat carriers are **absorbed as views, not rewritten**:
:func:`bind_city_metrics` and :func:`bind_transport_stats` register
*collectors* — callbacks run at scrape time that copy the live object's
current values into registry instruments.  The carriers stay the source of
truth (and keep their ``snapshot()`` dict APIs); the registry is how they
reach ``/metrics``.  Both binders are duck-typed on the carrier's public
attributes so this module imports neither the service nor the transport
layer.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bind_city_metrics",
    "bind_transport_stats",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Latency buckets in seconds (5ms .. 10s), Prometheus-style upper bounds.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """Monotonically non-decreasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Collector hook: adopt an externally-maintained monotone total."""
        self.value = max(self.value, float(value))


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative on render, plain counts in memory)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.counts = [0] * (len(self.bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def set_state(
        self, counts: Iterable[int], total_sum: float, total_count: int
    ) -> None:
        """Collector hook: adopt externally-maintained bucket counts."""
        counts = list(counts)
        if len(counts) != len(self.counts):
            raise ValueError(
                f"expected {len(self.counts)} bucket counts, got {len(counts)}"
            )
        self.counts = counts
        self.sum = float(total_sum)
        self.count = int(total_count)


class _Family:
    __slots__ = ("kind", "help", "bounds", "metrics")

    def __init__(self, kind: str, help_text: str, bounds: Optional[Tuple[float, ...]]):
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.metrics: Dict[LabelKey, object] = {}


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create instrument registry keyed by (name, labels)."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _instrument(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Mapping[str, object],
        bounds: Optional[Tuple[float, ...]] = None,
    ):
        family = self._families.get(name)
        if family is None:
            family = _Family(kind, help_text, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(f"{name!r} already registered as {family.kind}")
        key = _label_key(labels)
        metric = family.metrics.get(key)
        if metric is None:
            if kind == "counter":
                metric = Counter()
            elif kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(family.bounds or DEFAULT_LATENCY_BUCKETS_S)
            family.metrics[key] = metric
        return metric

    def counter(self, name: str, help_text: str = "", **labels: object) -> Counter:
        return self._instrument("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: object) -> Gauge:
        return self._instrument("gauge", name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: object,
    ) -> Histogram:
        return self._instrument("histogram", name, help_text, labels, tuple(buckets))

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Add a scrape-time callback that refreshes view-backed instruments."""
        self._collectors.append(collector)

    def collect(self) -> Dict[str, Tuple[str, str, Dict[LabelKey, object]]]:
        """Run collectors, then return ``{name: (kind, help, metrics)}``."""
        for collector in self._collectors:
            collector(self)
        return {
            name: (family.kind, family.help, dict(family.metrics))
            for name, family in sorted(self._families.items())
        }


# -- views over existing stat carriers -------------------------------------


def _observe_recorder(histogram: Histogram, recorder: object) -> None:
    """Copy a LatencyRecorder's exact bucket/sum/count state into a histogram."""
    histogram.set_state(
        recorder.bucket_counts(),  # type: ignore[attr-defined]
        recorder.sum_seconds,  # type: ignore[attr-defined]
        len(recorder),  # type: ignore[arg-type]
    )


def bind_city_metrics(
    registry: MetricsRegistry, metrics: object, city: str = ""
) -> None:
    """Expose a live ``CityMetrics`` through the registry (scrape-time view).

    Duck-typed on the public ``CityMetrics`` surface: integer counters
    (orders/batches/epochs/backpressure_events/served), the ``serve_rate``
    property, the ``dispatch`` latency recorder, and the lazy
    ``per_shard_append`` recorder map.
    """

    def collect(reg: MetricsRegistry) -> None:
        reg.counter(
            "repro_orders_total", "Orders accepted by the gateway", city=city
        ).set_total(metrics.orders)
        reg.counter(
            "repro_batches_total", "Publish-ordered batches shipped", city=city
        ).set_total(metrics.batches)
        reg.counter(
            "repro_epochs_total", "Stream epochs rotated", city=city
        ).set_total(metrics.epochs)
        reg.counter(
            "repro_backpressure_events_total",
            "Times ingest waited on a deep shard queue",
            city=city,
        ).set_total(metrics.backpressure_events)
        reg.counter(
            "repro_served_total", "Orders served across finished epochs", city=city
        ).set_total(metrics.served)
        serve_rate = metrics.serve_rate
        reg.gauge(
            "repro_serve_rate", "served / orders over finished epochs", city=city
        ).set(serve_rate if serve_rate is not None else math.nan)
        bounds = tuple(metrics.dispatch.BUCKET_BOUNDS_S)
        dispatch = reg.histogram(
            "repro_dispatch_latency_seconds",
            "Order submit -> dispatch decision latency",
            buckets=bounds,
            city=city,
        )
        _observe_recorder(dispatch, metrics.dispatch)
        for shard_id, recorder in sorted(metrics.per_shard_append.items()):
            append = reg.histogram(
                "repro_append_latency_seconds",
                "Batch append round-trip per shard",
                buckets=bounds,
                city=city,
                shard=shard_id,
            )
            _observe_recorder(append, recorder)

    registry.register_collector(collect)


def bind_transport_stats(
    registry: MetricsRegistry, stats: object, **labels: object
) -> None:
    """Expose a live ``TransportStats`` through the registry.

    Duck-typed on ``snapshot()``; every numeric key becomes either a counter
    (monotone totals) or a gauge.
    """

    _monotone = (
        "_bytes", "_reuses", "_fallbacks", "_shipments", "_created", "_retired",
    )

    def collect(reg: MetricsRegistry) -> None:
        snapshot = stats.snapshot()  # type: ignore[attr-defined]
        for key, value in snapshot.items():
            if not isinstance(value, (int, float)):
                continue
            name = f"repro_transport_{key}"
            if key.endswith(_monotone) or key == "bytes_over_pipe":
                reg.counter(
                    name + "_total", f"TransportStats.{key}", **labels
                ).set_total(value)
            else:
                reg.gauge(name, f"TransportStats.{key}", **labels).set(value)

    registry.register_collector(collect)
