"""Exact tier at scale — per-shard LP / min-cost-flow solver (ROADMAP item).

The arc-flow model of :mod:`repro.offline.formulation` is a min-cost-flow
program on each driver's task-map DAG: one unit of flow per driver from her
source to her sink, task-capacity coupling across drivers, profit-maximising
arc costs.  :mod:`repro.offline.exact` solves it as a MILP but refuses past
toy sizes; :mod:`repro.offline.relaxation` solves the LP but returns only the
bound.  This module closes the gap for shard-sized instances: solve the LP
once, and

* **certify** the solution when the LP optimum lands on an integral vertex —
  the per-driver subproblems are path polytopes over DAGs, so an integral
  flow decodes into node-disjoint paths and *is* the exact optimum ``Z*``;
* **repair** a fractional optimum into a feasible solution with a documented
  rounding pass (below), never returning anything worse than the greedy
  incumbent;
* always return the LP value ``Z*_f`` as a certified upper bound, so every
  solution ships with an optimality gap.

Feasibility repair (LP-guided sequential rounding).  Fractional vertices are
rare (the per-driver polytopes are integral; only the task-capacity coupling
can fractionate) and mild when they happen, so a light rounding pass
suffices: order drivers by their share of the LP objective (descending,
fleet order breaking ties — deterministic), then re-run the exact per-driver
DAG dynamic program (:func:`repro.offline.dag.best_path`) restricted to the
tasks the LP routed through that driver and not yet claimed by an earlier
driver.  The result is feasible by construction (every chosen path is a real
task-map path over disjoint tasks); if it still trails the greedy incumbent,
the incumbent is returned instead — so the sandwich invariant

    greedy value  <=  LP-tier value  <=  Z*_f  <=  Lagrangian bound

holds unconditionally (the last inequality by weak duality, see
:mod:`repro.offline.lagrangian`).

:func:`solve_exact_tier` packages the whole tier for the distributed
coordinator: greedy incumbent, Lagrangian bound, optional gap-gated LP
(``mode="auto"`` skips the LP on shards where greedy is already within the
gap threshold of the bound), and a :class:`ShardBounds` record that travels
back over the existing ``ShardWorkResult`` wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from ..core.objectives import Objective
from ..core.solution import MarketSolution
from ..market.instance import MarketInstance
from ..obs import trace as obs_trace
from .dag import best_path
from .exact import ExactSolverError
from .formulation import ArcFlowModel, build_arc_flow_model
from .greedy import GreedySolver
from .lagrangian import lagrangian_bound

#: Arc values closer to an integer than this are treated as integral.
INTEGRALITY_TOL = 1e-6

#: Default relative-gap threshold below which ``mode="auto"`` keeps greedy.
DEFAULT_GAP_THRESHOLD = 0.02

#: Subgradient iterations for the per-shard Lagrangian bound.
DEFAULT_LAGRANGIAN_ITERATIONS = 40


class FlowSolverError(ExactSolverError):
    """Raised when the LP solver itself fails (never for empty/degenerate
    instances, which short-circuit like greedy does)."""


def relative_gap(value: float, bound: float) -> float:
    """Relative optimality gap of ``value`` against an upper ``bound``.

    Clamped at 0 so floating-point noise (value a few ulp above the bound)
    never reports a negative gap; gap >= 0 is parity contract 17's invariant.
    """
    return max(0.0, bound - value) / max(abs(bound), 1e-9)


@dataclass(frozen=True, slots=True)
class ShardBounds:
    """The bound sandwich for one shard (or one whole instance).

    ``greedy_value <= lp_value <= min(lp_bound, lagrangian_bound)`` — all of
    them *objective* values (drivers' profit or social welfare, Eq. 4/6), the
    quantity the solvers optimise.  ``chosen_solver`` records which tier
    produced the shipped solution (``"greedy"`` when ``mode="auto"`` decided
    the gap was already small enough to skip the LP; then ``lp_value`` simply
    repeats the greedy value and ``lp_bound`` the Lagrangian bound).
    """

    greedy_value: float
    lp_value: float
    lp_bound: float
    lagrangian_bound: float
    chosen_solver: str
    lp_ran: bool
    lp_integral: bool
    lp_repaired: bool

    @classmethod
    def zero(cls, chosen_solver: str = "greedy") -> "ShardBounds":
        """Bounds of a degenerate (no tasks / no drivers) shard."""
        return cls(
            greedy_value=0.0,
            lp_value=0.0,
            lp_bound=0.0,
            lagrangian_bound=0.0,
            chosen_solver=chosen_solver,
            lp_ran=False,
            lp_integral=True,
            lp_repaired=False,
        )

    @property
    def upper_bound(self) -> float:
        """The tightest certified upper bound available."""
        return min(self.lp_bound, self.lagrangian_bound)

    @property
    def optimality_gap(self) -> float:
        """Relative gap of the shipped (LP-tier) solution."""
        return relative_gap(self.lp_value, self.upper_bound)

    @property
    def greedy_gap(self) -> float:
        """Relative gap of the greedy incumbent — the scenario "error bar"."""
        return relative_gap(self.greedy_value, self.upper_bound)

    def as_dict(self) -> Dict[str, object]:
        return {
            "greedy_value": self.greedy_value,
            "lp_value": self.lp_value,
            "lp_bound": self.lp_bound,
            "lagrangian_bound": self.lagrangian_bound,
            "upper_bound": self.upper_bound,
            "optimality_gap": self.optimality_gap,
            "greedy_gap": self.greedy_gap,
            "chosen_solver": self.chosen_solver,
            "lp_ran": self.lp_ran,
            "lp_integral": self.lp_integral,
            "lp_repaired": self.lp_repaired,
        }


@dataclass(frozen=True)
class FlowResult:
    """LP-tier solution plus its certificate.

    The first three fields mirror :class:`repro.offline.exact.ExactResult`
    so downstream consumers treat both tiers interchangeably; the rest is the
    certificate: ``upper_bound`` is ``Z*_f``, ``integral`` says whether the
    LP vertex itself was the optimum (then ``optimum == upper_bound`` up to
    float noise), ``repaired`` whether the rounding pass ran.
    """

    optimum: float
    solution: MarketSolution
    solver_status: str
    upper_bound: float
    integral: bool
    repaired: bool
    fractional_arc_count: int

    @property
    def optimality_gap(self) -> float:
        return relative_gap(self.optimum, self.upper_bound)


def lp_flow_optimum(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    include_rationality: bool = True,
    incumbent: Optional[MarketSolution] = None,
) -> FlowResult:
    """Solve the arc-flow LP and return a feasible solution + certified bound.

    Parameters
    ----------
    instance:
        The market (shard) instance; any size the LP can hold in memory.
    objective:
        Drivers' profit (Eq. 4) or social welfare (Eq. 6).
    include_rationality:
        Keep the per-driver individual-rationality rows (5b).
    incumbent:
        A known feasible solution (typically greedy's).  When the LP vertex
        is fractional, the repaired solution is compared against it and the
        better of the two is returned — so ``optimum >= incumbent`` always.
        ``None`` computes the greedy incumbent on demand.

    Degenerate instances (no tasks, no drivers, or no usable arcs) return the
    empty solution with status ``"empty"`` — matching greedy's short-circuit —
    and never raise.
    """
    model = build_arc_flow_model(
        instance, objective=objective, include_rationality=include_rationality
    )
    if model.variable_count == 0:
        return FlowResult(
            optimum=0.0,
            solution=MarketSolution.empty(instance, objective),
            solver_status="empty",
            upper_bound=0.0,
            integral=True,
            repaired=False,
            fractional_arc_count=0,
        )

    with obs_trace.span("lp", variables=model.variable_count):
        result = optimize.linprog(
            c=-model.objective,  # linprog minimises
            A_ub=model.A_ub,
            b_ub=model.b_ub,
            A_eq=model.A_eq,
            b_eq=model.b_eq,
            bounds=(0.0, 1.0),
            method="highs",
        )
    if not result.success:
        raise FlowSolverError(f"arc-flow LP failed: {result.message}")
    values = np.asarray(result.x)
    upper_bound = float(-result.fun + model.constant)
    rounded = np.round(values)
    fractional = np.abs(values - rounded)
    fractional_count = int(np.sum(fractional > INTEGRALITY_TOL))

    if fractional_count == 0:
        # Integral vertex: the LP optimum *is* the exact optimum.  A DAG flow
        # with integral values decomposes into one source->sink path per
        # driver (no cycles possible), so the decode below cannot fail.
        assignment = model.solution_to_assignment(rounded)
        solution = MarketSolution.from_assignment(instance, assignment, objective)
        return FlowResult(
            optimum=solution.total_value,
            solution=solution,
            solver_status=str(result.message),
            upper_bound=upper_bound,
            integral=True,
            repaired=False,
            fractional_arc_count=0,
        )

    # Fractional vertex: repair (LP-guided sequential rounding, module
    # docstring) and keep the better of repaired vs incumbent.
    if incumbent is None:
        incumbent = GreedySolver(objective).solve(instance).solution
    repaired = _lp_guided_rounding(instance, model, values, objective)
    chosen = repaired if repaired.total_value > incumbent.total_value else incumbent
    return FlowResult(
        optimum=chosen.total_value,
        solution=chosen,
        solver_status=str(result.message),
        upper_bound=upper_bound,
        integral=False,
        repaired=True,
        fractional_arc_count=fractional_count,
    )


def _lp_guided_rounding(
    instance: MarketInstance,
    model: ArcFlowModel,
    values: np.ndarray,
    objective: Objective,
) -> MarketSolution:
    """Round a fractional LP vertex into a feasible solution.

    Deterministic: driver order is (descending LP objective share, fleet
    position), and within a driver the exact DAG DP picks the path.
    """
    tol = 1e-9
    task_count = instance.task_count
    support: Dict[str, np.ndarray] = {}
    share: Dict[str, float] = {}
    for arc, value, coefficient in zip(model.arcs, values, model.objective):
        if value <= tol:
            continue
        driver_id, _tail, head = arc
        share[driver_id] = share.get(driver_id, 0.0) + float(coefficient) * float(value)
        if not isinstance(head, str):  # head is a task index (not the sink)
            mask = support.get(driver_id)
            if mask is None:
                mask = np.zeros(task_count, dtype=bool)
                support[driver_id] = mask
            mask[int(head)] = True

    fleet_position = {d.driver_id: i for i, d in enumerate(instance.drivers)}
    order = sorted(
        support, key=lambda d: (-share.get(d, 0.0), fleet_position[d])
    )

    use_valuation = objective.uses_valuation
    available = np.ones(task_count, dtype=bool)
    assignment: Dict[str, Tuple[int, ...]] = {}
    for driver_id in order:
        allowed = available & support[driver_id]
        if not allowed.any():
            continue
        result = best_path(
            instance.task_map(driver_id), available=allowed, use_valuation=use_valuation
        )
        if result.profit > 0.0:
            assignment[driver_id] = result.path
            available[list(result.path)] = False
    return MarketSolution.from_assignment(instance, assignment, objective)


def solve_exact_tier(
    instance: MarketInstance,
    *,
    objective: Objective = Objective.DRIVERS_PROFIT,
    mode: str = "lp",
    gap_threshold: float = DEFAULT_GAP_THRESHOLD,
    lagrangian_iterations: int = DEFAULT_LAGRANGIAN_ITERATIONS,
) -> Tuple[MarketSolution, ShardBounds]:
    """Run the full exact tier on one (shard) instance.

    ``mode="lp"`` always solves the LP; ``mode="auto"`` first checks the
    greedy incumbent against the (cheap, DP-only) Lagrangian bound and keeps
    greedy when its relative gap is already ``<= gap_threshold`` — the
    "greedy is good enough" auto-selection of the ROADMAP item.

    Returns the shipped solution and the :class:`ShardBounds` sandwich.
    """
    if mode not in ("lp", "auto"):
        raise ValueError(f"unknown exact-tier mode {mode!r}")
    if instance.task_count == 0 or instance.driver_count == 0:
        return MarketSolution.empty(instance, objective), ShardBounds.zero()

    with obs_trace.span("greedy"):
        greedy = GreedySolver(objective).solve(instance).solution
    greedy_value = greedy.total_value
    with obs_trace.span("lagrangian", iterations=lagrangian_iterations):
        lagrangian = lagrangian_bound(
            instance,
            objective,
            iterations=lagrangian_iterations,
            target_value=greedy_value,
        ).upper_bound

    if mode == "auto" and relative_gap(greedy_value, lagrangian) <= gap_threshold:
        bounds = ShardBounds(
            greedy_value=greedy_value,
            lp_value=greedy_value,
            lp_bound=lagrangian,
            lagrangian_bound=lagrangian,
            chosen_solver="greedy",
            lp_ran=False,
            lp_integral=False,
            lp_repaired=False,
        )
        return greedy, bounds

    flow = lp_flow_optimum(instance, objective, incumbent=greedy)
    solution = flow.solution if flow.optimum >= greedy_value else greedy
    bounds = ShardBounds(
        greedy_value=greedy_value,
        lp_value=solution.total_value,
        lp_bound=flow.upper_bound,
        lagrangian_bound=lagrangian,
        chosen_solver="lp",
        lp_ran=True,
        lp_integral=flow.integral,
        lp_repaired=flow.repaired,
    )
    return solution, bounds
