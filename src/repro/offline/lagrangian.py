"""Lagrangian-relaxation upper bound.

The LP relaxation ``Z*_f`` of :mod:`repro.offline.relaxation` is exact but
its size grows with (drivers x task-map arcs), which makes it the bottleneck
for city-scale sweeps.  Dualising the coupling constraint (5a) — "each task is
served by at most one driver" — with multipliers ``λ_m >= 0`` decomposes the
problem into independent per-driver max-profit-path problems:

    L(λ) = Σ_m λ_m + Σ_n  max_path ( Σ_{m in path} (gain_m - λ_m) - legs )

For every ``λ >= 0``, ``L(λ) >= Z*`` (weak duality), so the best value found
during a projected-subgradient descent is a valid upper bound that only needs
the fast DAG dynamic program per driver per iteration.  By LP duality the
infimum over ``λ`` equals ``Z*_f`` when the per-driver subproblems are
integral (they are: each is a shortest/longest path problem), so with enough
iterations this bound converges towards the same value the LP reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.objectives import Objective
from ..market.instance import MarketInstance
from .dag import best_path


@dataclass(frozen=True, slots=True)
class LagrangianResult:
    """Best (lowest) Lagrangian upper bound observed and its trajectory."""

    upper_bound: float
    iterations: int
    bounds_per_iteration: tuple[float, ...]
    multipliers: np.ndarray


def lagrangian_bound(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    iterations: int = 30,
    initial_step: float = 1.0,
    seed_multipliers: Optional[np.ndarray] = None,
    target_value: Optional[float] = None,
) -> LagrangianResult:
    """Projected-subgradient Lagrangian bound on the optimum.

    Parameters
    ----------
    iterations:
        Subgradient steps; each step costs one max-profit-path DP per driver.
    initial_step:
        Step size of the first iteration; decays as ``1/sqrt(k)``.  Ignored
        when ``target_value`` is given.
    seed_multipliers:
        Optional warm-start multipliers (length ``task_count``).
    target_value:
        A known lower bound on the optimum (e.g. the greedy solution's
        value).  When provided, the Polyak step rule
        ``step = (L(λ) - target) / ||g||²`` is used, which converges much
        faster than the plain diminishing-step rule.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    task_count = instance.task_count
    network = instance.task_network
    base_values = network.valuations if objective.uses_valuation else network.prices

    if seed_multipliers is not None:
        multipliers = np.array(seed_multipliers, dtype=float)
        if multipliers.shape != (task_count,):
            raise ValueError("seed_multipliers has the wrong shape")
        if (multipliers < 0).any():
            raise ValueError("multipliers must be non-negative")
    else:
        multipliers = np.zeros(task_count)

    task_maps = instance.task_maps
    best_bound = np.inf
    best_multipliers = multipliers.copy()
    trajectory: List[float] = []

    for k in range(1, iterations + 1):
        usage = np.zeros(task_count)
        subproblem_total = 0.0
        # Temporarily shift the task values by the multipliers: the DP reads
        # prices/valuations from the shared network, so we evaluate paths with
        # an adjusted copy via the `available`-independent trick of patching
        # values locally.
        adjusted = base_values - multipliers
        for task_map in task_maps.values():
            result = _best_path_with_values(task_map, adjusted, network.service_costs)
            subproblem_total += max(0.0, result[0])
            for m in result[1]:
                usage[m] += 1.0
        bound = float(multipliers.sum() + subproblem_total)
        trajectory.append(bound)
        if bound < best_bound:
            best_bound = bound
            best_multipliers = multipliers.copy()

        subgradient = 1.0 - usage
        if target_value is not None:
            norm_sq = float(np.dot(subgradient, subgradient))
            if norm_sq <= 1e-12:
                break
            gap = max(0.0, bound - target_value)
            step = gap / norm_sq if gap > 0 else initial_step / np.sqrt(k)
        else:
            step = initial_step / np.sqrt(k)
        multipliers = np.maximum(0.0, multipliers - step * subgradient)

    return LagrangianResult(
        upper_bound=float(best_bound),
        iterations=iterations,
        bounds_per_iteration=tuple(trajectory),
        multipliers=best_multipliers,
    )


def _best_path_with_values(task_map, values: np.ndarray, service_costs: np.ndarray):
    """Max-profit path where task ``m`` contributes ``values[m] - ĉ_m``.

    A small re-implementation of :func:`repro.offline.dag.best_path` that
    takes the value vector explicitly (the Lagrangian shifts values per
    iteration, which must not mutate the shared network).
    """
    net = task_map.network
    count = net.task_count
    if count == 0:
        return 0.0, ()
    gains = values - service_costs
    allowed = task_map.exit_ok
    dp = np.full(count, -np.inf)
    parent = np.full(count, -1, dtype=int)
    entry = task_map.entry_ok & allowed
    entry_indices = np.nonzero(entry)[0]
    dp[entry_indices] = gains[entry_indices] - task_map.source_leg_costs[entry_indices]
    for m in (int(x) for x in net.topo_order):
        if not np.isfinite(dp[m]) or not allowed[m]:
            continue
        succ = net.successors[m]
        if succ.size == 0:
            continue
        mask = allowed[succ]
        if not mask.any():
            continue
        succ = succ[mask]
        leg_costs = net.leg_costs[m][mask]
        candidate = dp[m] + gains[succ] - leg_costs
        better = candidate > dp[succ]
        if better.any():
            improved = succ[better]
            dp[improved] = candidate[better]
            parent[improved] = m
    finite = np.isfinite(dp)
    if not finite.any():
        return 0.0, ()
    totals = np.where(finite, dp - task_map.sink_leg_costs + task_map.direct_leg.cost, -np.inf)
    best_end = int(np.argmax(totals))
    best_value = float(totals[best_end])
    if best_value <= 0.0:
        return 0.0, ()
    path: List[int] = []
    node = best_end
    while node != -1:
        path.append(node)
        node = int(parent[node])
    path.reverse()
    return best_value, tuple(path)
