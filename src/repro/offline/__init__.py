"""Offline optimisation: greedy approximation, exact solvers and bounds."""

from .dag import EMPTY_PATH, PathResult, best_path, best_paths_for_all, enumerate_paths
from .exact import (
    DEFAULT_SIZE_LIMIT,
    ExactResult,
    ExactSolverError,
    brute_force_optimum,
    exact_optimum,
)
from .flow import (
    DEFAULT_GAP_THRESHOLD,
    FlowResult,
    FlowSolverError,
    ShardBounds,
    lp_flow_optimum,
    relative_gap,
    solve_exact_tier,
)
from .formulation import ArcFlowModel, build_arc_flow_model
from .greedy import GreedyResult, GreedySolver, GreedyStats, greedy_assignment
from .lagrangian import LagrangianResult, lagrangian_bound
from .relaxation import RelaxationError, RelaxationResult, lp_relaxation_bound
from .tight_example import TightExample, build_tight_example

__all__ = [
    "PathResult",
    "EMPTY_PATH",
    "best_path",
    "best_paths_for_all",
    "enumerate_paths",
    "GreedySolver",
    "GreedyResult",
    "GreedyStats",
    "greedy_assignment",
    "ArcFlowModel",
    "build_arc_flow_model",
    "RelaxationResult",
    "RelaxationError",
    "lp_relaxation_bound",
    "LagrangianResult",
    "lagrangian_bound",
    "ExactResult",
    "ExactSolverError",
    "exact_optimum",
    "brute_force_optimum",
    "DEFAULT_SIZE_LIMIT",
    "FlowResult",
    "FlowSolverError",
    "ShardBounds",
    "DEFAULT_GAP_THRESHOLD",
    "lp_flow_optimum",
    "relative_gap",
    "solve_exact_tier",
    "TightExample",
    "build_tight_example",
]
