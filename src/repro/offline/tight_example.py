"""The adversarial instance showing the ``1/(D+1)`` ratio is tight (Fig. 2).

Lemma 3 of the paper constructs a graph on which the greedy algorithm
achieves exactly ``1/((D+1)(1-eps))`` of the optimum.  The paper's
construction is stated on an abstract node-weighted graph; this module
realises the same structure *geometrically*, so it runs through the full
pipeline (task maps, costs, pricing) of this library:

* ``D`` "chain" tasks zig-zag between a north and a south street.  Every task
  has a net gain of exactly 1 (its price is its service cost plus one), but
  the empty drive between consecutive chain tasks costs almost the same as
  the gain, so chaining all ``D`` tasks is only marginally better than
  serving a single task.
* ``D`` "local" drivers each have a travel plan and working window that fit
  exactly one chain task — serving it costs them nothing extra, so each would
  pocket the full price.
* One "long-haul" driver (driver 1) can serve the whole chain, or one extra
  task (task 0) that nobody else can reach.

The greedy algorithm picks driver 1's chain (the single highest-profit path),
which simultaneously blocks all ``D`` local drivers *and* strands task 0 —
``D + 1`` optimal paths intersect the one greedy path, which is exactly the
counting argument behind Theorem 1.  As ``eps -> 0`` the achieved ratio tends
to ``1/(D+1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..geo import GeoPoint, HaversineEstimator, TravelModel
from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task


@dataclass(frozen=True)
class TightExample:
    """The constructed instance together with its analytically expected values."""

    instance: MarketInstance
    chain_length: int
    epsilon: float
    #: Profit of the single path the greedy algorithm selects.
    expected_greedy_value: float
    #: Value of the optimal assignment (one task per driver).
    expected_optimal_value: float

    @property
    def expected_ratio(self) -> float:
        """Greedy / optimum — tends to ``1/(D+1)`` as ``epsilon`` shrinks."""
        return self.expected_greedy_value / self.expected_optimal_value

    @property
    def theoretical_bound(self) -> float:
        """The ``1/(D+1)`` guarantee of Theorem 1."""
        return 1.0 / (self.chain_length + 1)


def build_tight_example(chain_length: int = 4, epsilon: float = 0.05) -> TightExample:
    """Construct the adversarial instance for a given chain length ``D``.

    Parameters
    ----------
    chain_length:
        ``D`` — the number of chain tasks (and of local drivers).
    epsilon:
        How much cheaper the connecting empty drives are than the per-task
        gain of 1; smaller values push the achieved ratio closer to the
        ``1/(D+1)`` bound but leave less numerical slack.
    """
    if chain_length < 2:
        raise ValueError("chain_length must be at least 2")
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")

    speed_kmh = 30.0
    cost_per_km = 0.12
    travel_model = TravelModel(
        HaversineEstimator(circuity=1.0), speed_kmh=speed_kmh, cost_per_km=cost_per_km
    )
    cost_model = MarketCostModel(travel_model)

    # Geometry: a north and a south street `height_km` apart; chain task k
    # drives north -> south at easting k * east_step_km.
    height_km = (1.0 - epsilon) / cost_per_km
    east_step_km = 0.2
    anchor = GeoPoint(41.20, -8.65)

    def north(k: int) -> GeoPoint:
        return anchor.offset_km(0.0, k * east_step_km)

    def south(k: int) -> GeoPoint:
        return anchor.offset_km(-height_km, k * east_step_km)

    ride_s = height_km / speed_kmh * 3600.0
    # The empty drive from one task's drop-off back up to the next task's
    # pickup covers the diagonal (height plus the small eastward step); give
    # it a one-minute margin so the connecting arcs of Eq. (3) exist.
    deadhead_km = math.hypot(height_km, east_step_km)
    deadhead_s = deadhead_km / speed_kmh * 3600.0 + 60.0
    slack_s = 120.0
    period_s = ride_s + deadhead_s + slack_s
    t0 = 8.0 * 3600.0

    tasks: List[Task] = []
    chain_price = height_km * cost_per_km + 1.0  # gain of exactly 1 per task
    for k in range(chain_length):
        start = t0 + k * period_s
        tasks.append(
            Task(
                task_id=f"chain-{k}",
                publish_ts=start - 600.0,
                source=north(k),
                destination=south(k),
                start_deadline_ts=start,
                end_deadline_ts=start + ride_s + slack_s,
                price=chain_price,
                distance_km=height_km,
            )
        )
    chain_end = tasks[-1].end_deadline_ts

    # Task 0: only the long-haul driver can serve it; its window spans the
    # whole chain so it cannot be combined with any chain task.
    extra_origin = anchor.offset_km(0.0, -2.0 * east_step_km)
    extra_destination = anchor.offset_km(-height_km, -2.0 * east_step_km)
    extra_task = Task(
        task_id="extra-0",
        publish_ts=t0 - 600.0,
        source=extra_origin,
        destination=extra_destination,
        start_deadline_ts=t0,
        end_deadline_ts=chain_end,
        price=chain_price,
        distance_km=height_km,
    )
    tasks.append(extra_task)

    # The long-haul driver needs enough post-chain slack to reach her own
    # destination from the extra task's drop-off (a few hundred metres west
    # of the chain), otherwise task 0 would not even be on her task map.
    tail_slack_s = (chain_length + 3) * east_step_km / speed_kmh * 3600.0 + slack_s
    drivers: List[Driver] = [
        Driver(
            driver_id="long-haul",
            source=north(0),
            destination=south(chain_length - 1),
            start_ts=t0 - slack_s,
            end_ts=chain_end + tail_slack_s,
        )
    ]
    for k in range(chain_length):
        task = tasks[k]
        drivers.append(
            Driver(
                driver_id=f"local-{k}",
                source=task.source,
                destination=task.destination,
                start_ts=task.start_deadline_ts - 60.0,
                end_ts=task.end_deadline_ts + 60.0,
            )
        )

    instance = MarketInstance.create(drivers=drivers, tasks=tasks, cost_model=cost_model)

    # Analytic values (see module docstring): the greedy chain is worth
    # D - (D-2)*(1-eps) (plus the small eastward offsets), each local driver's
    # single task is worth ~2-eps, and the long-haul driver's alternative
    # (task 0) is also worth ~2-eps.
    task_maps = instance.task_maps
    chain_path = tuple(range(chain_length))
    greedy_value = task_maps["long-haul"].path_profit(chain_path)
    optimal_value = task_maps["long-haul"].path_profit((chain_length,))
    for k in range(chain_length):
        optimal_value += task_maps[f"local-{k}"].path_profit((k,))

    return TightExample(
        instance=instance,
        chain_length=chain_length,
        epsilon=epsilon,
        expected_greedy_value=greedy_value,
        expected_optimal_value=optimal_value,
    )
