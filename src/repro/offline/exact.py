"""Exact optimum ``Z*`` for small instances.

Section VI-B of the paper: "For the evaluation of small-scale problems (e.g.
for n <= 50 and m <= 100), we can use the integer programming solvers of
CPLEX or MOSEK to calculate the exact value of the best integer solution
Z*".  Neither commercial solver is available offline, so this module solves
the same binary arc-flow program with the open-source HiGHS solver via
:func:`scipy.optimize.milp`, and offers a pure-Python brute-force solver for
tiny instances used to cross-check both the MILP and the greedy algorithm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from ..core.objectives import Objective
from ..core.solution import MarketSolution
from ..market.instance import MarketInstance
from .dag import enumerate_paths
from .formulation import ArcFlowModel, build_arc_flow_model


class ExactSolverError(RuntimeError):
    """Raised when the MILP solver does not return an optimal solution."""


@dataclass(frozen=True)
class ExactResult:
    """The exact optimum and the corresponding assignment."""

    optimum: float
    solution: MarketSolution
    solver_status: str


#: Instance sizes above which :func:`exact_optimum` refuses to run by default
#: (mirroring the paper's "small-scale problems" remark).
DEFAULT_SIZE_LIMIT = (60, 150)


def exact_optimum(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    size_limit: Optional[Tuple[int, int]] = DEFAULT_SIZE_LIMIT,
    time_limit_s: Optional[float] = 120.0,
) -> ExactResult:
    """Solve the binary program exactly with HiGHS.

    Parameters
    ----------
    size_limit:
        ``(max_drivers, max_tasks)`` guard; pass ``None`` to lift it.
    time_limit_s:
        MILP time limit handed to HiGHS.
    """
    if size_limit is not None:
        max_drivers, max_tasks = size_limit
        if instance.driver_count > max_drivers or instance.task_count > max_tasks:
            raise ExactSolverError(
                f"instance with {instance.driver_count} drivers / {instance.task_count} tasks "
                f"exceeds the exact-solver size limit {size_limit}; pass size_limit=None to force"
            )

    model = build_arc_flow_model(instance, objective=objective, include_rationality=True)
    if model.variable_count == 0:
        return ExactResult(
            optimum=0.0,
            solution=MarketSolution.empty(instance, objective),
            solver_status="empty",
        )

    constraints = [
        optimize.LinearConstraint(model.A_eq, model.b_eq, model.b_eq),
        optimize.LinearConstraint(model.A_ub, -np.inf, model.b_ub),
    ]
    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    result = optimize.milp(
        c=-model.objective,
        constraints=constraints,
        bounds=optimize.Bounds(0.0, 1.0),
        integrality=np.ones(model.variable_count),
        options=options,
    )
    if result.x is None:
        raise ExactSolverError(f"MILP failed: {result.message}")
    assignment = model.solution_to_assignment(np.asarray(result.x))
    solution = MarketSolution.from_assignment(instance, assignment, objective)
    return ExactResult(
        optimum=float(-result.fun + model.constant),
        solution=solution,
        solver_status=result.message,
    )


def brute_force_optimum(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    max_paths_per_driver: int = 2000,
) -> ExactResult:
    """Exhaustive search over combinations of per-driver paths.

    Exponential — only usable for instances with a handful of drivers and
    tasks; exists to cross-validate the MILP and greedy solvers in tests.
    """
    use_valuation = objective.uses_valuation
    per_driver_options: List[List[Tuple[float, Tuple[int, ...]]]] = []
    driver_ids: List[str] = []
    for driver in instance.drivers:
        task_map = instance.task_map(driver.driver_id)
        options: List[Tuple[float, Tuple[int, ...]]] = [(0.0, ())]
        for path in enumerate_paths(task_map, max_paths=max_paths_per_driver):
            profit = task_map.path_profit(path, use_valuation=use_valuation)
            if profit > 0.0:
                options.append((profit, tuple(path)))
        per_driver_options.append(options)
        driver_ids.append(driver.driver_id)

    best_value = 0.0
    best_choice: Tuple[Tuple[float, Tuple[int, ...]], ...] = tuple(
        (0.0, ()) for _ in driver_ids
    )
    for combo in itertools.product(*per_driver_options):
        used: set[int] = set()
        feasible = True
        total = 0.0
        for profit, path in combo:
            if used.intersection(path):
                feasible = False
                break
            used.update(path)
            total += profit
        if feasible and total > best_value:
            best_value = total
            best_choice = combo

    assignment = {
        driver_id: path
        for driver_id, (_profit, path) in zip(driver_ids, best_choice)
        if path
    }
    solution = MarketSolution.from_assignment(instance, assignment, objective)
    return ExactResult(optimum=best_value, solution=solution, solver_status="brute-force")
