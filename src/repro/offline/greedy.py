"""The deterministic offline greedy algorithm — Algorithm 1 ("GA").

Repeatedly pick the maximum-profit path over *all* remaining drivers in the
current graph, assign it, and delete its task nodes and the chosen driver's
source/destination pair.  The paper proves this achieves a tight ``1/(D+1)``
approximation of the drivers'-profit optimum, where ``D`` is the diameter of
the merged graph (the maximum number of tasks a driver can chain).

Implementation note.  A literal transcription recomputes every driver's best
path each iteration (``O(N² M²)``).  Because removing tasks can only *lower*
a driver's best-path profit, the classic lazy-greedy refinement applies: keep
drivers in a max-heap keyed by their last computed best-path profit, pop the
top driver, recompute her best path against the current availability, and
select her only if her refreshed profit still beats the next heap entry.  The
selected sequence of paths is identical to the literal algorithm (ties aside)
but in practice only a small fraction of paths is recomputed per iteration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.objectives import Objective
from ..core.solution import DriverPlan, MarketSolution
from ..market.instance import MarketInstance
from .dag import EMPTY_PATH, PathResult, best_path


@dataclass(frozen=True, slots=True)
class GreedyStats:
    """Diagnostics of a greedy run (for ablations and reports)."""

    iterations: int
    paths_recomputed: int
    drivers_assigned: int
    tasks_assigned: int


@dataclass(frozen=True)
class GreedyResult:
    """A solution plus the run diagnostics."""

    solution: MarketSolution
    stats: GreedyStats


class GreedySolver:
    """Algorithm 1 of the paper, with lazy best-path re-evaluation."""

    def __init__(self, objective: Objective = Objective.DRIVERS_PROFIT) -> None:
        self.objective = objective

    def solve(self, instance: MarketInstance) -> GreedyResult:
        """Run GA on ``instance`` and return the assignment."""
        use_valuation = self.objective.uses_valuation
        task_count = instance.task_count
        available = np.ones(task_count, dtype=bool)
        assignment: Dict[str, Tuple[int, ...]] = {}

        counter = itertools.count()
        heap: List[Tuple[float, int, str]] = []
        paths_recomputed = 0
        iterations = 0

        # The task maps are built with the fleet-batched constructor (two
        # N x M vectorised leg matrices); drivers whose maps admit no entry
        # task — detected from the vectorised entry mask, without running the
        # DAG solver — can never contribute a profitable path and are skipped
        # before the initial best-path sweep.
        task_maps = instance.task_maps
        cached: Dict[str, PathResult] = {}
        for driver_id, task_map in task_maps.items():
            if not task_map.has_any_task():
                continue
            result = best_path(task_map, available=available, use_valuation=use_valuation)
            paths_recomputed += 1
            cached[driver_id] = result
            if result.profit > 0.0:
                heapq.heappush(heap, (-result.profit, next(counter), driver_id))

        while heap:
            neg_profit, _, driver_id = heapq.heappop(heap)
            stale_profit = -neg_profit
            result = cached[driver_id]
            # Refresh if any task on the cached path has been claimed since.
            if result.path and not all(available[m] for m in result.path):
                result = best_path(
                    task_maps[driver_id], available=available, use_valuation=use_valuation
                )
                paths_recomputed += 1
                cached[driver_id] = result
            if result.profit <= 0.0:
                continue
            next_best = -heap[0][0] if heap else 0.0
            if result.profit + 1e-12 < next_best and result.profit < stale_profit:
                # The refreshed value no longer dominates; re-queue and retry.
                heapq.heappush(heap, (-result.profit, next(counter), driver_id))
                continue

            # Select this driver's path: step (b)/(c) of Algorithm 1.
            iterations += 1
            assignment[driver_id] = result.path
            for m in result.path:
                available[m] = False

        solution = MarketSolution.from_assignment(instance, assignment, self.objective)
        stats = GreedyStats(
            iterations=iterations,
            paths_recomputed=paths_recomputed,
            drivers_assigned=len(assignment),
            tasks_assigned=int(sum(len(p) for p in assignment.values())),
        )
        return GreedyResult(solution=solution, stats=stats)


def greedy_assignment(
    instance: MarketInstance, objective: Objective = Objective.DRIVERS_PROFIT
) -> MarketSolution:
    """Convenience wrapper: run :class:`GreedySolver` and return the solution."""
    return GreedySolver(objective).solve(instance).solution
