"""Maximum-profit path in a driver's task map.

Step (a) of the greedy algorithm (Algorithm 1) needs, for every driver, the
highest-profit path from her source to her destination in the *current*
graph (tasks already claimed by other drivers are removed).  Because every
task map is a DAG whose topological order is "sort tasks by pickup deadline",
the maximum-profit path is found by a single forward dynamic-programming pass
over the arcs — the ``O(M²)`` "longest path in a DAG" routine the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..market.taskmap import DriverTaskMap


@dataclass(frozen=True, slots=True)
class PathResult:
    """The outcome of a max-profit-path search for one driver."""

    profit: float
    path: Tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return len(self.path) == 0


#: The result representing "take no tasks" (profit exactly 0).
EMPTY_PATH = PathResult(profit=0.0, path=())


def best_path(
    task_map: DriverTaskMap,
    available: Optional[np.ndarray] = None,
    use_valuation: bool = False,
) -> PathResult:
    """The maximum-profit feasible path for one driver.

    Parameters
    ----------
    task_map:
        The driver's task map.
    available:
        Optional boolean mask over tasks; tasks with ``available[m] == False``
        are treated as removed from the graph (already served by another
        driver).  ``None`` means every task is available.
    use_valuation:
        Use the customer valuation ``b_m`` instead of the price ``p_m``
        (social-welfare objective).

    Returns
    -------
    PathResult
        The best path and its profit.  If no path has strictly positive
        profit, :data:`EMPTY_PATH` is returned — taking no tasks is always
        feasible and worth exactly 0.
    """
    net = task_map.network
    count = net.task_count
    if count == 0:
        return EMPTY_PATH

    values = net.valuations if use_valuation else net.prices
    gains = values - net.service_costs

    if available is None:
        allowed = task_map.exit_ok.copy()
    else:
        if available.shape != (count,):
            raise ValueError("available mask has the wrong shape")
        allowed = task_map.exit_ok & available

    # dp[m]: best accumulated profit of a partial path source -> ... -> m,
    # excluding the final sink leg and the direct-cost credit.
    dp = np.full(count, -np.inf)
    parent = np.full(count, -1, dtype=int)

    entry = task_map.entry_ok & allowed
    entry_indices = np.nonzero(entry)[0]
    dp[entry_indices] = gains[entry_indices] - task_map.source_leg_costs[entry_indices]

    for m in (int(x) for x in net.topo_order):
        if not np.isfinite(dp[m]) or not allowed[m]:
            continue
        succ = net.successors[m]
        if succ.size == 0:
            continue
        mask = allowed[succ]
        if not mask.any():
            continue
        succ = succ[mask]
        leg_costs = net.leg_costs[m][mask]
        candidate = dp[m] + gains[succ] - leg_costs
        better = candidate > dp[succ]
        if better.any():
            improved = succ[better]
            dp[improved] = candidate[better]
            parent[improved] = m

    # Close every partial path with its sink leg and the direct-cost credit.
    finite = np.isfinite(dp)
    if not finite.any():
        return EMPTY_PATH
    totals = np.where(
        finite, dp - task_map.sink_leg_costs + task_map.direct_leg.cost, -np.inf
    )
    best_end = int(np.argmax(totals))
    best_profit = float(totals[best_end])
    if best_profit <= 0.0:
        return EMPTY_PATH

    path: List[int] = []
    node = best_end
    while node != -1:
        path.append(node)
        node = int(parent[node])
    path.reverse()
    return PathResult(profit=best_profit, path=tuple(path))


def best_paths_for_all(
    task_maps: Dict[str, DriverTaskMap],
    available: Optional[np.ndarray] = None,
    use_valuation: bool = False,
) -> Dict[str, PathResult]:
    """Max-profit path of every driver against the same availability mask."""
    return {
        driver_id: best_path(task_map, available=available, use_valuation=use_valuation)
        for driver_id, task_map in task_maps.items()
    }


def enumerate_paths(
    task_map: DriverTaskMap,
    available: Optional[np.ndarray] = None,
    max_paths: int = 100_000,
) -> List[Tuple[int, ...]]:
    """Exhaustively enumerate every feasible non-empty path of a driver.

    Exponential in the worst case — intended for the tiny instances used by
    the exact brute-force solver and by tests that cross-check the DP.
    """
    net = task_map.network
    count = net.task_count
    if count == 0:
        return []
    if available is None:
        allowed = task_map.exit_ok
    else:
        allowed = task_map.exit_ok & available

    results: List[Tuple[int, ...]] = []

    def extend(prefix: List[int]) -> None:
        if len(results) >= max_paths:
            raise RuntimeError(f"more than {max_paths} paths; refusing to enumerate")
        results.append(tuple(prefix))
        last = prefix[-1]
        for nxt in (int(x) for x in task_map.successors_of(last)):
            if allowed[nxt] and nxt not in prefix:
                prefix.append(nxt)
                extend(prefix)
                prefix.pop()

    for start in (int(x) for x in np.nonzero(task_map.entry_ok & allowed)[0]):
        extend([start])
    return results
