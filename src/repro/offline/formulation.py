"""Arc-flow formulation of the optimisation problem (Eqs. 4-7).

Builds the sparse linear model shared by the LP-relaxation bound
(:mod:`repro.offline.relaxation`) and the exact MILP solver
(:mod:`repro.offline.exact`).

Variables.  One flow variable per arc of every driver's task map:

* ``(n, source, m)`` — driver ``n`` starts with task ``m``;
* ``(n, m, m')``     — driver ``n`` takes ``m'`` right after ``m``;
* ``(n, m, sink)``   — task ``m`` is driver ``n``'s last task;
* ``(n, source, sink)`` — driver ``n`` takes no tasks.

The assignment variables ``x_{n,m}`` of the paper are implied (they equal the
in-flow of task ``m`` for driver ``n``) and are not materialised.

Objective.  Each arc ``(u, m)`` into a task carries the task's gain
(``p_m - ĉ_m``, or ``b_m - ĉ_m`` for social welfare) minus the empty-drive
leg cost; arcs into the sink carry minus their leg cost; the per-driver
constant ``c_{n,0,-1}`` is returned separately so objective values match
Eq. (4) exactly.

Constraints.

* per driver: source out-flow = 1 and sink in-flow = 1 (5c, 5d);
* per driver and task: flow conservation (5e, 5f);
* per task: total in-flow over all drivers <= 1 (5a);
* optionally, per driver: profit >= 0 (individual rationality, 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from ..core.objectives import Objective
from ..market.instance import MarketInstance
from ..market.taskmap import SINK_NODE, SOURCE_NODE

ArcKey = Tuple[str, Union[str, int], Union[str, int]]


@dataclass(frozen=True)
class ArcFlowModel:
    """The assembled sparse model.

    ``A_eq x = b_eq`` holds the per-driver flow constraints, ``A_ub x <= b_ub``
    holds the task-capacity (and optional rationality) constraints, and
    ``objective`` is the per-variable profit coefficient (to be maximised).
    ``constant`` is the sum of the drivers' direct-leg costs that Eq. (4)
    credits back.
    """

    instance: MarketInstance
    objective_sense: Objective
    arcs: Tuple[ArcKey, ...]
    objective: np.ndarray
    constant: float
    A_eq: sparse.csr_matrix
    b_eq: np.ndarray
    A_ub: sparse.csr_matrix
    b_ub: np.ndarray

    @property
    def variable_count(self) -> int:
        return len(self.arcs)

    def arc_index(self, arc: ArcKey) -> int:
        """Index of an arc variable (linear scan; intended for tests)."""
        try:
            return self.arcs.index(arc)
        except ValueError:
            raise KeyError(f"arc {arc!r} is not part of the model") from None

    def solution_to_assignment(
        self, values: np.ndarray, threshold: float = 0.5
    ) -> Dict[str, Tuple[int, ...]]:
        """Decode an (integral) arc-flow vector into driver task lists.

        Follows the out-arcs with value above ``threshold`` from each driver's
        source to her sink.  Intended for exact MILP solutions; fractional LP
        solutions generally do not decode to a single path.
        """
        chosen: Dict[str, Dict[Union[str, int], Union[str, int]]] = {}
        for arc, value in zip(self.arcs, values):
            if value < threshold:
                continue
            driver_id, tail, head = arc
            chosen.setdefault(driver_id, {})[tail] = head
        assignment: Dict[str, Tuple[int, ...]] = {}
        for driver_id, nexts in chosen.items():
            path: List[int] = []
            node: Union[str, int] = SOURCE_NODE
            visited = 0
            while node != SINK_NODE:
                node = nexts.get(node, SINK_NODE)
                visited += 1
                if visited > len(nexts) + 1:
                    raise ValueError(f"arc flow of driver {driver_id!r} does not form a path")
                if node != SINK_NODE:
                    path.append(int(node))
            if path:
                assignment[driver_id] = tuple(path)
        return assignment


def build_arc_flow_model(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    include_rationality: bool = True,
) -> ArcFlowModel:
    """Assemble the arc-flow model for ``instance``."""
    network = instance.task_network
    gains = (
        network.valuations if objective.uses_valuation else network.prices
    ) - network.service_costs

    arcs: List[ArcKey] = []
    coefficients: List[float] = []
    constant = 0.0

    # Per-arc bookkeeping for the constraint matrices.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_data: List[float] = []
    eq_rhs: List[float] = []

    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_data: List[float] = []
    ub_rhs: List[float] = []

    # Task-capacity rows are allocated first so that their indices are stable
    # regardless of the driver count.
    task_capacity_row: Dict[int, int] = {}
    for m in range(instance.task_count):
        task_capacity_row[m] = len(ub_rhs)
        ub_rhs.append(1.0)

    next_eq_row = 0
    for driver in instance.drivers:
        task_map = instance.task_map(driver.driver_id)
        constant += task_map.direct_leg.cost

        usable = [int(m) for m in task_map.usable_tasks()]
        usable_set = set(usable)
        entry = [int(m) for m in task_map.entry_tasks()]

        source_row = next_eq_row
        sink_row = next_eq_row + 1
        next_eq_row += 2
        eq_rhs.extend([1.0, 1.0])
        task_rows = {}
        for m in usable:
            task_rows[m] = next_eq_row
            next_eq_row += 1
            eq_rhs.append(0.0)

        rationality_row: Optional[int] = None
        if include_rationality:
            rationality_row = len(ub_rhs)
            ub_rhs.append(task_map.direct_leg.cost)

        def add_arc(tail, head, coefficient: float) -> int:
            index = len(arcs)
            arcs.append((driver.driver_id, tail, head))
            coefficients.append(coefficient)
            if rationality_row is not None:
                # Individual rationality: -(per-driver profit) <= direct cost.
                ub_rows.append(rationality_row)
                ub_cols.append(index)
                ub_data.append(-coefficient)
            return index

        # source -> sink (driver idles)
        idx = add_arc(SOURCE_NODE, SINK_NODE, -task_map.direct_leg.cost)
        eq_rows.extend([source_row, sink_row])
        eq_cols.extend([idx, idx])
        eq_data.extend([1.0, 1.0])

        # source -> m
        for m in entry:
            coefficient = float(gains[m] - task_map.source_leg_costs[m])
            idx = add_arc(SOURCE_NODE, m, coefficient)
            eq_rows.extend([source_row, task_rows[m]])
            eq_cols.extend([idx, idx])
            eq_data.extend([1.0, 1.0])
            ub_rows.append(task_capacity_row[m])
            ub_cols.append(idx)
            ub_data.append(1.0)

        # m -> sink
        for m in usable:
            coefficient = float(-task_map.sink_leg_costs[m])
            idx = add_arc(m, SINK_NODE, coefficient)
            eq_rows.extend([task_rows[m], sink_row])
            eq_cols.extend([idx, idx])
            eq_data.extend([-1.0, 1.0])

        # m -> m'
        for m in usable:
            successors = network.successors[m]
            leg_costs = network.leg_costs[m]
            for j, m_prime in enumerate(int(x) for x in successors):
                if m_prime not in usable_set:
                    continue
                coefficient = float(gains[m_prime] - leg_costs[j])
                idx = add_arc(m, m_prime, coefficient)
                eq_rows.extend([task_rows[m], task_rows[m_prime]])
                eq_cols.extend([idx, idx])
                eq_data.extend([-1.0, 1.0])
                ub_rows.append(task_capacity_row[m_prime])
                ub_cols.append(idx)
                ub_data.append(1.0)

    variable_count = len(arcs)
    A_eq = sparse.csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(eq_rhs), variable_count)
    )
    A_ub = sparse.csr_matrix(
        (ub_data, (ub_rows, ub_cols)), shape=(len(ub_rhs), variable_count)
    )
    return ArcFlowModel(
        instance=instance,
        objective_sense=objective,
        arcs=tuple(arcs),
        objective=np.array(coefficients, dtype=float),
        constant=constant,
        A_eq=A_eq,
        b_eq=np.array(eq_rhs, dtype=float),
        A_ub=A_ub,
        b_ub=np.array(ub_rhs, dtype=float),
    )
