"""LP-relaxation upper bound ``Z*_f`` (Section III-E).

Dropping the integrality constraints (8a)-(8b) turns the problem into a
linear program that is solvable in polynomial time, and its optimum ``Z*_f``
satisfies ``Z*_f >= Z* = OPT``.  The paper uses ``Z*_f`` as the theoretical
upper bound against which the performance ratios of Fig. 5 are computed.

The LP is solved with HiGHS via :func:`scipy.optimize.linprog`.  For very
large instances the LP itself becomes the bottleneck; the scalable
alternative is the Lagrangian bound in :mod:`repro.offline.lagrangian`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from ..core.objectives import Objective
from ..market.instance import MarketInstance
from .formulation import ArcFlowModel, build_arc_flow_model


class RelaxationError(RuntimeError):
    """Raised when the LP solver fails to return an optimal solution."""


@dataclass(frozen=True)
class RelaxationResult:
    """The LP-relaxation bound and its raw solver output."""

    upper_bound: float
    model: ArcFlowModel
    arc_values: np.ndarray
    solver_status: str

    @property
    def fractional_arc_count(self) -> int:
        """How many arc variables are strictly fractional (diagnostic for how
        far the LP optimum is from being integral)."""
        values = self.arc_values
        return int(np.sum((values > 1e-6) & (values < 1.0 - 1e-6)))


def lp_relaxation_bound(
    instance: MarketInstance,
    objective: Objective = Objective.DRIVERS_PROFIT,
    include_rationality: bool = True,
    model: Optional[ArcFlowModel] = None,
) -> RelaxationResult:
    """Compute ``Z*_f`` for ``instance``.

    Parameters
    ----------
    instance:
        The market instance.
    objective:
        Drivers' profit (Eq. 4) or social welfare (Eq. 6).
    include_rationality:
        Keep the per-driver individual-rationality constraint (5b) in the
        relaxation; the bound is valid either way.
    model:
        A pre-built arc-flow model to reuse (must match ``instance`` and
        ``objective``).
    """
    arc_model = model or build_arc_flow_model(
        instance, objective=objective, include_rationality=include_rationality
    )
    if arc_model.variable_count == 0:
        return RelaxationResult(
            upper_bound=arc_model.constant - sum(
                instance.task_map(d.driver_id).direct_leg.cost for d in instance.drivers
            ),
            model=arc_model,
            arc_values=np.zeros(0),
            solver_status="empty",
        )

    result = optimize.linprog(
        c=-arc_model.objective,  # linprog minimises
        A_ub=arc_model.A_ub,
        b_ub=arc_model.b_ub,
        A_eq=arc_model.A_eq,
        b_eq=arc_model.b_eq,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise RelaxationError(f"LP relaxation failed: {result.message}")
    upper_bound = float(-result.fun + arc_model.constant)
    return RelaxationResult(
        upper_bound=upper_bound,
        model=arc_model,
        arc_values=np.asarray(result.x),
        solver_status=result.message,
    )
