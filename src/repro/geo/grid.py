"""Uniform spatial grid index.

The online heuristics (Algorithms 3 and 4 of the paper) repeatedly ask
"which drivers could reach the source of this task in time?".  A linear scan
over all drivers is fine for a few hundred drivers but the index keeps the
simulator comfortably fast for city-scale sweeps and is also used by the
distributed partitioner.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

import numpy as np

from . import batch
from .point import EARTH_RADIUS_KM, GeoPoint, equirectangular_km
from .region import BoundingBox

T = TypeVar("T")


def _grid_shape(box: BoundingBox, cell_km: float) -> Tuple[int, int]:
    """(rows, cols) of a uniform grid of ~``cell_km`` cells over ``box``."""
    rows = max(1, int(math.ceil(box.height_km() / cell_km)))
    cols = max(1, int(math.ceil(box.width_km() / cell_km)))
    return rows, cols


def _cell_of(box: BoundingBox, rows: int, cols: int, point: GeoPoint) -> Tuple[int, int]:
    """The (row, col) cell of ``point`` (clamped into the box)."""
    clamped = box.clamp(point)
    row = int((clamped.lat - box.south) / max(1e-12, (box.north - box.south)) * rows)
    col = int((clamped.lon - box.west) / max(1e-12, (box.east - box.west)) * cols)
    return min(rows - 1, max(0, row)), min(cols - 1, max(0, col))


class SpatialGrid(Generic[T]):
    """A uniform grid over a bounding box holding items located at points.

    Items outside the bounding box are clamped to the nearest border cell so
    that nothing is silently dropped.
    """

    def __init__(self, box: BoundingBox, cell_km: float = 1.0) -> None:
        if cell_km <= 0:
            raise ValueError("cell_km must be positive")
        self._box = box
        self._cell_km = cell_km
        self._rows, self._cols = _grid_shape(box, cell_km)
        self._cells: Dict[Tuple[int, int], List[Tuple[GeoPoint, T]]] = {}
        self._locations: Dict[int, Tuple[GeoPoint, Tuple[int, int]]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[GeoPoint, T]]:
        for bucket in self._cells.values():
            yield from bucket

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the grid."""
        return self._rows, self._cols

    @property
    def cell_km(self) -> float:
        return self._cell_km

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, point: GeoPoint, item: T) -> None:
        """Insert ``item`` at ``point``.  The same object may be re-inserted
        after :meth:`remove` to model a driver moving."""
        cell = self._cell_of(point)
        self._cells.setdefault(cell, []).append((point, item))
        self._locations[id(item)] = (point, cell)
        self._count += 1

    def remove(self, item: T) -> bool:
        """Remove ``item`` (by identity).  Returns ``True`` if it was present."""
        key = id(item)
        located = self._locations.pop(key, None)
        if located is None:
            return False
        _point, cell = located
        bucket = self._cells.get(cell, [])
        for i, (_p, existing) in enumerate(bucket):
            if existing is item:
                bucket.pop(i)
                break
        if not bucket and cell in self._cells:
            del self._cells[cell]
        self._count -= 1
        return True

    def move(self, item: T, new_point: GeoPoint) -> None:
        """Relocate ``item`` to ``new_point`` (insert if not present)."""
        self.remove(item)
        self.insert(new_point, item)

    def bulk_insert(self, located_items: Iterable[Tuple[GeoPoint, T]]) -> None:
        for point, item in located_items:
            self.insert(point, item)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def within_radius(self, center: GeoPoint, radius_km: float) -> List[Tuple[float, GeoPoint, T]]:
        """All items within ``radius_km`` of ``center``.

        Returns ``(distance_km, point, item)`` tuples sorted by distance.
        """
        if radius_km < 0:
            raise ValueError("radius_km must be non-negative")
        entries = list(self._candidates(center, radius_km))
        if not entries:
            return []
        # One batched distance call over every candidate instead of a scalar
        # call per item; a stable argsort keeps the historical tie order.
        distances = batch.cross_km(
            [center], [point for point, _item in entries], metric="equirectangular"
        )[0]
        results: List[Tuple[float, GeoPoint, T]] = []
        for i in np.argsort(distances, kind="stable"):
            d = float(distances[i])
            if d <= radius_km:
                point, item = entries[i]
                results.append((d, point, item))
        return results

    def nearest(self, center: GeoPoint, k: int = 1) -> List[Tuple[float, GeoPoint, T]]:
        """The ``k`` nearest items to ``center`` (expanding ring search)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._count == 0:
            return []
        radius = self._cell_km
        max_radius = self._box.diagonal_km() + 2 * self._cell_km
        while True:
            hits = self.within_radius(center, radius)
            if len(hits) >= k or radius > max_radius:
                return hits[:k]
            radius *= 2.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cell_of(self, point: GeoPoint) -> Tuple[int, int]:
        return _cell_of(self._box, self._rows, self._cols, point)

    def _candidates(self, center: GeoPoint, radius_km: float) -> Iterator[Tuple[GeoPoint, T]]:
        row, col = self._cell_of(center)
        cell_span = max(1, int(math.ceil(radius_km / self._cell_km)))
        for r in range(row - cell_span, row + cell_span + 1):
            if r < 0 or r >= self._rows:
                continue
            for c in range(col - cell_span, col + cell_span + 1):
                if c < 0 or c >= self._cols:
                    continue
                bucket = self._cells.get((r, c))
                if bucket:
                    yield from bucket


def build_grid(
    box: BoundingBox,
    located_items: Iterable[Tuple[GeoPoint, T]],
    cell_km: float = 1.0,
) -> SpatialGrid[T]:
    """Convenience constructor: build a grid and bulk-insert items."""
    grid: SpatialGrid[T] = SpatialGrid(box, cell_km=cell_km)
    grid.bulk_insert(located_items)
    return grid


class GridIndex:
    """Slot-addressed bucket index over a *fixed roster* of movable points.

    :class:`SpatialGrid` indexes arbitrary objects by identity; the online
    dispatch hot path instead tracks a fixed fleet of drivers whose positions
    change constantly and whose identities are plain array slots.  A
    :class:`GridIndex` buckets slot numbers into the same uniform cells as
    :class:`SpatialGrid` and answers *superset* range queries:

    ``query_slots(center, radius_km)`` returns every slot whose point could be
    within ``radius_km`` (equirectangular) of ``center`` — callers run their
    exact vectorised distance/feasibility checks on the returned slots, so
    false positives cost a few array lanes while false negatives would be
    correctness bugs.  The guarantee is kept unconditionally:

    * points outside the bounding box are marked with a sentinel cell that is
      included in every answer (clamping them into border cells could
      under-estimate their distance);
    * a query whose center lies outside the box, or whose radius reaches the
      whole grid, degrades to the exhaustive answer (all slots).

    The index stores one ``(row, col)`` pair per slot in flat integer arrays:
    updates are O(1) scalar writes and range queries are a single vectorised
    window test, which is what the per-task cadence of the online simulator
    needs (one query and at most one update per dispatched task).
    """

    def __init__(self, box: BoundingBox, cell_km: float = 1.0) -> None:
        if cell_km <= 0:
            raise ValueError("cell_km must be positive")
        self._box = box
        self._rows, self._cols = _grid_shape(box, cell_km)
        # Conservative per-cell extents used to convert a km radius into a
        # cell window.  Rows span equal latitude bands; column width shrinks
        # towards the poles, so the narrowest latitude of the box bounds it.
        self._cell_height_km = max(1e-9, box.height_km() / self._rows)
        min_cos = min(math.cos(math.radians(box.south)), math.cos(math.radians(box.north)))
        lon_step_rad = math.radians((box.east - box.west) / self._cols)
        self._min_cell_width_km = max(
            1e-9, lon_step_rad * max(0.0, min_cos) * EARTH_RADIUS_KM
        )
        self._row = np.empty(16, dtype=np.int32)
        self._col = np.empty(16, dtype=np.int32)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def shape(self) -> Tuple[int, int]:
        return self._rows, self._cols

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, point: GeoPoint) -> int:
        """Register a new point; returns its slot number (0, 1, 2, ...)."""
        slot = self._count
        if slot == len(self._row):
            self._row = np.resize(self._row, 2 * slot)
            self._col = np.resize(self._col, 2 * slot)
        self._count += 1
        self._place(slot, point)
        return slot

    def update(self, slot: int, point: GeoPoint) -> None:
        """Move ``slot`` to a new position."""
        if slot < 0 or slot >= self._count:
            raise IndexError(f"unknown slot {slot}")
        self._place(slot, point)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_slots(self, center: GeoPoint, radius_km: float) -> np.ndarray:
        """A sorted superset of the slots within ``radius_km`` of ``center``."""
        if radius_km < 0:
            raise ValueError("radius_km must be non-negative")
        if self._count == 0:
            return np.empty(0, dtype=np.intp)
        if not self._box.contains(center):
            return np.arange(self._count, dtype=np.intp)
        row, col = _cell_of(self._box, self._rows, self._cols, center)
        span_r = int(radius_km / self._cell_height_km) + 1
        span_c = int(radius_km / self._min_cell_width_km) + 1
        r_lo, r_hi = max(0, row - span_r), min(self._rows - 1, row + span_r)
        c_lo, c_hi = max(0, col - span_c), min(self._cols - 1, col + span_c)
        if (r_hi - r_lo + 1) * (c_hi - c_lo + 1) >= self._rows * self._cols:
            return np.arange(self._count, dtype=np.intp)

        rows = self._row[: self._count]
        cols = self._col[: self._count]
        in_window = (
            (rows >= r_lo) & (rows <= r_hi) & (cols >= c_lo) & (cols <= c_hi)
        ) | (rows < 0)
        return np.nonzero(in_window)[0]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _place(self, slot: int, point: GeoPoint) -> None:
        if self._box.contains(point):
            row, col = _cell_of(self._box, self._rows, self._cols, point)
        else:
            row = col = -1  # sentinel: out-of-box, matched by every query
        self._row[slot] = row
        self._col[slot] = col


def bounding_box_of(points: Iterable[GeoPoint], pad_deg: float = 0.02) -> Optional[BoundingBox]:
    """The padded axis-aligned bounding box of a point collection.

    Returns ``None`` for an empty collection.  The padding keeps the box
    non-degenerate even for a single point and gives moving items (drivers
    drifting to task drop-offs) some room before they land in the
    :class:`GridIndex` overflow set.
    """
    pts = list(points)
    if not pts:
        return None
    lats = [p.lat for p in pts]
    lons = [p.lon for p in pts]
    return BoundingBox(
        south=max(-90.0, min(lats) - pad_deg),
        west=max(-180.0, min(lons) - pad_deg),
        north=min(90.0, max(lats) + pad_deg),
        east=min(180.0, max(lons) + pad_deg),
    )
