"""Uniform spatial grid index.

The online heuristics (Algorithms 3 and 4 of the paper) repeatedly ask
"which drivers could reach the source of this task in time?".  A linear scan
over all drivers is fine for a few hundred drivers but the index keeps the
simulator comfortably fast for city-scale sweeps and is also used by the
distributed partitioner.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from .point import GeoPoint, equirectangular_km
from .region import BoundingBox

T = TypeVar("T")


class SpatialGrid(Generic[T]):
    """A uniform grid over a bounding box holding items located at points.

    Items outside the bounding box are clamped to the nearest border cell so
    that nothing is silently dropped.
    """

    def __init__(self, box: BoundingBox, cell_km: float = 1.0) -> None:
        if cell_km <= 0:
            raise ValueError("cell_km must be positive")
        self._box = box
        self._cell_km = cell_km
        self._rows = max(1, int(math.ceil(box.height_km() / cell_km)))
        self._cols = max(1, int(math.ceil(box.width_km() / cell_km)))
        self._cells: Dict[Tuple[int, int], List[Tuple[GeoPoint, T]]] = {}
        self._locations: Dict[int, Tuple[GeoPoint, Tuple[int, int]]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[GeoPoint, T]]:
        for bucket in self._cells.values():
            yield from bucket

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the grid."""
        return self._rows, self._cols

    @property
    def cell_km(self) -> float:
        return self._cell_km

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, point: GeoPoint, item: T) -> None:
        """Insert ``item`` at ``point``.  The same object may be re-inserted
        after :meth:`remove` to model a driver moving."""
        cell = self._cell_of(point)
        self._cells.setdefault(cell, []).append((point, item))
        self._locations[id(item)] = (point, cell)
        self._count += 1

    def remove(self, item: T) -> bool:
        """Remove ``item`` (by identity).  Returns ``True`` if it was present."""
        key = id(item)
        located = self._locations.pop(key, None)
        if located is None:
            return False
        _point, cell = located
        bucket = self._cells.get(cell, [])
        for i, (_p, existing) in enumerate(bucket):
            if existing is item:
                bucket.pop(i)
                break
        if not bucket and cell in self._cells:
            del self._cells[cell]
        self._count -= 1
        return True

    def move(self, item: T, new_point: GeoPoint) -> None:
        """Relocate ``item`` to ``new_point`` (insert if not present)."""
        self.remove(item)
        self.insert(new_point, item)

    def bulk_insert(self, located_items: Iterable[Tuple[GeoPoint, T]]) -> None:
        for point, item in located_items:
            self.insert(point, item)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def within_radius(self, center: GeoPoint, radius_km: float) -> List[Tuple[float, GeoPoint, T]]:
        """All items within ``radius_km`` of ``center``.

        Returns ``(distance_km, point, item)`` tuples sorted by distance.
        """
        if radius_km < 0:
            raise ValueError("radius_km must be non-negative")
        results: List[Tuple[float, GeoPoint, T]] = []
        for point, item in self._candidates(center, radius_km):
            d = equirectangular_km(center, point)
            if d <= radius_km:
                results.append((d, point, item))
        results.sort(key=lambda entry: entry[0])
        return results

    def nearest(self, center: GeoPoint, k: int = 1) -> List[Tuple[float, GeoPoint, T]]:
        """The ``k`` nearest items to ``center`` (expanding ring search)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._count == 0:
            return []
        radius = self._cell_km
        max_radius = self._box.diagonal_km() + 2 * self._cell_km
        while True:
            hits = self.within_radius(center, radius)
            if len(hits) >= k or radius > max_radius:
                return hits[:k]
            radius *= 2.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cell_of(self, point: GeoPoint) -> Tuple[int, int]:
        clamped = self._box.clamp(point)
        row = int(
            (clamped.lat - self._box.south)
            / max(1e-12, (self._box.north - self._box.south))
            * self._rows
        )
        col = int(
            (clamped.lon - self._box.west)
            / max(1e-12, (self._box.east - self._box.west))
            * self._cols
        )
        return min(self._rows - 1, max(0, row)), min(self._cols - 1, max(0, col))

    def _candidates(self, center: GeoPoint, radius_km: float) -> Iterator[Tuple[GeoPoint, T]]:
        row, col = self._cell_of(center)
        cell_span = max(1, int(math.ceil(radius_km / self._cell_km)))
        for r in range(row - cell_span, row + cell_span + 1):
            if r < 0 or r >= self._rows:
                continue
            for c in range(col - cell_span, col + cell_span + 1):
                if c < 0 or c >= self._cols:
                    continue
                bucket = self._cells.get((r, c))
                if bucket:
                    yield from bucket


def build_grid(
    box: BoundingBox,
    located_items: Iterable[Tuple[GeoPoint, T]],
    cell_km: float = 1.0,
) -> SpatialGrid[T]:
    """Convenience constructor: build a grid and bulk-insert items."""
    grid: SpatialGrid[T] = SpatialGrid(box, cell_km=cell_km)
    grid.bulk_insert(located_items)
    return grid
