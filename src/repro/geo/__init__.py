"""Geospatial substrate: points, regions, distance/travel models, grid index."""

from .point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    centroid,
    equirectangular_km,
    haversine_km,
    manhattan_km,
    polyline_length_km,
)
from .region import BEIJING, CITY_PRESETS, NYC, PORTO, BoundingBox, city_preset
from .distance import (
    DistanceEstimator,
    EquirectangularEstimator,
    HaversineEstimator,
    ManhattanEstimator,
    TravelModel,
    default_travel_model,
)
from .grid import SpatialGrid, build_grid

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "centroid",
    "equirectangular_km",
    "haversine_km",
    "manhattan_km",
    "polyline_length_km",
    "BoundingBox",
    "city_preset",
    "CITY_PRESETS",
    "PORTO",
    "NYC",
    "BEIJING",
    "DistanceEstimator",
    "HaversineEstimator",
    "EquirectangularEstimator",
    "ManhattanEstimator",
    "TravelModel",
    "default_travel_model",
    "SpatialGrid",
    "build_grid",
]
