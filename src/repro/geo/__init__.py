"""Geospatial substrate: points, regions, distance/travel models, grid index,
and the vectorised batch kernels (:func:`pairwise_km` / :func:`cross_km`)."""

from .batch import coord_array, cross_km, pairwise_km
from .point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    centroid,
    equirectangular_km,
    haversine_km,
    manhattan_km,
    polyline_length_km,
)
from .region import BEIJING, CITY_PRESETS, NYC, PORTO, BoundingBox, city_preset
from .distance import (
    DistanceEstimator,
    EquirectangularEstimator,
    HaversineEstimator,
    ManhattanEstimator,
    TimeVaryingTravelModel,
    TravelModel,
    default_travel_model,
    time_varying_model,
)
from .grid import GridIndex, SpatialGrid, bounding_box_of, build_grid

__all__ = [
    "coord_array",
    "cross_km",
    "pairwise_km",
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "centroid",
    "equirectangular_km",
    "haversine_km",
    "manhattan_km",
    "polyline_length_km",
    "BoundingBox",
    "city_preset",
    "CITY_PRESETS",
    "PORTO",
    "NYC",
    "BEIJING",
    "DistanceEstimator",
    "HaversineEstimator",
    "EquirectangularEstimator",
    "ManhattanEstimator",
    "TravelModel",
    "TimeVaryingTravelModel",
    "default_travel_model",
    "time_varying_model",
    "SpatialGrid",
    "build_grid",
    "GridIndex",
    "bounding_box_of",
]
