"""Vectorised geo kernels.

The scalar primitives in :mod:`repro.geo.point` are exact but Python-level;
every online candidate search and offline task-map construction needs
*thousands to millions* of driver-task distances per instance, which makes
the per-pair function-call overhead the dominant cost of the whole pipeline.
This module provides NumPy batch equivalents of the three distance metrics:

* :func:`pairwise_km` — element-wise distances between two equally long point
  collections (``out[i] = metric(a[i], b[i])``);
* :func:`cross_km` — the full distance matrix between two collections
  (``out[i, j] = metric(a[i], b[j])``).

Both replicate the scalar formulas operation for operation, so the results
match :func:`repro.geo.point.haversine_km` /
:func:`~repro.geo.point.equirectangular_km` /
:func:`~repro.geo.point.manhattan_km` to floating-point round-off (well below
1e-9 km at city scale); the property tests in ``tests/test_properties.py``
pin that parity.

Inputs may be sequences of :class:`~repro.geo.point.GeoPoint` or ``(n, 2)``
NumPy arrays of ``(lat, lon)`` decimal degrees — the array form lets hot
loops (the online candidate kernel) skip object conversion entirely.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .point import EARTH_RADIUS_KM, GeoPoint

#: Accepted point-collection types: GeoPoint sequences or (n, 2) degree arrays.
PointsLike = Union[Sequence[GeoPoint], np.ndarray]

#: Names of the supported batch metrics.
METRICS = ("haversine", "equirectangular", "manhattan")


def coord_array(points: PointsLike) -> np.ndarray:
    """Normalise a point collection to a ``(n, 2)`` float array of degrees."""
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"coordinate array must have shape (n, 2), got {arr.shape}")
        return arr
    pts = list(points)
    arr = np.empty((len(pts), 2), dtype=float)
    for i, p in enumerate(pts):
        arr[i, 0] = p.lat
        arr[i, 1] = p.lon
    return arr


def pairwise_km(
    points_a: PointsLike, points_b: PointsLike, metric: str = "haversine"
) -> np.ndarray:
    """Element-wise distances ``out[i] = metric(a[i], b[i])`` in kilometres.

    ``points_a`` and ``points_b`` must have the same length.
    """
    a = coord_array(points_a)
    b = coord_array(points_b)
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"pairwise_km needs equally long collections, got {a.shape[0]} and {b.shape[0]}"
        )
    lat1, lon1 = np.radians(a[:, 0]), np.radians(a[:, 1])
    lat2, lon2 = np.radians(b[:, 0]), np.radians(b[:, 1])
    return metric_fn(metric)(lat1, lon1, lat2, lon2)


def cross_km(
    points_a: PointsLike, points_b: PointsLike, metric: str = "haversine"
) -> np.ndarray:
    """Full distance matrix ``out[i, j] = metric(a[i], b[j])`` in kilometres."""
    a = coord_array(points_a)
    b = coord_array(points_b)
    lat1 = np.radians(a[:, 0])[:, None]
    lon1 = np.radians(a[:, 1])[:, None]
    lat2 = np.radians(b[:, 0])[None, :]
    lon2 = np.radians(b[:, 1])[None, :]
    return metric_fn(metric)(lat1, lon1, lat2, lon2)


# ----------------------------------------------------------------------
# metric implementations (radian inputs, km outputs)
# ----------------------------------------------------------------------
def _haversine(lat1, lon1, lat2, lon2) -> np.ndarray:
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    h = np.minimum(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))


def _equirectangular(lat1, lon1, lat2, lon2) -> np.ndarray:
    x = (lon2 - lon1) * np.cos((lat1 + lat2) / 2.0)
    y = lat2 - lat1
    return EARTH_RADIUS_KM * np.hypot(x, y)


def _manhattan(lat1, lon1, lat2, lon2) -> np.ndarray:
    # Same decomposition as the scalar function: a -> corner (lat1, lon2),
    # then corner -> b, each leg an equirectangular distance with one
    # component exactly zero — and hypot(v, 0) == |v| bit-for-bit (IEEE 754),
    # so plain absolute values keep scalar parity without the hypot cost.
    x = (lon2 - lon1) * np.cos(lat1)
    y = lat2 - lat1
    return EARTH_RADIUS_KM * np.abs(x) + EARTH_RADIUS_KM * np.abs(y)


_METRIC_FNS = {
    "haversine": _haversine,
    "equirectangular": _equirectangular,
    "manhattan": _manhattan,
}


def metric_fn(metric: str):
    """The raw kernel for ``metric``: ``fn(lat1, lon1, lat2, lon2)`` with
    *radian* array inputs, returning kilometres.

    Exposed for hot loops (the online candidate kernel) that keep
    pre-converted radian arrays and cannot afford the per-call degree
    conversion of :func:`pairwise_km` / :func:`cross_km`.

    Resolved through the process-active compute backend
    (:mod:`repro.backends`); the default ``numpy`` backend returns the
    canonical kernels defined in this module, so behaviour is unchanged
    unless a worker explicitly selected another backend.
    """
    from .. import backends  # lazy: backends imports this module's kernel table

    return backends.get_backend().metric_fn(metric)
