"""Rectangular geographic regions and named city presets.

The evaluation in the paper is run on the city of Porto, Portugal.  A
:class:`BoundingBox` models the rectangular service area of a market; the
:data:`PORTO`, :data:`NYC` and :data:`BEIJING` presets are used by the trace
generators and the examples.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from .point import GeoPoint, equirectangular_km


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned lat/lon rectangle describing a service area."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south >= self.north:
            raise ValueError("south latitude must be strictly below north latitude")
        if self.west >= self.east:
            raise ValueError("west longitude must be strictly below east longitude")

    @property
    def south_west(self) -> GeoPoint:
        return GeoPoint(self.south, self.west)

    @property
    def north_east(self) -> GeoPoint:
        return GeoPoint(self.north, self.east)

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` lies inside (or on the border of) the box."""
        return self.south <= point.lat <= self.north and self.west <= point.lon <= self.east

    def clamp(self, point: GeoPoint) -> GeoPoint:
        """Project ``point`` onto the box (nearest point inside it)."""
        return GeoPoint(
            min(max(point.lat, self.south), self.north),
            min(max(point.lon, self.west), self.east),
        )

    def width_km(self) -> float:
        """East-west extent measured along the box's central latitude."""
        mid_lat = (self.south + self.north) / 2.0
        return equirectangular_km(GeoPoint(mid_lat, self.west), GeoPoint(mid_lat, self.east))

    def height_km(self) -> float:
        """North-south extent of the box."""
        return equirectangular_km(GeoPoint(self.south, self.west), GeoPoint(self.north, self.west))

    def area_km2(self) -> float:
        return self.width_km() * self.height_km()

    def diagonal_km(self) -> float:
        return math.hypot(self.width_km(), self.height_km())

    def sample_uniform(self, rng: random.Random) -> GeoPoint:
        """Draw a point uniformly at random inside the box."""
        return GeoPoint(
            rng.uniform(self.south, self.north),
            rng.uniform(self.west, self.east),
        )

    def sample_gaussian(self, rng: random.Random, sigma_fraction: float = 0.18) -> GeoPoint:
        """Draw a point from a Gaussian centred on the box, clamped inside.

        Real demand is concentrated downtown rather than uniform; the
        Gaussian sampler models that concentration with ``sigma_fraction`` of
        the box's half-extent as the standard deviation.
        """
        if sigma_fraction <= 0:
            raise ValueError("sigma_fraction must be positive")
        c = self.center
        lat = rng.gauss(c.lat, (self.north - self.south) / 2.0 * sigma_fraction)
        lon = rng.gauss(c.lon, (self.east - self.west) / 2.0 * sigma_fraction)
        return self.clamp(GeoPoint(lat, lon))

    def split(self, rows: int, cols: int) -> List["BoundingBox"]:
        """Split the box into ``rows x cols`` equal sub-boxes (row-major order).

        Used by the distributed partitioner to shard a city-scale market.
        """
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        lat_step = (self.north - self.south) / rows
        lon_step = (self.east - self.west) / cols
        boxes: List[BoundingBox] = []
        for r in range(rows):
            for c in range(cols):
                boxes.append(
                    BoundingBox(
                        south=self.south + r * lat_step,
                        west=self.west + c * lon_step,
                        north=self.south + (r + 1) * lat_step,
                        east=self.west + (c + 1) * lon_step,
                    )
                )
        return boxes

    def cell_index(self, point: GeoPoint, rows: int, cols: int) -> Tuple[int, int]:
        """Return the (row, col) of ``point`` within a ``rows x cols`` split."""
        if not self.contains(point):
            point = self.clamp(point)
        lat_step = (self.north - self.south) / rows
        lon_step = (self.east - self.west) / cols
        row = min(rows - 1, int((point.lat - self.south) / lat_step))
        col = min(cols - 1, int((point.lon - self.west) / lon_step))
        return row, col

    def cell_indices(
        self, lats: np.ndarray, lons: np.ndarray, rows: int, cols: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`cell_index` over coordinate arrays (degrees).

        Returns ``(row_indices, col_indices)`` integer arrays.  Matches the
        scalar method exactly, including the clamping of out-of-box points.
        """
        lats = np.clip(np.asarray(lats, dtype=float), self.south, self.north)
        lons = np.clip(np.asarray(lons, dtype=float), self.west, self.east)
        lat_step = (self.north - self.south) / rows
        lon_step = (self.east - self.west) / cols
        row = np.minimum(rows - 1, ((lats - self.south) / lat_step).astype(np.intp))
        col = np.minimum(cols - 1, ((lons - self.west) / lon_step).astype(np.intp))
        return row, col

    def iter_grid_centers(self, rows: int, cols: int) -> Iterator[GeoPoint]:
        """Yield the centre of every cell in a ``rows x cols`` split."""
        for box in self.split(rows, cols):
            yield box.center


#: Porto, Portugal — the service area of the ECML/PKDD-15 taxi trace.
PORTO = BoundingBox(south=41.10, west=-8.70, north=41.25, east=-8.52)

#: Manhattan-centric New York City box (used by examples).
NYC = BoundingBox(south=40.63, west=-74.05, north=40.85, east=-73.85)

#: Central Beijing box (used by examples).
BEIJING = BoundingBox(south=39.80, west=116.20, north=40.05, east=116.55)

CITY_PRESETS = {
    "porto": PORTO,
    "nyc": NYC,
    "beijing": BEIJING,
}


def city_preset(name: str) -> BoundingBox:
    """Look up a named city preset (case-insensitive).

    Raises
    ------
    KeyError
        If ``name`` is not one of :data:`CITY_PRESETS`.
    """
    key = name.strip().lower()
    if key not in CITY_PRESETS:
        raise KeyError(f"unknown city preset {name!r}; available: {sorted(CITY_PRESETS)}")
    return CITY_PRESETS[key]
