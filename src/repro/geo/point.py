"""Geographic points and basic great-circle geometry.

The paper describes every driver source/destination and every task
source/destination as a ``(latitude, longitude)`` tuple.  This module provides
the :class:`GeoPoint` value type used throughout the library together with the
low-level distance primitives (haversine and the cheaper equirectangular
approximation) that the higher-level distance estimators build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

#: Mean Earth radius in kilometres (IUGG value), used by all spherical formulas.
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes
    ----------
    lat:
        Latitude in decimal degrees, in ``[-90, 90]``.
    lon:
        Longitude in decimal degrees, in ``[-180, 180]``.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat!r} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon!r} outside [-180, 180]")

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(lat, lon)`` as a plain tuple."""
        return (self.lat, self.lon)

    def haversine_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def equirectangular_km(self, other: "GeoPoint") -> float:
        """Fast approximate distance to ``other`` in kilometres."""
        return equirectangular_km(self, other)

    def midpoint(self, other: "GeoPoint") -> "GeoPoint":
        """Arithmetic midpoint in lat/lon space (adequate at city scale)."""
        return GeoPoint((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """Return a point offset by ``north_km`` / ``east_km`` kilometres.

        Uses the local flat-earth approximation, which is accurate to well
        under a percent for the city-scale offsets this library works with.
        """
        dlat = north_km / _KM_PER_DEGREE_LAT
        km_per_degree_lon = _KM_PER_DEGREE_LAT * math.cos(math.radians(self.lat))
        if km_per_degree_lon <= 1e-9:
            raise ValueError("cannot offset east/west at the poles")
        dlon = east_km / km_per_degree_lon
        return GeoPoint(self.lat + dlat, self.lon + dlon)


_KM_PER_DEGREE_LAT = math.pi * EARTH_RADIUS_KM / 180.0


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle (haversine) distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def equirectangular_km(a: GeoPoint, b: GeoPoint) -> float:
    """Equirectangular-projection distance in kilometres.

    Roughly 5x cheaper than :func:`haversine_km` and accurate to a fraction of
    a percent at city scale; used on hot paths such as candidate filtering.
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    x = (lon2 - lon1) * math.cos((lat1 + lat2) / 2.0)
    y = lat2 - lat1
    return EARTH_RADIUS_KM * math.hypot(x, y)


def manhattan_km(a: GeoPoint, b: GeoPoint) -> float:
    """Manhattan (L1) distance on the sphere's local projection, in km.

    Street networks rarely allow straight-line travel; the paper estimates
    travel distances from the trace, and the L1 metric is the standard
    grid-city approximation when no road network is available.
    """
    corner = GeoPoint(a.lat, b.lon)
    return equirectangular_km(a, corner) + equirectangular_km(corner, b)


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid() of an empty collection")
    lat = sum(p.lat for p in pts) / len(pts)
    lon = sum(p.lon for p in pts) / len(pts)
    return GeoPoint(lat, lon)


def polyline_length_km(points: Sequence[GeoPoint]) -> float:
    """Total haversine length of a polyline (e.g. a Porto trip trajectory)."""
    if len(points) < 2:
        return 0.0
    return sum(haversine_km(p, q) for p, q in _pairwise(points))


def _pairwise(points: Sequence[GeoPoint]) -> Iterator[Tuple[GeoPoint, GeoPoint]]:
    for i in range(len(points) - 1):
        yield points[i], points[i + 1]
