"""Distance and travel-time estimation.

The optimisation model never sees a road network: the paper estimates the
empty-drive distance ``d_{n,m,m'}`` and the in-task distance ``d̂_{n,m}`` from
coordinates, then converts them to travel times ``l`` using an average driver
speed, and to travel costs ``c`` using a per-kilometre cost (the gasoline
price).  This module provides pluggable estimators for that pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from . import batch
from .point import GeoPoint, equirectangular_km, haversine_km, manhattan_km


class DistanceEstimator(abc.ABC):
    """Strategy interface for point-to-point driving-distance estimation.

    Besides the scalar :meth:`distance_km`, estimators expose the batch
    :meth:`pairwise_km` / :meth:`cross_km` APIs used by the online candidate
    kernel and the task-map builders.  The base-class implementations fall
    back to the scalar method pair by pair, so any custom estimator keeps
    working; the built-in estimators override them with NumPy kernels that
    match the scalar results to floating-point round-off.
    """

    @abc.abstractmethod
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Estimated driving distance from ``origin`` to ``destination`` in km."""

    def __call__(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.distance_km(origin, destination)

    # ------------------------------------------------------------------
    # batch APIs
    # ------------------------------------------------------------------
    def pairwise_km(
        self, origins: batch.PointsLike, destinations: batch.PointsLike
    ) -> np.ndarray:
        """Element-wise distances ``out[i] = distance(origins[i], destinations[i])``."""
        o, d = _as_points(origins), _as_points(destinations)
        if len(o) != len(d):
            raise ValueError("pairwise_km needs equally long collections")
        return np.array([self.distance_km(a, b) for a, b in zip(o, d)], dtype=float)

    def cross_km(
        self, origins: batch.PointsLike, destinations: batch.PointsLike
    ) -> np.ndarray:
        """Full distance matrix ``out[i, j] = distance(origins[i], destinations[j])``."""
        o, d = _as_points(origins), _as_points(destinations)
        out = np.empty((len(o), len(d)), dtype=float)
        for i, a in enumerate(o):
            for j, b in enumerate(d):
                out[i, j] = self.distance_km(a, b)
        return out

    def prune_radius_km(self, reach_km: float) -> float | None:
        """A straight-line (equirectangular) radius guaranteed to contain every
        point whose *estimated* distance is at most ``reach_km``.

        Spatial indexes use this to turn a travel-time budget into a safe
        search radius.  ``None`` (the default) means no bound is known and
        callers must fall back to an exhaustive scan.

        The bounds returned by the built-in estimators hold for city-scale
        service areas away from the poles (diagonal up to a few hundred
        kilometres, latitudes within roughly +/-70 degrees), where the
        equirectangular, haversine and L1 metrics agree to within a few
        percent; the candidate kernel only activates its spatial index inside
        that regime.  They are *not* valid for antipodal-scale geometry.
        """
        return None


@dataclass(frozen=True, slots=True)
class HaversineEstimator(DistanceEstimator):
    """Great-circle distance scaled by a road *circuity* factor.

    Empirical studies of urban road networks put the circuity (network
    distance / straight-line distance) between 1.2 and 1.4; the default of
    1.3 sits in the middle of that range.
    """

    circuity: float = 1.3

    #: Name of the raw :mod:`repro.geo.batch` kernel this estimator scales;
    #: lets hot loops call the kernel directly on pre-converted radian arrays.
    batch_metric = "haversine"

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * haversine_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.pairwise_km(origins, destinations, metric="haversine")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.cross_km(origins, destinations, metric="haversine")

    def prune_radius_km(self, reach_km: float) -> float:
        # At city scale within +/-70 degrees latitude (the regime the
        # candidate kernel enforces before indexing) the equirectangular
        # distance exceeds the haversine distance by at most ~13%, dominated
        # by the cos(mean-latitude) mismatch across the box; 20% + 500 m
        # keeps the bound a strict superset with margin to spare.
        return reach_km / self.circuity * 1.2 + 0.5


@dataclass(frozen=True, slots=True)
class EquirectangularEstimator(DistanceEstimator):
    """Cheaper flat-projection variant of :class:`HaversineEstimator`."""

    circuity: float = 1.3

    batch_metric = "equirectangular"

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * equirectangular_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.pairwise_km(origins, destinations, metric="equirectangular")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.cross_km(origins, destinations, metric="equirectangular")

    def prune_radius_km(self, reach_km: float) -> float:
        # The estimator *is* the straight-line metric scaled by circuity, so
        # the conversion is exact; the small absolute pad absorbs round-off.
        return reach_km / self.circuity + 1e-6


@dataclass(frozen=True, slots=True)
class ManhattanEstimator(DistanceEstimator):
    """L1 (grid-city) driving distance; no extra circuity is applied because
    the L1 detour already models rectilinear streets."""

    batch_metric = "manhattan"

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return manhattan_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return batch.pairwise_km(origins, destinations, metric="manhattan")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return batch.cross_km(origins, destinations, metric="manhattan")

    def prune_radius_km(self, reach_km: float) -> float:
        # L1 dominates L2 in the same projection, but the L1 east-west leg is
        # scaled by cos(lat of the origin) while the equirectangular metric
        # uses cos(mean latitude); at city scale within +/-70 degrees that
        # mismatch stays well under the 20% + 500 m margin.
        return reach_km * 1.2 + 0.5


@dataclass(frozen=True, slots=True)
class TravelModel:
    """Converts distances to travel times and monetary costs.

    Parameters
    ----------
    estimator:
        The :class:`DistanceEstimator` used for point-to-point distances.
    speed_kmh:
        Average driving speed; the paper estimates travel times by dividing
        the estimated distance by the driver's average speed.
    cost_per_km:
        Driver's marginal cost of driving one kilometre (fuel + wear), used
        for both empty drives and in-task drives.
    """

    estimator: DistanceEstimator
    speed_kmh: float = 30.0
    cost_per_km: float = 0.12

    def __post_init__(self) -> None:
        if self.speed_kmh <= 0:
            raise ValueError("speed_kmh must be positive")
        if self.cost_per_km < 0:
            raise ValueError("cost_per_km must be non-negative")

    # ------------------------------------------------------------------
    # distance / time / cost between arbitrary points
    # ------------------------------------------------------------------
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Driving distance estimate in kilometres."""
        return self.estimator.distance_km(origin, destination)

    def travel_time_s(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Travel-time estimate in seconds."""
        return self.time_for_distance_s(self.distance_km(origin, destination))

    def travel_cost(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Monetary driving-cost estimate."""
        return self.cost_for_distance(self.distance_km(origin, destination))

    # ------------------------------------------------------------------
    # derived models
    # ------------------------------------------------------------------
    def scaled(self, speed_factor: float = 1.0, cost_factor: float = 1.0) -> "TravelModel":
        """A copy of this model with speed and per-km cost scaled.

        The hook the scenario engine uses to express city-wide conditions —
        a rainy day halves speeds (``speed_factor=0.5``), a fuel-price spike
        raises ``cost_factor`` — without touching the estimator or any
        caller: the scaled model is a plain :class:`TravelModel`, so every
        batch kernel and cache keyed on it keeps working.
        """
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if cost_factor < 0:
            raise ValueError("cost_factor must be non-negative")
        return TravelModel(
            estimator=self.estimator,
            speed_kmh=self.speed_kmh * speed_factor,
            cost_per_km=self.cost_per_km * cost_factor,
        )

    # ------------------------------------------------------------------
    # conversions for known distances (e.g. taken from the trace itself)
    # ------------------------------------------------------------------
    def time_for_distance_s(self, distance_km: float) -> float:
        """Seconds needed to drive ``distance_km`` at the average speed."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km / self.speed_kmh * 3600.0

    def cost_for_distance(self, distance_km: float) -> float:
        """Monetary cost of driving ``distance_km``."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km * self.cost_per_km


def _as_points(points: batch.PointsLike) -> list:
    """Materialise a point collection as a list of :class:`GeoPoint` (slow
    path used only by the generic scalar fallbacks)."""
    if isinstance(points, np.ndarray):
        arr = batch.coord_array(points)
        return [GeoPoint(float(lat), float(lon)) for lat, lon in arr]
    return list(points)


def default_travel_model(speed_kmh: float = 30.0, cost_per_km: float = 0.12) -> TravelModel:
    """The travel model used throughout the evaluation.

    Haversine distances with a 1.3 circuity factor, a 30 km/h average urban
    speed and a 0.12 currency-unit/km driving cost (approximately the Porto
    gasoline cost per km in the trace period).
    """
    return TravelModel(HaversineEstimator(), speed_kmh=speed_kmh, cost_per_km=cost_per_km)
