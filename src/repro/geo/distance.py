"""Distance and travel-time estimation.

The optimisation model never sees a road network: the paper estimates the
empty-drive distance ``d_{n,m,m'}`` and the in-task distance ``d̂_{n,m}`` from
coordinates, then converts them to travel times ``l`` using an average driver
speed, and to travel costs ``c`` using a per-kilometre cost (the gasoline
price).  This module provides pluggable estimators for that pipeline.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from . import batch
from .point import GeoPoint, equirectangular_km, haversine_km, manhattan_km


class DistanceEstimator(abc.ABC):
    """Strategy interface for point-to-point driving-distance estimation.

    Besides the scalar :meth:`distance_km`, estimators expose the batch
    :meth:`pairwise_km` / :meth:`cross_km` APIs used by the online candidate
    kernel and the task-map builders.  The base-class implementations fall
    back to the scalar method pair by pair, so any custom estimator keeps
    working; the built-in estimators override them with NumPy kernels that
    match the scalar results to floating-point round-off.
    """

    @abc.abstractmethod
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Estimated driving distance from ``origin`` to ``destination`` in km."""

    def __call__(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.distance_km(origin, destination)

    # ------------------------------------------------------------------
    # batch APIs
    # ------------------------------------------------------------------
    def pairwise_km(
        self, origins: batch.PointsLike, destinations: batch.PointsLike
    ) -> np.ndarray:
        """Element-wise distances ``out[i] = distance(origins[i], destinations[i])``."""
        o, d = _as_points(origins), _as_points(destinations)
        if len(o) != len(d):
            raise ValueError("pairwise_km needs equally long collections")
        return np.array([self.distance_km(a, b) for a, b in zip(o, d)], dtype=float)

    def cross_km(
        self, origins: batch.PointsLike, destinations: batch.PointsLike
    ) -> np.ndarray:
        """Full distance matrix ``out[i, j] = distance(origins[i], destinations[j])``."""
        o, d = _as_points(origins), _as_points(destinations)
        out = np.empty((len(o), len(d)), dtype=float)
        for i, a in enumerate(o):
            for j, b in enumerate(d):
                out[i, j] = self.distance_km(a, b)
        return out

    def prune_radius_km(self, reach_km: float) -> float | None:
        """A straight-line (equirectangular) radius guaranteed to contain every
        point whose *estimated* distance is at most ``reach_km``.

        Spatial indexes use this to turn a travel-time budget into a safe
        search radius.  ``None`` (the default) means no bound is known and
        callers must fall back to an exhaustive scan.

        The bounds returned by the built-in estimators hold for city-scale
        service areas away from the poles (diagonal up to a few hundred
        kilometres, latitudes within roughly +/-70 degrees), where the
        equirectangular, haversine and L1 metrics agree to within a few
        percent; the candidate kernel only activates its spatial index inside
        that regime.  They are *not* valid for antipodal-scale geometry.
        """
        return None


@dataclass(frozen=True, slots=True)
class HaversineEstimator(DistanceEstimator):
    """Great-circle distance scaled by a road *circuity* factor.

    Empirical studies of urban road networks put the circuity (network
    distance / straight-line distance) between 1.2 and 1.4; the default of
    1.3 sits in the middle of that range.
    """

    circuity: float = 1.3

    #: Name of the raw :mod:`repro.geo.batch` kernel this estimator scales;
    #: lets hot loops call the kernel directly on pre-converted radian arrays.
    batch_metric = "haversine"

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * haversine_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.pairwise_km(origins, destinations, metric="haversine")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.cross_km(origins, destinations, metric="haversine")

    def prune_radius_km(self, reach_km: float) -> float:
        # At city scale within +/-70 degrees latitude (the regime the
        # candidate kernel enforces before indexing) the equirectangular
        # distance exceeds the haversine distance by at most ~13%, dominated
        # by the cos(mean-latitude) mismatch across the box; 20% + 500 m
        # keeps the bound a strict superset with margin to spare.
        return reach_km / self.circuity * 1.2 + 0.5


@dataclass(frozen=True, slots=True)
class EquirectangularEstimator(DistanceEstimator):
    """Cheaper flat-projection variant of :class:`HaversineEstimator`."""

    circuity: float = 1.3

    batch_metric = "equirectangular"

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * equirectangular_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.pairwise_km(origins, destinations, metric="equirectangular")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return self.circuity * batch.cross_km(origins, destinations, metric="equirectangular")

    def prune_radius_km(self, reach_km: float) -> float:
        # The estimator *is* the straight-line metric scaled by circuity, so
        # the conversion is exact; the small absolute pad absorbs round-off.
        return reach_km / self.circuity + 1e-6


@dataclass(frozen=True, slots=True)
class ManhattanEstimator(DistanceEstimator):
    """L1 (grid-city) driving distance; no extra circuity is applied because
    the L1 detour already models rectilinear streets."""

    batch_metric = "manhattan"

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return manhattan_km(origin, destination)

    def pairwise_km(self, origins, destinations) -> np.ndarray:
        return batch.pairwise_km(origins, destinations, metric="manhattan")

    def cross_km(self, origins, destinations) -> np.ndarray:
        return batch.cross_km(origins, destinations, metric="manhattan")

    def prune_radius_km(self, reach_km: float) -> float:
        # L1 dominates L2 in the same projection, but the L1 east-west leg is
        # scaled by cos(lat of the origin) while the equirectangular metric
        # uses cos(mean latitude); at city scale within +/-70 degrees that
        # mismatch stays well under the 20% + 500 m margin.
        return reach_km * 1.2 + 0.5


@dataclass(frozen=True, slots=True)
class TravelModel:
    """Converts distances to travel times and monetary costs.

    Parameters
    ----------
    estimator:
        The :class:`DistanceEstimator` used for point-to-point distances.
    speed_kmh:
        Average driving speed; the paper estimates travel times by dividing
        the estimated distance by the driver's average speed.
    cost_per_km:
        Driver's marginal cost of driving one kilometre (fuel + wear), used
        for both empty drives and in-task drives.
    """

    estimator: DistanceEstimator
    speed_kmh: float = 30.0
    cost_per_km: float = 0.12

    def __post_init__(self) -> None:
        if not math.isfinite(self.speed_kmh) or self.speed_kmh <= 0:
            raise ValueError("speed_kmh must be positive and finite")
        if not math.isfinite(self.cost_per_km) or self.cost_per_km < 0:
            raise ValueError("cost_per_km must be non-negative and finite")

    # ------------------------------------------------------------------
    # distance / time / cost between arbitrary points
    # ------------------------------------------------------------------
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Driving distance estimate in kilometres."""
        return self.estimator.distance_km(origin, destination)

    def travel_time_s(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Travel-time estimate in seconds."""
        return self.time_for_distance_s(self.distance_km(origin, destination))

    def travel_cost(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Monetary driving-cost estimate."""
        return self.cost_for_distance(self.distance_km(origin, destination))

    # ------------------------------------------------------------------
    # derived models
    # ------------------------------------------------------------------
    def scaled(self, speed_factor: float = 1.0, cost_factor: float = 1.0) -> "TravelModel":
        """A copy of this model with speed and per-km cost scaled.

        The hook the scenario engine uses to express city-wide conditions —
        a rainy day halves speeds (``speed_factor=0.5``), a fuel-price spike
        raises ``cost_factor`` — without touching the estimator or any
        caller: the scaled model is a plain :class:`TravelModel`, so every
        batch kernel and cache keyed on it keeps working.
        """
        if not math.isfinite(speed_factor) or speed_factor <= 0:
            raise ValueError("speed_factor must be positive and finite")
        if not math.isfinite(cost_factor) or cost_factor < 0:
            raise ValueError("cost_factor must be non-negative and finite")
        return TravelModel(
            estimator=self.estimator,
            speed_kmh=self.speed_kmh * speed_factor,
            cost_per_km=self.cost_per_km * cost_factor,
        )

    # ------------------------------------------------------------------
    # conversions for known distances (e.g. taken from the trace itself)
    # ------------------------------------------------------------------
    def time_for_distance_s(self, distance_km: float) -> float:
        """Seconds needed to drive ``distance_km`` at the average speed."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km / self.speed_kmh * 3600.0

    def cost_for_distance(self, distance_km: float) -> float:
        """Monetary cost of driving ``distance_km``."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km * self.cost_per_km


@dataclass(frozen=True, slots=True)
class TimeVaryingTravelModel:
    """A :class:`TravelModel` whose speed and per-km cost follow a
    piecewise-constant time profile.

    The profile is a sequence of multiplicative factors applied to the
    ``base`` model's rates, one pair per window of ``window_s`` seconds
    starting at ``origin_ts``.  Timestamps before the profile clamp to the
    first window and timestamps past its end clamp to the last, so the model
    is total over all of time and replaying a day never indexes out of
    range.

    Distances are time-invariant (the estimator never changes); only the
    distance -> time and distance -> cost conversions are indexed by time.
    The model intentionally quacks like a plain :class:`TravelModel` at the
    *base* rates (``speed_kmh`` / ``cost_per_km`` / ``estimator`` and the
    un-timestamped conversion methods), so existing callers that are not
    time-aware — task-map builders, repositioning heuristics, checksums —
    keep working unchanged; time-aware callers resolve per-window rates via
    :meth:`at` / :meth:`rates_at`.

    **Flat-profile identity:** a window whose factors are exactly
    ``(1.0, 1.0)`` resolves to the ``base`` model object itself and every
    rate arithmetic multiplies by the literal ``1.0``, so a flat profile
    reproduces the plain model's outputs bit-for-bit (parity contract 18).
    """

    base: TravelModel
    window_s: float = 3600.0
    speed_factors: Tuple[float, ...] = (1.0,)
    cost_factors: Tuple[float, ...] = (1.0,)
    origin_ts: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "speed_factors", tuple(float(f) for f in self.speed_factors))
        object.__setattr__(self, "cost_factors", tuple(float(f) for f in self.cost_factors))
        if not math.isfinite(self.window_s) or self.window_s <= 0:
            raise ValueError("window_s must be positive and finite")
        if not math.isfinite(self.origin_ts):
            raise ValueError("origin_ts must be finite")
        if not self.speed_factors:
            raise ValueError("speed_factors must contain at least one window")
        if len(self.cost_factors) != len(self.speed_factors):
            raise ValueError("speed_factors and cost_factors must have equal length")
        for factor in self.speed_factors:
            if not math.isfinite(factor) or factor <= 0:
                raise ValueError("speed factors must be positive and finite")
        for factor in self.cost_factors:
            if not math.isfinite(factor) or factor < 0:
                raise ValueError("cost factors must be non-negative and finite")

    # ------------------------------------------------------------------
    # plain-TravelModel duck API (base rates)
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> DistanceEstimator:
        return self.base.estimator

    @property
    def speed_kmh(self) -> float:
        """Base-window speed; time-aware callers use :meth:`rates_at`."""
        return self.base.speed_kmh

    @property
    def cost_per_km(self) -> float:
        """Base-window per-km cost; time-aware callers use :meth:`rates_at`."""
        return self.base.cost_per_km

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.base.distance_km(origin, destination)

    # ------------------------------------------------------------------
    # time indexing
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        return len(self.speed_factors)

    @property
    def is_flat(self) -> bool:
        """True when every window leaves the base rates untouched."""
        return all(f == 1.0 for f in self.speed_factors) and all(
            f == 1.0 for f in self.cost_factors
        )

    @property
    def max_speed_kmh(self) -> float:
        """Largest speed over the whole profile — the safe rate for turning a
        time budget into a reach radius (a superset bound for pruning)."""
        return self.base.speed_kmh * max(self.speed_factors)

    def window_index(self, ts: float) -> int:
        """Profile window containing ``ts`` (clamped to the profile range)."""
        if not math.isfinite(ts):
            raise ValueError("timestamp must be finite")
        index = int((ts - self.origin_ts) // self.window_s)
        return min(max(index, 0), len(self.speed_factors) - 1)

    def rates_at(self, ts: float) -> Tuple[float, float]:
        """``(speed_kmh, cost_per_km)`` in effect at ``ts``."""
        index = self.window_index(ts)
        return (
            self.base.speed_kmh * self.speed_factors[index],
            self.base.cost_per_km * self.cost_factors[index],
        )

    def at(self, ts: float) -> TravelModel:
        """The plain :class:`TravelModel` in effect at ``ts``.

        Identity windows return the ``base`` object itself, so flat profiles
        share every cache keyed on the model instance.
        """
        index = self.window_index(ts)
        speed_factor = self.speed_factors[index]
        cost_factor = self.cost_factors[index]
        if speed_factor == 1.0 and cost_factor == 1.0:
            return self.base
        return TravelModel(
            estimator=self.base.estimator,
            speed_kmh=self.base.speed_kmh * speed_factor,
            cost_per_km=self.base.cost_per_km * cost_factor,
        )

    # ------------------------------------------------------------------
    # timestamped conversions (fall back to base rates when ts is omitted)
    # ------------------------------------------------------------------
    def travel_time_s(
        self, origin: GeoPoint, destination: GeoPoint, ts: Optional[float] = None
    ) -> float:
        return self.time_for_distance_s(self.distance_km(origin, destination), ts)

    def travel_cost(
        self, origin: GeoPoint, destination: GeoPoint, ts: Optional[float] = None
    ) -> float:
        return self.cost_for_distance(self.distance_km(origin, destination), ts)

    def time_for_distance_s(self, distance_km: float, ts: Optional[float] = None) -> float:
        model = self.base if ts is None else self.at(ts)
        return model.time_for_distance_s(distance_km)

    def cost_for_distance(self, distance_km: float, ts: Optional[float] = None) -> float:
        model = self.base if ts is None else self.at(ts)
        return model.cost_for_distance(distance_km)

    # ------------------------------------------------------------------
    # derived models
    # ------------------------------------------------------------------
    def scaled(
        self, speed_factor: float = 1.0, cost_factor: float = 1.0
    ) -> "TimeVaryingTravelModel":
        """Scale the *base* rates, keeping the time profile intact."""
        return TimeVaryingTravelModel(
            base=self.base.scaled(speed_factor, cost_factor),
            window_s=self.window_s,
            speed_factors=self.speed_factors,
            cost_factors=self.cost_factors,
            origin_ts=self.origin_ts,
        )


def time_varying_model(
    base: TravelModel,
    window_s: float,
    speed_factors: Sequence[float],
    cost_factors: Optional[Sequence[float]] = None,
    origin_ts: float = 0.0,
) -> TimeVaryingTravelModel:
    """Convenience constructor; ``cost_factors`` defaults to all-ones."""
    speeds = tuple(float(f) for f in speed_factors)
    costs = (
        tuple(float(f) for f in cost_factors)
        if cost_factors is not None
        else (1.0,) * len(speeds)
    )
    return TimeVaryingTravelModel(
        base=base,
        window_s=window_s,
        speed_factors=speeds,
        cost_factors=costs,
        origin_ts=origin_ts,
    )


def _as_points(points: batch.PointsLike) -> list:
    """Materialise a point collection as a list of :class:`GeoPoint` (slow
    path used only by the generic scalar fallbacks)."""
    if isinstance(points, np.ndarray):
        arr = batch.coord_array(points)
        return [GeoPoint(float(lat), float(lon)) for lat, lon in arr]
    return list(points)


def default_travel_model(speed_kmh: float = 30.0, cost_per_km: float = 0.12) -> TravelModel:
    """The travel model used throughout the evaluation.

    Haversine distances with a 1.3 circuity factor, a 30 km/h average urban
    speed and a 0.12 currency-unit/km driving cost (approximately the Porto
    gasoline cost per km in the trace period).
    """
    return TravelModel(HaversineEstimator(), speed_kmh=speed_kmh, cost_per_km=cost_per_km)
