"""Distance and travel-time estimation.

The optimisation model never sees a road network: the paper estimates the
empty-drive distance ``d_{n,m,m'}`` and the in-task distance ``d̂_{n,m}`` from
coordinates, then converts them to travel times ``l`` using an average driver
speed, and to travel costs ``c`` using a per-kilometre cost (the gasoline
price).  This module provides pluggable estimators for that pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .point import GeoPoint, equirectangular_km, haversine_km, manhattan_km


class DistanceEstimator(abc.ABC):
    """Strategy interface for point-to-point driving-distance estimation."""

    @abc.abstractmethod
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Estimated driving distance from ``origin`` to ``destination`` in km."""

    def __call__(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.distance_km(origin, destination)


@dataclass(frozen=True, slots=True)
class HaversineEstimator(DistanceEstimator):
    """Great-circle distance scaled by a road *circuity* factor.

    Empirical studies of urban road networks put the circuity (network
    distance / straight-line distance) between 1.2 and 1.4; the default of
    1.3 sits in the middle of that range.
    """

    circuity: float = 1.3

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * haversine_km(origin, destination)


@dataclass(frozen=True, slots=True)
class EquirectangularEstimator(DistanceEstimator):
    """Cheaper flat-projection variant of :class:`HaversineEstimator`."""

    circuity: float = 1.3

    def __post_init__(self) -> None:
        if self.circuity < 1.0:
            raise ValueError("circuity factor must be >= 1.0")

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return self.circuity * equirectangular_km(origin, destination)


@dataclass(frozen=True, slots=True)
class ManhattanEstimator(DistanceEstimator):
    """L1 (grid-city) driving distance; no extra circuity is applied because
    the L1 detour already models rectilinear streets."""

    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        return manhattan_km(origin, destination)


@dataclass(frozen=True, slots=True)
class TravelModel:
    """Converts distances to travel times and monetary costs.

    Parameters
    ----------
    estimator:
        The :class:`DistanceEstimator` used for point-to-point distances.
    speed_kmh:
        Average driving speed; the paper estimates travel times by dividing
        the estimated distance by the driver's average speed.
    cost_per_km:
        Driver's marginal cost of driving one kilometre (fuel + wear), used
        for both empty drives and in-task drives.
    """

    estimator: DistanceEstimator
    speed_kmh: float = 30.0
    cost_per_km: float = 0.12

    def __post_init__(self) -> None:
        if self.speed_kmh <= 0:
            raise ValueError("speed_kmh must be positive")
        if self.cost_per_km < 0:
            raise ValueError("cost_per_km must be non-negative")

    # ------------------------------------------------------------------
    # distance / time / cost between arbitrary points
    # ------------------------------------------------------------------
    def distance_km(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Driving distance estimate in kilometres."""
        return self.estimator.distance_km(origin, destination)

    def travel_time_s(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Travel-time estimate in seconds."""
        return self.time_for_distance_s(self.distance_km(origin, destination))

    def travel_cost(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Monetary driving-cost estimate."""
        return self.cost_for_distance(self.distance_km(origin, destination))

    # ------------------------------------------------------------------
    # conversions for known distances (e.g. taken from the trace itself)
    # ------------------------------------------------------------------
    def time_for_distance_s(self, distance_km: float) -> float:
        """Seconds needed to drive ``distance_km`` at the average speed."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km / self.speed_kmh * 3600.0

    def cost_for_distance(self, distance_km: float) -> float:
        """Monetary cost of driving ``distance_km``."""
        if distance_km < 0:
            raise ValueError("distance must be non-negative")
        return distance_km * self.cost_per_km


def default_travel_model(speed_kmh: float = 30.0, cost_per_km: float = 0.12) -> TravelModel:
    """The travel model used throughout the evaluation.

    Haversine distances with a 1.3 circuity factor, a 30 km/h average urban
    speed and a 0.12 currency-unit/km driving cost (approximately the Porto
    gasoline cost per km in the trace period).
    """
    return TravelModel(HaversineEstimator(), speed_kmh=speed_kmh, cost_per_km=cost_per_km)
