"""Service metrics: latency distributions and per-city counters.

The soak benchmark's headline numbers (p50/p99 end-to-end dispatch latency)
and the gateway's health endpoint both read from here.  Memory is bounded by
construction: a :class:`LatencyRecorder` keeps an exact running count, sum
and max (and fixed Prometheus-style bucket counts for
:func:`repro.obs.registry.bind_city_metrics`), plus a fixed-size reservoir
sample for on-demand percentiles — so a week-long ``repro serve`` holds a
few kilobytes per recorder instead of one float per order forever.
Percentiles are exact until the reservoir capacity (4096 samples) is
exceeded, then an unbiased uniform-sample estimate; count/mean/max stay
exact at any scale.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Fixed histogram upper bounds in seconds (5ms .. 10s) shared with the
#: Prometheus exposition of dispatch/append latency.
BUCKET_BOUNDS_S: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyRecorder:
    """Bounded latency sketch: exact count/sum/max, reservoir percentiles.

    ``record`` is O(1): it bumps the exact running stats, the fixed bucket
    counts, and (past capacity) replaces a random reservoir slot — Vitter's
    algorithm R with a recorder-local seeded RNG, so runs are reproducible.
    """

    __slots__ = ("_reservoir", "_count", "_sum", "_max", "_buckets", "_rng")

    #: Reservoir capacity; percentiles are exact below this many samples.
    CAPACITY = 4096

    #: Bucket upper bounds (seconds) exposed to the metrics registry.
    BUCKET_BOUNDS_S = BUCKET_BOUNDS_S

    def __init__(self) -> None:
        self._reservoir: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._buckets = [0] * (len(BUCKET_BOUNDS_S) + 1)  # last slot is +Inf
        self._rng = random.Random(0x5EED)

    def record(self, seconds: float) -> None:
        value = float(seconds)
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        self._buckets[bisect_left(BUCKET_BOUNDS_S, value)] += 1
        if len(self._reservoir) < self.CAPACITY:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.CAPACITY:
                self._reservoir[slot] = value

    def __len__(self) -> int:
        return self._count

    @property
    def sum_seconds(self) -> float:
        """Exact sum of every recorded sample, in seconds."""
        return self._sum

    @property
    def max_seconds(self) -> float:
        """Exact maximum recorded sample, in seconds (0 when empty)."""
        return self._max

    def bucket_counts(self) -> Tuple[int, ...]:
        """Exact per-bucket counts over :data:`BUCKET_BOUNDS_S` (+Inf last)."""
        return tuple(self._buckets)

    def percentile_ms(self, q: float) -> Optional[float]:
        """The ``q``-th percentile in milliseconds (``None`` when empty).

        Exact while the sample count fits the reservoir, estimated from the
        uniform reservoir sample beyond it.
        """
        if not self._reservoir:
            return None
        return float(np.percentile(np.asarray(self._reservoir), q)) * 1000.0

    def summary(self) -> Dict[str, Optional[float]]:
        """``{count, p50_ms, p99_ms, mean_ms, max_ms}`` for reports/health."""
        if self._count == 0:
            return {"count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None, "max_ms": None}
        data = np.asarray(self._reservoir)
        return {
            "count": int(self._count),
            "p50_ms": float(np.percentile(data, 50)) * 1000.0,
            "p99_ms": float(np.percentile(data, 99)) * 1000.0,
            "mean_ms": (self._sum / self._count) * 1000.0,
            "max_ms": self._max * 1000.0,
        }


@dataclass
class CityMetrics:
    """One city's live counters, read by :meth:`DispatchService.health`."""

    #: Orders accepted into the city's stream (across all epochs).
    orders: int = 0
    #: Batches shipped to the city's shard sessions.
    batches: int = 0
    #: Completed epochs (stream rotations).
    epochs: int = 0
    #: Times the gateway paused ingestion to let the shard queues drain.
    backpressure_events: int = 0
    #: Orders served / orders ingested, accumulated over finished epochs.
    served: int = 0
    #: End-to-end dispatch latency: submit -> batch fully appended.
    dispatch: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: Ship -> append-complete latency per shard id.
    per_shard_append: Dict[int, LatencyRecorder] = field(default_factory=dict)

    def record_append(self, shard_id: int, seconds: float) -> None:
        recorder = self.per_shard_append.get(shard_id)
        if recorder is None:
            recorder = self.per_shard_append[shard_id] = LatencyRecorder()
        recorder.record(seconds)

    @property
    def serve_rate(self) -> Optional[float]:
        """Across finished epochs (``None`` before the first finish)."""
        if self.orders == 0 or self.epochs == 0:
            return None
        return self.served / self.orders

    def snapshot(self) -> Dict[str, object]:
        """The city's health-endpoint block (JSON-serialisable)."""
        return {
            "orders": self.orders,
            "batches": self.batches,
            "epochs": self.epochs,
            "backpressure_events": self.backpressure_events,
            "serve_rate": self.serve_rate,
            "dispatch_latency": self.dispatch.summary(),
            "append_latency_per_shard": {
                str(shard_id): recorder.summary()
                for shard_id, recorder in sorted(self.per_shard_append.items())
            },
        }
