"""Service metrics: latency distributions and per-city counters.

The soak benchmark's headline numbers (p50/p99 end-to-end dispatch latency)
and the gateway's health endpoint both read from here.  Percentiles are
computed on demand with NumPy over the raw samples — a soak keeps one float
per order, which at the ~1M-order scale is a few megabytes, cheap enough
that no streaming quantile sketch is warranted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class LatencyRecorder:
    """An append-only latency sample set with on-demand percentiles."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def percentile_ms(self, q: float) -> Optional[float]:
        """The ``q``-th percentile in milliseconds (``None`` when empty)."""
        if not self._samples:
            return None
        return float(np.percentile(np.asarray(self._samples), q)) * 1000.0

    def summary(self) -> Dict[str, Optional[float]]:
        """``{count, p50_ms, p99_ms, mean_ms, max_ms}`` for reports/health."""
        if not self._samples:
            return {"count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None, "max_ms": None}
        data = np.asarray(self._samples)
        return {
            "count": int(data.size),
            "p50_ms": float(np.percentile(data, 50)) * 1000.0,
            "p99_ms": float(np.percentile(data, 99)) * 1000.0,
            "mean_ms": float(data.mean()) * 1000.0,
            "max_ms": float(data.max()) * 1000.0,
        }


@dataclass
class CityMetrics:
    """One city's live counters, read by :meth:`DispatchService.health`."""

    #: Orders accepted into the city's stream (across all epochs).
    orders: int = 0
    #: Batches shipped to the city's shard sessions.
    batches: int = 0
    #: Completed epochs (stream rotations).
    epochs: int = 0
    #: Times the gateway paused ingestion to let the shard queues drain.
    backpressure_events: int = 0
    #: Orders served / orders ingested, accumulated over finished epochs.
    served: int = 0
    #: End-to-end dispatch latency: submit -> batch fully appended.
    dispatch: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: Ship -> append-complete latency per shard id.
    per_shard_append: Dict[int, LatencyRecorder] = field(default_factory=dict)

    def record_append(self, shard_id: int, seconds: float) -> None:
        recorder = self.per_shard_append.get(shard_id)
        if recorder is None:
            recorder = self.per_shard_append[shard_id] = LatencyRecorder()
        recorder.record(seconds)

    @property
    def serve_rate(self) -> Optional[float]:
        """Across finished epochs (``None`` before the first finish)."""
        if self.orders == 0 or self.epochs == 0:
            return None
        return self.served / self.orders

    def snapshot(self) -> Dict[str, object]:
        """The city's health-endpoint block (JSON-serialisable)."""
        return {
            "orders": self.orders,
            "batches": self.batches,
            "epochs": self.epochs,
            "backpressure_events": self.backpressure_events,
            "serve_rate": self.serve_rate,
            "dispatch_latency": self.dispatch.summary(),
            "append_latency_per_shard": {
                str(shard_id): recorder.summary()
                for shard_id, recorder in sorted(self.per_shard_append.items())
            },
        }
