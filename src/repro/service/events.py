"""Order events and per-order receipts.

The gateway's unit of ingestion is one :class:`OrderEvent` — a task bound
for one city's stream.  Submitting an event returns an :class:`OrderReceipt`
immediately; the receipt is *completed* (stamped with a completion time)
once the shard worker that owns the order has consumed the batch carrying
it and dispatched every window the watermark closed.  The receipt's
:attr:`~OrderReceipt.latency_s` is therefore the honest end-to-end dispatch
latency: queue wait + batching wait + routing + worker append, measured on
one monotonic clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..market.task import Task


@dataclass(frozen=True, slots=True)
class OrderEvent:
    """One order bound for one city's stream, as the gateway queue sees it."""

    city: str
    task: Task
    #: The receipt handed back to the submitter at enqueue time; the ingest
    #: loop completes it when the order's batch finishes dispatching.
    receipt: "OrderReceipt"


@dataclass(slots=True)
class OrderReceipt:
    """The submitter's handle on one ingested order.

    ``submitted_s`` is stamped (``time.perf_counter``) when the order enters
    the gateway queue; ``completed_s`` when its batch's last in-flight worker
    append resolves.  ``completed_s is None`` means the order is still queued,
    batching, or in flight — or was dropped by a teardown before dispatch.
    """

    city: str
    task_id: str
    submitted_s: float
    completed_s: Optional[float] = field(default=None)

    @property
    def done(self) -> bool:
        return self.completed_s is not None

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end dispatch latency in seconds (``None`` while in flight)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.submitted_s
