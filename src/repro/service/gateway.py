"""The asyncio ingestion gateway over per-city streaming coordinators.

:class:`DispatchService` is the long-running front door of the dispatch
engine: orders enter one at a time on an in-process ``asyncio.Queue``, are
cut into publish-ordered batches per city by a
:class:`~repro.service.batcher.WindowBatcher`, and are shipped to that
city's :class:`~repro.distributed.coordinator.DistributedStreamSession` —
one coordinator + one persistent worker pool per city, all behind a single
gateway (multi-city tenancy).  Because ``append_batch`` returns its
in-flight :class:`~repro.distributed.coordinator.PendingAppend` handles, the
event loop overlaps its own work (ingesting the next window, serving
:meth:`DispatchService.health` probes) with the workers' Hungarian window
solves, and only *awaits* them at a backpressure barrier, an epoch rotation,
or the final merge.

Latency accounting
------------------

Every submitted order gets an :class:`~repro.service.events.OrderReceipt`
stamped at enqueue.  When the batch carrying the order is shipped, a
:class:`_BatchTracker` subscribes to the batch's pending appends; the moment
the last one resolves, every receipt in the batch is stamped complete.  The
recorded end-to-end dispatch latency is therefore queue wait + batching wait
+ routing + worker append — the number an operator would measure from the
outside.

Backpressure
------------

After each ship the gateway reads the session's per-shard window-queue
depths (:meth:`DistributedStreamSession.pending_counts`); when the deepest
shard reaches ``backpressure_depth`` the gateway stops ingesting and awaits
the in-flight appends (:meth:`DistributedStreamSession.wait_pending`)
before accepting more work.  Under the serial policy appends complete
inline, so the barrier never triggers.

Parity contract 15 (service == replay)
--------------------------------------

With ``record_batches=True`` (the default) the gateway keeps every shipped
batch, per city per epoch.  :func:`replay_ingested` replays one epoch's
recorded batches through a fresh **serial** coordinator over the same
partition; the result is bit-identical to the service's own merged outcome
for that epoch.  The service may only ever add scheduling around the engine
— never a different dispatch decision.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import trace as obs_trace
from ..obs.registry import MetricsRegistry, bind_city_metrics, bind_transport_stats
from ..distributed import (
    DistributedCoordinator,
    DistributedStreamResult,
    DistributedStreamSession,
    PendingAppend,
    SpatialPartitioner,
)
from ..geo import PORTO, BoundingBox
from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task
from ..online.batch import BatchConfig
from .batcher import WindowBatcher
from .events import OrderEvent, OrderReceipt
from .metrics import CityMetrics

logger = logging.getLogger("repro.service.gateway")


class _BatchTracker:
    """Completion barrier for one shipped batch's pending appends.

    Callbacks fire on executor threads, so the countdown is lock-guarded;
    when the last append resolves cleanly the tracker stamps every receipt
    in the batch and records their dispatch latencies.  A failed append
    leaves the receipts incomplete — the error itself surfaces through the
    session on the next append/finish, not here.
    """

    __slots__ = ("_receipts", "_metrics", "_ship_s", "_remaining", "_failed", "_lock")

    def __init__(
        self,
        receipts: Sequence[OrderReceipt],
        metrics: CityMetrics,
        ship_s: float,
        remaining: int,
    ) -> None:
        self._receipts = receipts
        self._metrics = metrics
        self._ship_s = ship_s
        self._remaining = remaining
        self._failed = False
        self._lock = threading.Lock()
        if remaining == 0:
            # Batch routed entirely to driverless shards (or serial policy
            # with nothing to ship): dispatched the moment it was cut.
            self._complete(time.perf_counter())

    def resolve(self, pending: PendingAppend) -> None:
        """Mark one pending append resolved (call when its future is done)."""
        now = time.perf_counter()
        exc: Optional[BaseException]
        try:
            exc = pending.future.exception()
        except BaseException as cancelled:  # cancelled futures on teardown
            exc = cancelled
        if exc is None:
            self._metrics.record_append(pending.shard_id, now - self._ship_s)
        with self._lock:
            if exc is not None:
                self._failed = True
            self._remaining -= 1
            if self._remaining == 0 and not self._failed:
                self._complete(now)

    def _complete(self, now: float) -> None:
        for receipt in self._receipts:
            receipt.completed_s = now
            self._metrics.dispatch.record(now - receipt.submitted_s)


@dataclass
class CityRuntime:
    """One tenant city: its coordinator, live stream, batcher and metrics."""

    name: str
    coordinator: DistributedCoordinator
    drivers: Tuple[Driver, ...]
    cost_model: MarketCostModel
    config: BatchConfig
    region: BoundingBox
    rows: int
    cols: int
    max_batch: Optional[int]
    session: DistributedStreamSession
    batcher: WindowBatcher
    metrics: CityMetrics = field(default_factory=CityMetrics)
    #: Shipped batches, per epoch — the parity contract's replay input.
    recorded: List[List[Tuple[Task, ...]]] = field(default_factory=list)
    #: Finished epochs' merged results, in rotation order.
    results: List[DistributedStreamResult] = field(default_factory=list)
    #: Receipts of orders accumulated in the batcher's open batch.
    open_receipts: List[OrderReceipt] = field(default_factory=list)

    def fresh_epoch(self) -> None:
        self.session = self.coordinator.open_stream(
            self.drivers, self.cost_model, config=self.config
        )
        self.batcher = WindowBatcher(self.config.window_s, self.max_batch)
        self.recorded.append([])


class DispatchService:
    """Asyncio ingestion gateway over per-city streaming coordinators.

    Use as an async context manager::

        async with DispatchService() as service:
            service.register_city("porto", drivers)
            for task in orders:
                receipt = await service.submit("porto", task)
            results = await service.finish()

    ``__aexit__`` tears everything down even on error: open streams are
    closed (worker-side sessions discarded) and every city's pool is shut
    down with queued work cancelled — the service can never leak sessions
    or orphan worker processes.
    """

    def __init__(
        self,
        *,
        backpressure_depth: int = 8,
        queue_size: int = 10_000,
        record_batches: bool = True,
    ) -> None:
        if backpressure_depth < 1:
            raise ValueError("backpressure_depth must be >= 1")
        self.backpressure_depth = backpressure_depth
        self.record_batches = record_batches
        self._queue: asyncio.Queue[OrderEvent] = asyncio.Queue(maxsize=queue_size)
        self._cities: Dict[str, CityRuntime] = {}
        self._ingest_task: Optional[asyncio.Task] = None
        self._failure: Optional[BaseException] = None
        self._shutdown = False

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def register_city(
        self,
        name: str,
        drivers: Sequence[Driver],
        *,
        cost_model: Optional[MarketCostModel] = None,
        region: BoundingBox = PORTO,
        rows: int = 2,
        cols: int = 2,
        executor: str = "serial",
        workers: Optional[int] = None,
        config: Optional[BatchConfig] = None,
        max_batch: Optional[int] = None,
        transport: str = "pickle",
        backend: Optional[str] = None,
    ) -> CityRuntime:
        """Add a tenant: its own coordinator + persistent pool + stream.

        ``transport``/``backend`` configure the city's pool wire format and
        compute backend (see :class:`~repro.distributed.DistributedCoordinator`);
        the service outcome is transport- and backend-independent (parity
        contract 16), only the wire metrics in :meth:`health` change.
        """
        if name in self._cities:
            raise ValueError(f"city {name!r} is already registered")
        if self._shutdown:
            raise RuntimeError("service is shut down")
        coordinator = DistributedCoordinator(
            SpatialPartitioner(region, rows, cols),
            executor=executor,
            max_workers=workers,
            transport=transport,
            backend=backend,
        )
        chosen = config or BatchConfig()
        runtime = CityRuntime(
            name=name,
            coordinator=coordinator,
            drivers=tuple(drivers),
            cost_model=cost_model or MarketCostModel(),
            config=chosen,
            region=region,
            rows=rows,
            cols=cols,
            max_batch=max_batch,
            session=None,  # type: ignore[arg-type]  # set by fresh_epoch below
            batcher=None,  # type: ignore[arg-type]
        )
        runtime.fresh_epoch()
        self._cities[name] = runtime
        logger.info(
            "registered city %s: %d drivers, %dx%d grid, %s executor",
            name, len(runtime.drivers), rows, cols, executor,
        )
        return runtime

    def _city(self, name: str) -> CityRuntime:
        try:
            return self._cities[name]
        except KeyError:
            raise KeyError(f"unknown city {name!r}; registered: {sorted(self._cities)}")

    def runtimes(self) -> Dict[str, CityRuntime]:
        """The per-city runtimes (for replay verification and reporting)."""
        return dict(self._cities)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the ingest loop (requires a running event loop; idempotent)."""
        if self._shutdown:
            raise RuntimeError("service is shut down")
        if self._ingest_task is None or self._ingest_task.done():
            self._ingest_task = asyncio.get_running_loop().create_task(
                self._ingest_loop(), name="dispatch-service-ingest"
            )

    async def __aenter__(self) -> "DispatchService":
        self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()

    def shutdown(self) -> None:
        """Synchronous teardown: close streams, shut pools down (idempotent).

        Deliberately contains **no** awaits, so it runs to completion even
        inside a cancelled task's ``__aexit__`` (Ctrl-C path): worker-side
        sessions are discarded and every pool's queued work is cancelled
        before the first suspension point could be interrupted.
        """
        if self._shutdown:
            return
        self._shutdown = True
        if self._ingest_task is not None:
            self._ingest_task.cancel()
        for runtime in self._cities.values():
            try:
                runtime.session.close()
            except BaseException:
                pass
            try:
                runtime.coordinator.close()
            except BaseException:
                pass

    async def aclose(self) -> None:
        """Tear the service down and reap the ingest task."""
        self.shutdown()
        task, self._ingest_task = self._ingest_task, None
        if task is not None:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    async def submit(self, city: str, task: Task) -> OrderReceipt:
        """Enqueue one order event; returns its receipt immediately.

        Awaits only when the ingestion queue itself is full (input-side
        backpressure, distinct from the shard window-queue barrier).
        """
        self._check_usable()
        self._city(city)  # fail fast on unknown tenants
        receipt = OrderReceipt(
            city=city, task_id=task.task_id, submitted_s=time.perf_counter()
        )
        await self._queue.put(OrderEvent(city=city, task=task, receipt=receipt))
        return receipt

    async def _ingest_loop(self) -> None:
        while True:
            event = await self._queue.get()
            try:
                if self._failure is None:
                    await self._ingest(event)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                # Poison the service but keep consuming (and discarding) so
                # queue.join() in finish()/rotate() can still complete and
                # surface the failure to the caller.
                self._failure = exc
            finally:
                self._queue.task_done()

    async def _ingest(self, event: OrderEvent) -> None:
        runtime = self._city(event.city)
        runtime.open_receipts.append(event.receipt)
        batch = runtime.batcher.push(event.task)
        runtime.metrics.orders += 1
        if batch is not None:
            await self._ship(runtime, batch)

    async def _ship(self, runtime: CityRuntime, batch: Tuple[Task, ...]) -> None:
        receipts = runtime.open_receipts[: len(batch)]
        del runtime.open_receipts[: len(batch)]
        ship_s = time.perf_counter()
        with obs_trace.span("gateway:ship", city=runtime.name, batch_size=len(batch)):
            shipped = runtime.session.append_batch(batch)
        runtime.metrics.batches += 1
        if self.record_batches:
            runtime.recorded[-1].append(batch)
        tracker = _BatchTracker(
            receipts, runtime.metrics, ship_s, remaining=len(shipped)
        )
        for pending in shipped:
            raw = getattr(pending.future, "raw", None)
            if raw is not None and not raw.done():
                raw.add_done_callback(
                    lambda _f, p=pending: tracker.resolve(p)
                )
            else:
                tracker.resolve(pending)
        depths = runtime.session.pending_counts()
        if depths and max(depths.values()) >= self.backpressure_depth:
            runtime.metrics.backpressure_events += 1
            logger.debug(
                "backpressure barrier for %s: deepest shard queue %d >= %d",
                runtime.name, max(depths.values()), self.backpressure_depth,
            )
            await runtime.session.wait_pending()

    async def _drain(self) -> None:
        """Wait until every enqueued event has been consumed, then surface
        any ingestion failure."""
        await self._queue.join()
        if self._failure is not None:
            raise RuntimeError("dispatch service ingestion failed") from self._failure

    def _check_usable(self) -> None:
        if self._shutdown:
            raise RuntimeError("service is shut down")
        if self._failure is not None:
            raise RuntimeError("dispatch service ingestion failed") from self._failure
        if self._ingest_task is None:
            raise RuntimeError("service not started — use 'async with' or start()")

    # ------------------------------------------------------------------
    # epochs and the final merge
    # ------------------------------------------------------------------
    async def _close_epoch(self, runtime: CityRuntime) -> DistributedStreamResult:
        """Flush, drain the shard queues and merge the city's open epoch."""
        final = runtime.batcher.flush()
        if final is not None:
            await self._ship(runtime, final)
        await runtime.session.wait_pending()
        # ``finish`` blocks on the workers' final windows; run it off-loop so
        # health probes (and other cities' ingestion) stay responsive.
        result = await asyncio.get_running_loop().run_in_executor(
            None, runtime.session.finish
        )
        runtime.results.append(result)
        runtime.metrics.epochs += 1
        runtime.metrics.served += result.report.served_count
        return result

    async def rotate(self, city: str) -> DistributedStreamResult:
        """Close the city's current epoch and open a fresh stream on the same
        warm pool — the day-rollover operation.  Returns the epoch's merged
        result."""
        self._check_usable()
        await self._drain()
        runtime = self._city(city)
        result = await self._close_epoch(runtime)
        runtime.fresh_epoch()
        return result

    async def finish(self) -> Dict[str, DistributedStreamResult]:
        """Drain the queue, close every city's open epoch and return the
        final per-city merged results.  The service stays up (health keeps
        answering) until ``aclose``/``__aexit__``."""
        self._check_usable()
        await self._drain()
        results: Dict[str, DistributedStreamResult] = {}
        for name, runtime in self._cities.items():
            results[name] = await self._close_epoch(runtime)
        return results

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """A :class:`~repro.obs.registry.MetricsRegistry` whose collectors
        read this service's live counters at scrape time.

        Every registered city's :class:`CityMetrics` is bound under a
        ``city`` label, and each city pool's transport counters under
        ``city`` + ``transport`` labels; plus service-level gauges for the
        ingestion queue depth and tenant count.  Re-call after registering
        new cities — bindings are per-city.
        """
        registry = MetricsRegistry()
        queue_gauge = registry.gauge(
            "repro_ingest_queue_depth", "Orders waiting in the ingestion queue."
        )
        city_gauge = registry.gauge(
            "repro_cities", "Tenant cities registered on the gateway."
        )

        def _service_collector(_reg: MetricsRegistry) -> None:
            queue_gauge.set(self._queue.qsize())
            city_gauge.set(len(self._cities))

        registry.register_collector(_service_collector)
        for name, runtime in self._cities.items():
            bind_city_metrics(registry, runtime.metrics, city=name)
            pool = runtime.coordinator.current_pool
            if pool is not None:
                bind_transport_stats(
                    registry, pool.stats, city=name, transport=pool.stats.transport
                )
        return registry

    def health(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot: queue depth, per-city counters,
        per-shard window-queue depths and latency percentiles."""
        if self._failure is not None:
            status = "failed"
        elif self._shutdown:
            status = "shutdown"
        else:
            status = "ok"
        cities: Dict[str, object] = {}
        for name, runtime in self._cities.items():
            block = runtime.metrics.snapshot()
            depths = (
                {} if runtime.session.closed else runtime.session.pending_counts()
            )
            block["shard_queue_depth"] = {str(k): v for k, v in sorted(depths.items())}
            block["open_orders"] = runtime.batcher.pending
            # Wire-transport counters of the city's pool: bytes over the
            # executor pipes (per shard too), segment reuse, fallbacks.
            pool = runtime.coordinator.current_pool
            if pool is not None:
                transport = pool.stats.snapshot()
                transport["shard_bytes"] = {
                    str(k): v for k, v in transport["shard_bytes"].items()
                }
                block["transport"] = transport
            cities[name] = block
        return {
            "status": status,
            "ingest_queue_depth": self._queue.qsize(),
            "cities": cities,
        }


def replay_ingested(
    runtime: CityRuntime, epoch: int = 0
) -> DistributedStreamResult:
    """Parity contract 15's reference: replay one epoch's recorded batches
    through a fresh **serial** coordinator over the same partition.

    The replayed merged outcome must be bit-identical to the service's own
    result for that epoch (``runtime.results[epoch]``) — the service adds
    queueing, batching and backpressure around the engine, never a different
    dispatch decision.  Requires the service to run with
    ``record_batches=True`` (the default).
    """
    batches = runtime.recorded[epoch]
    tasks = tuple(task for batch in batches for task in batch)
    instance = MarketInstance(
        drivers=runtime.drivers, tasks=tasks, cost_model=runtime.cost_model
    )
    with DistributedCoordinator(
        SpatialPartitioner(runtime.region, runtime.rows, runtime.cols),
        executor="serial",
    ) as coordinator:
        return coordinator.solve_stream(
            instance, list(batches), config=runtime.config
        )
