"""Live dispatch service over the streaming coordinator.

The engine below this package is batch-shaped: open a stream, append
publish-ordered batches, merge.  A *service* is order-shaped — rides arrive
one at a time, continuously, for many cities at once, and the operator wants
latency numbers and a health endpoint, not a merged solution object.  This
package is that shape: an asyncio ingestion gateway
(:class:`~repro.service.gateway.DispatchService`) that accepts single order
events on an in-process queue, cuts them into publish-ordered batches per
city (:class:`~repro.service.batcher.WindowBatcher`), ships each batch to
that city's :class:`~repro.distributed.coordinator.DistributedStreamSession`
on its own persistent worker pool, and tracks per-order end-to-end dispatch
latency (:mod:`~repro.service.metrics`) while applying backpressure when a
shard's window queue runs deep.

**Parity contract 15 (service == replay):** the gateway records every batch
it ships, and replaying those recorded batches through a fresh serial
``DistributedCoordinator.solve_stream`` reproduces the service's merged
outcome bit-for-bit (:func:`~repro.service.gateway.replay_ingested`).  The
service adds scheduling, queueing and backpressure *around* the engine —
never a different dispatch decision.

:mod:`~repro.service.lifecycle` drives soaks: multi-city, multi-epoch
synthetic order floods (``repro serve`` and
``benchmarks/bench_service_soak.py`` are thin wrappers around it).
"""

from .batcher import WindowBatcher
from .events import OrderEvent, OrderReceipt
from .gateway import CityRuntime, DispatchService, replay_ingested
from .lifecycle import SoakConfig, SoakReport, run_soak, synthesize_city_orders
from .metrics import CityMetrics, LatencyRecorder

__all__ = [
    "CityMetrics",
    "CityRuntime",
    "DispatchService",
    "LatencyRecorder",
    "OrderEvent",
    "OrderReceipt",
    "SoakConfig",
    "SoakReport",
    "WindowBatcher",
    "replay_ingested",
    "run_soak",
    "synthesize_city_orders",
]
