"""Soak harness: multi-city, multi-epoch synthetic order floods.

The service's scaling story is *epochal*: the task network a streaming
instance maintains grows with every order, so a single endless stream would
cost O(M²) over its life.  Real dispatch days roll over — the soak models
that with epochs: each city's stream is rotated (finished and reopened on
the same warm pool) every ``orders_per_epoch`` orders, which bounds the
per-stream task count while the pools, coordinators and the gateway itself
stay up for the whole soak.  ~1M orders therefore means *many small merges*
on *one* long-running service — exactly the regime the ISSUE's benchmark
(`benchmarks/bench_service_soak.py`, ``BENCH_service_soak.json``) measures.

Order synthesis is NumPy-vectorised (uniform sources/destinations in the
city box, publish times sorted over the epoch span, deadline and price
columns derived in bulk) so generating a million orders costs seconds, not
minutes — the soak's wall clock must measure the service, not the generator.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributed import DistributedStreamResult
from ..geo import PORTO, BoundingBox, GeoPoint
from ..market.driver import Driver
from ..market.task import Task
from ..online.batch import BatchConfig
from .events import OrderReceipt
from .gateway import DispatchService, replay_ingested
from .metrics import LatencyRecorder


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run (the benchmark and ``repro serve`` build these)."""

    #: Total orders across all cities and epochs.
    orders: int = 100_000
    cities: int = 2
    epochs: int = 4
    drivers_per_city: int = 24
    #: Dispatch-window length fed to both the batcher and the streams.
    window_s: float = 120.0
    #: Wall-clock span the orders of one epoch are published over.
    epoch_span_s: float = 14_400.0
    rows: int = 2
    cols: int = 2
    executor: str = "serial"
    workers: Optional[int] = None
    #: Pool wire format per city ("pickle" or "shm"; shm engages on the
    #: process executor) and optional compute backend — the soak outcome is
    #: transport/backend-independent (parity contract 16).
    transport: str = "pickle"
    backend: Optional[str] = None
    backpressure_depth: int = 8
    max_batch: Optional[int] = 512
    seed: int = 2017
    region: BoundingBox = PORTO
    #: Epochs (per city) to verify against the offline replay: ``None``
    #: checks every epoch, an int checks that many from the front.  The full
    #: soak samples to keep parity from doubling its wall clock; the smoke
    #: checks everything.
    parity_epochs: Optional[int] = 1
    #: When set, serve Prometheus ``/metrics`` + JSON ``/health`` on
    #: ``127.0.0.1:<port>`` for the duration of the soak (0 = ephemeral).
    metrics_port: Optional[int] = None

    @property
    def orders_per_epoch(self) -> int:
        return max(1, self.orders // (self.cities * self.epochs))


@dataclass
class SoakReport:
    """Everything the soak measured, JSON-ready via :meth:`to_payload`."""

    config: SoakConfig
    orders_submitted: int = 0
    orders_served: int = 0
    wall_clock_s: float = 0.0
    generate_s: float = 0.0
    dispatch: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: city -> epoch results, in rotation order.
    results: Dict[str, List[DistributedStreamResult]] = field(default_factory=dict)
    health: Dict[str, object] = field(default_factory=dict)
    parity_checked: int = 0
    parity_ok: bool = True

    @property
    def serve_rate(self) -> float:
        return self.orders_served / self.orders_submitted if self.orders_submitted else 0.0

    @property
    def orders_per_second(self) -> float:
        return self.orders_submitted / self.wall_clock_s if self.wall_clock_s else 0.0

    def to_payload(self) -> Dict[str, object]:
        cfg = self.config
        return {
            "orders": self.orders_submitted,
            "cities": cfg.cities,
            "epochs": cfg.epochs,
            "orders_per_epoch": cfg.orders_per_epoch,
            "executor": cfg.executor,
            "workers": cfg.workers,
            "grid": f"{cfg.rows}x{cfg.cols}",
            "window_s": cfg.window_s,
            "max_batch": cfg.max_batch,
            "backpressure_depth": cfg.backpressure_depth,
            "seed": cfg.seed,
            "wall_clock_s": round(self.wall_clock_s, 3),
            "generate_s": round(self.generate_s, 3),
            "orders_per_second": round(self.orders_per_second, 1),
            "serve_rate": round(self.serve_rate, 4),
            "dispatch_latency": self.dispatch.summary(),
            "parity_checked_epochs": self.parity_checked,
            "parity_ok": self.parity_ok,
            "health": self.health,
        }


def _city_fleet(
    city: str, count: int, box: BoundingBox, span_s: float, rng: np.random.Generator
) -> Tuple[Driver, ...]:
    """A synthetic all-day fleet spread uniformly over the city box."""
    lats = rng.uniform(box.south, box.north, size=(count, 2))
    lons = rng.uniform(box.west, box.east, size=(count, 2))
    return tuple(
        Driver(
            driver_id=f"{city}-d{i}",
            source=GeoPoint(float(lats[i, 0]), float(lons[i, 0])),
            destination=GeoPoint(float(lats[i, 1]), float(lons[i, 1])),
            start_ts=0.0,
            end_ts=span_s + 7200.0,
        )
        for i in range(count)
    )


def _epoch_orders(
    city: str,
    epoch: int,
    count: int,
    box: BoundingBox,
    span_s: float,
    rng: np.random.Generator,
) -> List[Task]:
    """One epoch's publish-ordered synthetic orders, built column-wise."""
    publish = np.sort(rng.uniform(0.0, span_s, size=count))
    src_lat = rng.uniform(box.south, box.north, size=count)
    src_lon = rng.uniform(box.west, box.east, size=count)
    dst_lat = rng.uniform(box.south, box.north, size=count)
    dst_lon = rng.uniform(box.west, box.east, size=count)
    start_slack = rng.uniform(300.0, 900.0, size=count)
    ride_span = rng.uniform(600.0, 1800.0, size=count)
    price = rng.uniform(4.0, 20.0, size=count)
    return [
        Task(
            task_id=f"{city}-e{epoch}-t{i}",
            publish_ts=float(publish[i]),
            source=GeoPoint(float(src_lat[i]), float(src_lon[i])),
            destination=GeoPoint(float(dst_lat[i]), float(dst_lon[i])),
            start_deadline_ts=float(publish[i] + start_slack[i]),
            end_deadline_ts=float(publish[i] + start_slack[i] + ride_span[i]),
            price=float(price[i]),
        )
        for i in range(count)
    ]


def synthesize_city_orders(
    config: SoakConfig,
) -> Tuple[Dict[str, Tuple[Driver, ...]], Dict[str, List[List[Task]]]]:
    """All fleets and all epochs of orders for a soak, deterministically.

    Returns ``(fleets, orders)`` with ``orders[city][epoch]`` a
    publish-ordered list — the whole synthesis is derived from
    ``config.seed``, so a soak is bit-reproducible end to end.
    """
    rng = np.random.default_rng(config.seed)
    fleets: Dict[str, Tuple[Driver, ...]] = {}
    orders: Dict[str, List[List[Task]]] = {}
    for c in range(config.cities):
        city = f"city{c}"
        fleets[city] = _city_fleet(
            city, config.drivers_per_city, config.region, config.epoch_span_s, rng
        )
        orders[city] = [
            _epoch_orders(
                city, epoch, config.orders_per_epoch, config.region,
                config.epoch_span_s, rng,
            )
            for epoch in range(config.epochs)
        ]
    return fleets, orders


async def _soak(
    config: SoakConfig, service: DispatchService, on_ready=None
) -> SoakReport:
    report = SoakReport(config=config)
    gen_start = time.perf_counter()
    fleets, orders = synthesize_city_orders(config)
    report.generate_s = time.perf_counter() - gen_start

    for city, fleet in fleets.items():
        service.register_city(
            city,
            fleet,
            region=config.region,
            rows=config.rows,
            cols=config.cols,
            executor=config.executor,
            workers=config.workers,
            config=BatchConfig(window_s=config.window_s),
            max_batch=config.max_batch,
            transport=config.transport,
            backend=config.backend,
        )
    if on_ready is not None:
        # ``repro serve`` announces readiness (and its worker pids) here —
        # the SIGINT regression test keys on that marker.
        on_ready(service)

    receipts: List[OrderReceipt] = []
    soak_start = time.perf_counter()
    for epoch in range(config.epochs):
        # Interleave cities within the epoch, exercising multi-tenancy on
        # every scheduling boundary rather than city after city.
        for city in fleets:
            for task in orders[city][epoch]:
                receipts.append(await service.submit(city, task))
            report.orders_submitted += len(orders[city][epoch])
        if epoch < config.epochs - 1:
            for city in fleets:
                await service.rotate(city)
    finals = await service.finish()
    report.wall_clock_s = time.perf_counter() - soak_start
    report.health = service.health()

    for city, runtime in service.runtimes().items():
        report.results[city] = list(runtime.results)
        report.orders_served += sum(
            r.report.served_count for r in runtime.results
        )
        check = (
            len(runtime.results)
            if config.parity_epochs is None
            else min(config.parity_epochs, len(runtime.results))
        )
        for epoch in range(check):
            replayed = replay_ingested(runtime, epoch)
            served = runtime.results[epoch]
            report.parity_checked += 1
            if (
                served.solution.assignment() != replayed.solution.assignment()
                or served.rejected_tasks != replayed.rejected_tasks
                or [p.profit for p in served.solution.plans]
                != [p.profit for p in replayed.solution.plans]
            ):
                report.parity_ok = False
    for receipt in receipts:
        if receipt.latency_s is not None:
            report.dispatch.record(receipt.latency_s)
    del finals  # per-city final results also live in report.results
    return report


async def _run_soak_async(config: SoakConfig, on_ready=None) -> SoakReport:
    async with DispatchService(
        backpressure_depth=config.backpressure_depth
    ) as service:
        server = None
        if config.metrics_port is not None:
            from ..obs import start_http_server

            # Cities register after the server starts, so rebuild the
            # registry whenever the tenant set grows (scrapes are rare).
            cache: Dict[str, object] = {}

            def registry_fn():
                if cache.get("cities") != len(service.runtimes()):
                    cache["registry"] = service.metrics_registry()
                    cache["cities"] = len(service.runtimes())
                return cache["registry"]

            server = await start_http_server(
                registry_fn, health_fn=service.health, port=config.metrics_port
            )
        try:
            return await _soak(config, service, on_ready)
        finally:
            if server is not None:
                server.close()
                await server.wait_closed()


def run_soak(config: SoakConfig, on_ready=None) -> SoakReport:
    """Run one soak start to finish (creates and owns the event loop).

    ``on_ready(service)`` is called once every city is registered and the
    worker pools are warm — before the first order is submitted.  Teardown
    is unconditional: the service's ``__aexit__`` closes every stream and
    pool even when the soak is interrupted mid-flood.
    """
    return asyncio.run(_run_soak_async(config, on_ready))
