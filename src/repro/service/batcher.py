"""Publish-ordered window batching for the ingestion gateway.

The streaming engine consumes *batches*; the gateway receives *orders*.
:class:`WindowBatcher` bridges the two: it accumulates orders and cuts a
batch whenever the order stream crosses a dispatch-window boundary — the
same ``(publish_ts - first_publish) // window_s`` slotting rule the batched
simulator's watermark uses (:func:`repro.online.batch._publish_slot`), so a
cut batch can never split a window *behind* the watermark.

Correctness does **not** depend on the batcher reproducing the engine's
window boundaries exactly: ``BatchedSimulator.stream_feed`` tolerates any
publish-ordered batch boundaries (a window only dispatches once a later
window's order — or the end of the stream — proves it complete).  That
freedom is what makes the ``max_batch`` cut sound: a flood of same-window
orders can be shipped in several slices without changing a single dispatch
decision.  What the batcher *must* enforce is publish order itself — the
engine keeps a per-task publish-timestamp watermark across batches, and a
slice boundary turns within-window jitter into a cross-batch regression —
so an order publishing before the last accepted one is rejected with
``ValueError`` rather than silently corrupting the watermark.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..market.task import Task
from ..online.batch import _publish_slot


class WindowBatcher:
    """Accumulate publish-ordered orders; emit batches at window boundaries.

    Parameters
    ----------
    window_s:
        Dispatch-window length — must match the stream's ``BatchConfig``
        so batch cuts track the engine's watermark.
    max_batch:
        Optional cap on batch size: a window accumulating more than
        ``max_batch`` orders is shipped in slices (sound under the
        watermark semantics, see the module docstring).  ``None`` means
        a batch per window, whatever its size.
    """

    __slots__ = (
        "window_s", "max_batch", "_anchor", "_watermark", "_open_slot", "_open", "_pushed",
    )

    def __init__(self, window_s: float, max_batch: Optional[int] = None) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_s = float(window_s)
        self.max_batch = max_batch
        self._anchor: Optional[float] = None
        self._watermark = float("-inf")
        self._open_slot: Optional[int] = None
        self._open: List[Task] = []
        self._pushed = 0

    @property
    def pending(self) -> int:
        """Orders accumulated in the open (not yet shipped) batch."""
        return len(self._open)

    @property
    def pushed(self) -> int:
        """Orders accepted since construction (shipped + pending)."""
        return self._pushed

    def push(self, task: Task) -> Optional[Tuple[Task, ...]]:
        """Accept one order; return the batch it closed, if any.

        Returns the previous window's batch when ``task`` opens a later
        window, or a full slice when ``max_batch`` is hit — ``None`` while
        the open batch is still accumulating.  Raises ``ValueError`` on an
        order publishing before the last accepted one (publish order is the
        stream's one hard precondition; equal timestamps are fine).
        """
        if task.publish_ts < self._watermark:
            raise ValueError(
                f"order {task.task_id!r} violates publish order: it publishes "
                f"at {task.publish_ts} behind the watermark {self._watermark}"
            )
        self._watermark = task.publish_ts
        if self._anchor is None:
            self._anchor = task.publish_ts
        slot = _publish_slot(task.publish_ts, self._anchor, self.window_s)
        closed: Optional[Tuple[Task, ...]] = None
        if self._open_slot is None:
            self._open_slot = slot
        elif slot > self._open_slot:
            closed = self.flush()
            self._open_slot = slot
        self._open.append(task)
        self._pushed += 1
        if closed is None and self.max_batch is not None and len(self._open) >= self.max_batch:
            closed = self.flush()
            self._open_slot = slot  # same window stays open for the next slice
        return closed

    def flush(self) -> Optional[Tuple[Task, ...]]:
        """Cut and return the open batch (``None`` when nothing is pending)."""
        if not self._open:
            return None
        batch = tuple(self._open)
        self._open = []
        return batch
