"""Online dispatch rules.

Both of the paper's online heuristics share the same skeleton (build the
candidate set for the arriving task, pick one candidate, lock the driver) and
differ only in the selection criterion:

* **Nearest driver** (Algorithm 3) — the candidate who can reach the pickup
  first, ties broken uniformly at random;
* **Maximum marginal value** (Algorithm 4) — the candidate with the largest
  marginal value ``delta_{n,m}`` (Eq. 14).

A uniformly random dispatcher is included as an extra baseline for ablations.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..market.task import Task
from .state import Candidate


class Dispatcher(abc.ABC):
    """Strategy interface: pick one candidate (or reject the task)."""

    #: Human-readable name used in reports and benchmark output.
    name: str = "dispatcher"

    @abc.abstractmethod
    def select(self, task: Task, candidates: Sequence[Candidate]) -> Optional[Candidate]:
        """Choose the driver to serve ``task``; ``None`` rejects the task."""


@dataclass
class NearestDispatcher(Dispatcher):
    """Algorithm 3 — dispatch to the driver who arrives at the pickup first.

    Ties (equal arrival times) are broken uniformly at random, as the paper
    specifies ("if multiple, choose a random one").
    """

    seed: int = 0
    name: str = field(default="nearest", init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, task: Task, candidates: Sequence[Candidate]) -> Optional[Candidate]:
        if not candidates:
            return None
        best_arrival = min(c.arrival_ts for c in candidates)
        fastest = [c for c in candidates if c.arrival_ts <= best_arrival + 1e-9]
        return self._rng.choice(fastest)


@dataclass
class MaxMarginDispatcher(Dispatcher):
    """Algorithm 4 — dispatch to the driver with the largest marginal value.

    ``require_positive_margin`` (default ``True``) rejects the task when even
    the best candidate would lose money on it; this keeps every driver's
    profit non-negative, matching the individual-rationality constraint (5b)
    of the offline model.  Set it to ``False`` for the literal Algorithm 4,
    which always dispatches to the arg-max candidate.
    """

    require_positive_margin: bool = True
    name: str = field(default="maxMargin", init=False)

    def select(self, task: Task, candidates: Sequence[Candidate]) -> Optional[Candidate]:
        if not candidates:
            return None
        best = max(candidates, key=lambda c: c.marginal_value)
        if self.require_positive_margin and best.marginal_value <= 0.0:
            return None
        return best


@dataclass
class RandomDispatcher(Dispatcher):
    """Baseline: dispatch to a uniformly random feasible candidate."""

    seed: int = 0
    name: str = field(default="random", init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, task: Task, candidates: Sequence[Candidate]) -> Optional[Candidate]:
        if not candidates:
            return None
        return self._rng.choice(list(candidates))
