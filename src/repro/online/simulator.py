"""Event-driven online market simulator.

Implements the shared skeleton of Algorithms 3 and 4:

1. Tasks are processed one by one in order of their publish time ``t̄_m``
   (or, for the offline "sorted" variant the paper sketches at the end of
   Section V-B, in descending value order).
2. For the arriving task, the candidate set contains every driver — unlocked
   or still finishing a previous task — who can reach the pickup before the
   task's start deadline, serve the ride, and still make it to her own
   destination before the end of her shift.
3. The plugged-in :class:`~repro.online.dispatchers.Dispatcher` picks one
   candidate (Nearest / maxMargin / random); the driver is locked, her
   location and busy-until time advance to the task's drop-off, and her
   running profit is updated with the actual drive costs.
4. When the stream ends, every driver who worked settles her final leg home:
   she pays the drive from her last drop-off to her own destination and is
   credited her original source-to-destination cost, exactly as the objective
   of Eq. (4) prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..market.instance import MarketInstance
from ..market.task import Task
from .candidates import CandidateKernel
from .dispatchers import Dispatcher
from .outcome import OnlineDriverRecord, OnlineOutcome
from .repositioning import RepositioningPolicy, apply_repositioning
from .state import Candidate, DriverState


class TaskOrdering(enum.Enum):
    """The order in which the simulator feeds tasks to the dispatcher."""

    #: Online setting: tasks arrive by publish time (Algorithms 3 and 4).
    ARRIVAL = "arrival"
    #: Offline variant: highest-price tasks first (Section V-B's remark that
    #: "it will be more efficient to deal with the tasks which have higher
    #: values firstly" when the whole day is known in advance).
    VALUE = "value"


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of the online simulator."""

    ordering: TaskOrdering = TaskOrdering.ARRIVAL
    #: Reject tasks whose price is below the customer's WTP?  Tasks in this
    #: library are constructed publishable, so the default keeps every task.
    drop_unpublishable: bool = True
    #: When ``True`` (default) a driver who reaches the pickup early waits for
    #: the task's recorded start time — in trace replay the rider is simply
    #: not there yet.  When ``False`` the ride starts the moment the driver
    #: arrives (the paper's "task m may start earlier than t̄⁻_m" reading),
    #: which lets dense markets serve noticeably more tasks than the
    #: deadline-based offline model admits.
    wait_for_pickup_deadline: bool = True
    #: When ``True`` (default) the ride occupies the driver for the task's
    #: recorded duration (its pickup-to-drop-off window), which is the
    #: trace-replay semantics and keeps every online schedule realisable in
    #: the offline model.  When ``False`` the shorter distance/speed estimate
    #: is used and drivers may free up before the drop-off deadline.
    use_recorded_duration: bool = True
    #: Use the vectorised candidate kernel (``False`` falls back to the
    #: scalar reference loop; candidate sets are identical either way).
    use_vectorized_kernel: bool = True
    #: Prefilter candidates with a spatial grid index over driver locations
    #: (a strict superset query — never changes the outcome, only the cost).
    use_spatial_index: bool = True


class OnlineSimulator:
    """Runs one dispatcher over one market instance."""

    def __init__(
        self,
        instance: MarketInstance,
        dispatcher: Dispatcher,
        config: SimulationConfig | None = None,
        repositioning: RepositioningPolicy | None = None,
    ) -> None:
        self.instance = instance
        self.dispatcher = dispatcher
        self.config = config or SimulationConfig()
        self.repositioning = repositioning
        self._cost_model = instance.cost_model
        self._kernel: Optional[CandidateKernel] = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> OnlineOutcome:
        """Simulate the full task stream and return the outcome."""
        states = {
            driver.driver_id: DriverState.fresh(driver) for driver in self.instance.drivers
        }
        kernel = CandidateKernel(
            self.instance,
            states.values(),
            wait_for_pickup_deadline=self.config.wait_for_pickup_deadline,
            use_recorded_duration=self.config.use_recorded_duration,
            vectorized=self.config.use_vectorized_kernel,
            spatial_index=self.config.use_spatial_index,
        )
        self._kernel = kernel
        rejected: List[int] = []

        for task_index, task in self._task_stream():
            now_ts = task.publish_ts
            for state in states.values():
                state.release_if_done(now_ts)
            if self.repositioning is not None:
                apply_repositioning(
                    self.repositioning,
                    states.values(),
                    now_ts,
                    self._cost_model.travel_model,
                    on_move=kernel.sync,
                )

            candidates = kernel.candidates_for(task_index, task, now_ts)
            choice = self.dispatcher.select(task, candidates)
            if choice is None:
                rejected.append(task_index)
                continue
            self._commit(choice, task_index, task)

        records = tuple(self._settle(state) for state in states.values())
        return OnlineOutcome(
            instance=self.instance,
            records=records,
            rejected_tasks=tuple(rejected),
            dispatcher_name=self.dispatcher.name,
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def _task_stream(self) -> List[Tuple[int, Task]]:
        indexed = list(enumerate(self.instance.tasks))
        if self.config.drop_unpublishable:
            indexed = [(i, t) for i, t in indexed if t.is_publishable]
        if self.config.ordering is TaskOrdering.ARRIVAL:
            indexed.sort(key=lambda pair: (pair[1].publish_ts, pair[0]))
        else:
            indexed.sort(key=lambda pair: (-pair[1].price, pair[1].publish_ts, pair[0]))
        return indexed

    def _commit(self, choice: Candidate, task_index: int, task: Task) -> None:
        network = self.instance.task_network
        service_cost = float(network.service_costs[task_index])
        profit_delta = task.price - service_cost - choice.approach_cost
        choice.state.assign(
            task_index=task_index,
            pickup_location=task.source,
            dropoff_location=task.destination,
            dropoff_ts=choice.dropoff_ts,
            profit_delta=profit_delta,
            arrival_ts=choice.arrival_ts,
        )
        self._kernel.sync(choice.state)

    def _settle(self, state: DriverState) -> OnlineDriverRecord:
        """Close a driver's books at the end of the stream (final leg home and
        the credit for the drive she would have made anyway)."""
        profit = state.running_profit
        if state.served:
            final_leg = self._cost_model.leg(state.location, state.driver.destination)
            direct_leg = self._cost_model.driver_direct_leg(
                state.driver.source, state.driver.destination
            )
            profit = profit - final_leg.cost + direct_leg.cost
        return OnlineDriverRecord(
            driver_id=state.driver.driver_id,
            task_indices=tuple(state.served),
            profit=profit,
            arrival_times=tuple(state.arrival_times),
        )


def run_online(
    instance: MarketInstance,
    dispatcher: Dispatcher,
    ordering: TaskOrdering = TaskOrdering.ARRIVAL,
) -> OnlineOutcome:
    """Convenience wrapper around :class:`OnlineSimulator`."""
    return OnlineSimulator(
        instance, dispatcher, SimulationConfig(ordering=ordering)
    ).run()
