"""Vectorised driver-candidate generation — the online dispatch hot path.

Both online simulators (the per-order :class:`~repro.online.simulator.OnlineSimulator`
implementing Algorithms 3-4 and the rolling-horizon
:class:`~repro.online.batch.BatchedSimulator`) repeatedly answer the same
question: *which drivers can feasibly serve this task, and at what marginal
value?*  The original implementation walked every driver in Python and
called the scalar distance estimator three times per (driver, task) pair —
an ``O(N x M)`` scalar-haversine loop that dominated wall-clock on every
benchmark.

:class:`CandidateKernel` replaces that loop with NumPy arithmetic over
persistent driver-state arrays:

* the approach legs (driver location -> task source), home legs (task
  destination -> driver destination) and current home legs (driver location
  -> driver destination) are computed with the estimator's batch kernels
  (:meth:`~repro.geo.distance.DistanceEstimator.cross_km` /
  :meth:`~repro.geo.distance.DistanceEstimator.pairwise_km`);
* every feasibility test of the scalar loop (pickup deadline, drop-off
  deadline, shift end) becomes a boolean mask with the *same* arithmetic and
  the same epsilons, so the surviving candidates and their marginal values
  match the scalar path to floating-point round-off;
* an optional :class:`~repro.geo.grid.GridIndex` over driver locations turns
  the per-task scan into a range query: only drivers within the task's
  travel-time reach are even considered.  The index answers *supersets*, so
  enabling it never changes the candidate set — it only skips drivers that
  could not pass the exact checks anyway.

The scalar reference loop is kept as :meth:`candidates_for_scalar`; the
equivalence tests in ``tests/online/test_candidate_kernel.py`` replay whole
simulations through both paths and assert identical outcomes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..backends import get_backend
from ..geo import GridIndex, bounding_box_of
from ..geo.batch import coord_array, metric_fn
from ..market.instance import MarketInstance
from ..market.task import Task
from .state import Candidate, DriverState

#: The spatial index is only engaged for service areas where the built-in
#: estimators' ``prune_radius_km`` margins are provably supersets: city-scale
#: boxes (diagonal below a few hundred km) away from the poles.  Larger or
#: polar instances silently fall back to the exhaustive (still vectorised)
#: scan, keeping the "index never changes the outcome" guarantee.
_MAX_INDEX_DIAGONAL_KM = 300.0
_MAX_INDEX_ABS_LAT_DEG = 70.0


class CandidateKernel:
    """Feasible-candidate search over a fleet of mutable driver states.

    Parameters
    ----------
    instance:
        The market being simulated.
    states:
        The simulator's driver states, in dispatch order.  The kernel keeps
        array mirrors of each state's position and free-at time; call
        :meth:`sync` whenever a simulator mutates a state (assignment or
        repositioning) so the mirrors stay current.
    wait_for_pickup_deadline / use_recorded_duration:
        Trace-replay semantics, identical to the simulator configs.
    vectorized:
        ``False`` routes every query through the scalar reference loop
        (useful for tests and for exotic estimators without batch kernels).
    spatial_index:
        Enable the :class:`~repro.geo.grid.GridIndex` prefilter.  Ignored
        when the estimator cannot bound straight-line distance
        (``prune_radius_km`` returning ``None``) or the fleet is too small
        for the index to pay off.
    """

    def __init__(
        self,
        instance: MarketInstance,
        states: Iterable[DriverState],
        *,
        wait_for_pickup_deadline: bool = True,
        use_recorded_duration: bool = True,
        vectorized: bool = True,
        spatial_index: bool = True,
        cell_km: float = 1.0,
        min_drivers_for_index: int = 24,
    ) -> None:
        self.instance = instance
        self.wait_for_pickup_deadline = wait_for_pickup_deadline
        self.use_recorded_duration = use_recorded_duration
        self.vectorized = vectorized
        self._cost_model = instance.cost_model
        travel_model = self._cost_model.travel_model
        self._estimator = travel_model.estimator
        self._speed_kmh = travel_model.speed_kmh
        self._cost_per_km = travel_model.cost_per_km
        # Time-indexed models expose per-window rates; every query resolves
        # the rates in effect at its ``now_ts``.  Plain models resolve to the
        # scalar snapshots above, keeping the historical arithmetic (and its
        # bit-for-bit outputs) untouched.
        self._rates_at = getattr(travel_model, "rates_at", None)
        self._max_speed_kmh = float(
            getattr(travel_model, "max_speed_kmh", travel_model.speed_kmh)
        )

        self._states: List[DriverState] = list(states)
        n = len(self._states)
        self._slot_by_driver: Dict[str, int] = {
            state.driver.driver_id: slot for slot, state in enumerate(self._states)
        }
        if len(self._slot_by_driver) != n:
            raise ValueError("driver ids must be unique")

        self._loc = np.empty((n, 2), dtype=float)
        self._free_at = np.empty(n, dtype=float)
        for slot, state in enumerate(self._states):
            self._loc[slot, 0] = state.location.lat
            self._loc[slot, 1] = state.location.lon
            self._free_at[slot] = state.free_at
        self._driver_start = np.array([s.driver.start_ts for s in self._states], dtype=float)
        self._driver_end = np.array([s.driver.end_ts for s in self._states], dtype=float)
        self._dest = coord_array([s.driver.destination for s in self._states])

        self._task_sources = coord_array([t.source for t in instance.tasks])
        self._task_destinations = coord_array([t.destination for t in instance.tasks])

        # Fast path: the built-in estimators name their raw batch kernel, so
        # the hot loop can keep radian arrays and skip the per-call degree
        # conversion; exotic estimators go through their (generic) batch API.
        metric = getattr(self._estimator, "batch_metric", None)
        self._metric_name = metric
        self._metric = metric_fn(metric) if metric is not None else None
        self._metric_scale = float(getattr(self._estimator, "circuity", 1.0))
        self._loc_rad = np.radians(self._loc)
        self._dest_rad = np.radians(self._dest)
        self._task_sources_rad = np.radians(self._task_sources)
        self._task_destinations_rad = np.radians(self._task_destinations)
        # Current-home distances (driver location -> own destination) change
        # only when a driver moves, so they are cached and refreshed per-slot
        # in :meth:`sync` instead of being recomputed on every query.
        self._current_home_km = self._distances_elementwise(
            self._loc_rad, self._loc, self._dest_rad, self._dest
        )

        self._grid: Optional[GridIndex] = None
        if (
            vectorized
            and spatial_index
            and n >= min_drivers_for_index
            and self._estimator.prune_radius_km(1.0) is not None
        ):
            box = bounding_box_of(
                [s.location for s in self._states]
                + [s.driver.destination for s in self._states]
                + [t.source for t in instance.tasks]
                + [t.destination for t in instance.tasks]
            )
            if (
                box is not None
                and box.diagonal_km() <= _MAX_INDEX_DIAGONAL_KM
                and max(abs(box.south), abs(box.north)) <= _MAX_INDEX_ABS_LAT_DEG
            ):
                self._grid = GridIndex(box, cell_km=cell_km)
                for state in self._states:
                    self._grid.add(state.location)

    # ------------------------------------------------------------------
    # state tracking
    # ------------------------------------------------------------------
    @property
    def uses_spatial_index(self) -> bool:
        return self._grid is not None

    def extend_tasks(self) -> int:
        """Mirror tasks appended to the instance since construction (or the
        last call) into the kernel's coordinate arrays.

        Streaming consumers (:meth:`~repro.online.batch.BatchedSimulator.run_stream`)
        append task batches to a
        :class:`~repro.market.streaming.StreamingMarketInstance` mid-run; this
        keeps the kernel's per-task arrays in step without rebuilding them.
        Returns the number of tasks picked up.  The spatial index keys only
        driver positions, so it needs no refresh; a task outside the original
        bounding box simply degrades that task's query to the exhaustive scan
        (the superset guarantee is unconditional).
        """
        tasks = self.instance.tasks
        known = self._task_sources.shape[0]
        if len(tasks) <= known:
            return 0
        fresh = tasks[known:]
        new_sources = coord_array([t.source for t in fresh])
        new_destinations = coord_array([t.destination for t in fresh])
        self._task_sources = np.concatenate([self._task_sources, new_sources])
        self._task_destinations = np.concatenate([self._task_destinations, new_destinations])
        self._task_sources_rad = np.concatenate(
            [self._task_sources_rad, np.radians(new_sources)]
        )
        self._task_destinations_rad = np.concatenate(
            [self._task_destinations_rad, np.radians(new_destinations)]
        )
        return len(fresh)

    def sync(self, state: DriverState) -> None:
        """Refresh the array mirrors after ``state`` moved or was assigned."""
        slot = self._slot_by_driver[state.driver.driver_id]
        self._loc[slot, 0] = state.location.lat
        self._loc[slot, 1] = state.location.lon
        self._loc_rad[slot] = np.radians(self._loc[slot])
        self._free_at[slot] = state.free_at
        self._current_home_km[slot] = self._distances_elementwise(
            self._loc_rad[slot : slot + 1],
            self._loc[slot : slot + 1],
            self._dest_rad[slot : slot + 1],
            self._dest[slot : slot + 1],
        )[0]
        if self._grid is not None:
            self._grid.update(slot, state.location)

    # ------------------------------------------------------------------
    # batch distances (fast radian path for the built-in estimators)
    # ------------------------------------------------------------------
    def _distances_to_point(self, origins_rad: np.ndarray, origins_deg: np.ndarray,
                            point_rad: np.ndarray, point_deg: np.ndarray) -> np.ndarray:
        """Estimator distances from many origins to one destination."""
        if self._metric is not None:
            return self._metric_scale * self._metric(
                origins_rad[:, 0], origins_rad[:, 1], point_rad[0], point_rad[1]
            )
        return self._estimator.cross_km(origins_deg, point_deg[None, :])[:, 0]

    def _distances_from_point(self, point_rad: np.ndarray, point_deg: np.ndarray,
                              dests_rad: np.ndarray, dests_deg: np.ndarray) -> np.ndarray:
        """Estimator distances from one origin to many destinations."""
        if self._metric is not None:
            return self._metric_scale * self._metric(
                point_rad[0], point_rad[1], dests_rad[:, 0], dests_rad[:, 1]
            )
        return self._estimator.cross_km(point_deg[None, :], dests_deg)[0]

    def _distances_elementwise(self, a_rad: np.ndarray, a_deg: np.ndarray,
                               b_rad: np.ndarray, b_deg: np.ndarray) -> np.ndarray:
        """Estimator distances ``a[i] -> b[i]``."""
        if self._metric is not None:
            return self._metric_scale * self._metric(
                a_rad[:, 0], a_rad[:, 1], b_rad[:, 0], b_rad[:, 1]
            )
        return self._estimator.pairwise_km(a_deg, b_deg)

    def _distances_cross(self, a_rad: np.ndarray, a_deg: np.ndarray,
                         b_rad: np.ndarray, b_deg: np.ndarray) -> np.ndarray:
        """Estimator distance matrix ``a[i] -> b[j]``."""
        if self._metric is not None:
            return self._metric_scale * self._metric(
                a_rad[:, 0][:, None], a_rad[:, 1][:, None],
                b_rad[:, 0][None, :], b_rad[:, 1][None, :],
            )
        return self._estimator.cross_km(a_deg, b_deg)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _query_rates(self, now_ts: float) -> tuple:
        """``(speed_kmh, cost_per_km)`` in effect for a query at ``now_ts``."""
        if self._rates_at is None:
            return self._speed_kmh, self._cost_per_km
        return self._rates_at(now_ts)

    def candidates_for(self, task_index: int, task: Task, now_ts: float) -> List[Candidate]:
        """Feasible candidates for one task, in driver order."""
        if not self.vectorized:
            return self.candidates_for_scalar(task_index, task, now_ts)
        network = self.instance.task_network
        if not network.servable[task_index]:
            return []
        sdl = task.start_deadline_ts
        if now_ts > sdl:
            # Every depart time is at least ``now_ts``, so nobody can leave
            # by the pickup deadline.
            return []
        if self.use_recorded_duration:
            ride_duration = task.ride_window_s
        else:
            ride_duration = float(network.durations_s[task_index])
        service_cost = float(network.service_costs[task_index])

        slots = self._prefilter_slots(task, now_ts)
        if slots.size == 0:
            return []
        speed_kmh, cost_per_km = self._query_rates(now_ts)

        depart = np.maximum(self._free_at[slots], self._driver_start[slots])
        depart = np.maximum(depart, now_ts)
        feasible = depart <= sdl
        if not feasible.any():
            return []
        slots = slots[feasible]
        depart = depart[feasible]

        approach_km = self._distances_to_point(
            self._loc_rad[slots], self._loc[slots],
            self._task_sources_rad[task_index], self._task_sources[task_index],
        )
        approach_time = approach_km / speed_kmh * 3600.0
        approach_cost = approach_km * cost_per_km
        arrival = depart + approach_time
        feasible = arrival <= sdl + 1e-9
        if self.wait_for_pickup_deadline:
            pickup = np.maximum(arrival, sdl)
        else:
            pickup = arrival
        dropoff = pickup + ride_duration
        feasible &= dropoff <= task.end_deadline_ts + 1e-9
        if not feasible.any():
            return []
        # Narrow before the remaining two leg computations — with tight
        # pickup deadlines most of the fleet is already out at this point.
        slots = slots[feasible]
        arrival = arrival[feasible]
        dropoff = dropoff[feasible]
        approach_cost = approach_cost[feasible]

        home_km = self._distances_from_point(
            self._task_destinations_rad[task_index], self._task_destinations[task_index],
            self._dest_rad[slots], self._dest[slots],
        )
        home_time = home_km / speed_kmh * 3600.0
        home_cost = home_km * cost_per_km
        feasible = dropoff + home_time <= self._driver_end[slots] + 1e-9
        if not feasible.any():
            return []
        slots = slots[feasible]
        arrival = arrival[feasible]
        dropoff = dropoff[feasible]
        approach_cost = approach_cost[feasible]
        home_cost = home_cost[feasible]

        current_home_cost = self._current_home_km[slots] * cost_per_km
        marginal = task.price - (
            home_cost + service_cost + approach_cost - current_home_cost
        )

        states = self._states
        return [
            Candidate(
                state=states[slot],
                arrival_ts=arr,
                dropoff_ts=drop,
                approach_cost=cost,
                marginal_value=margin,
            )
            for slot, arr, drop, cost, margin in zip(
                slots.tolist(),
                arrival.tolist(),
                dropoff.tolist(),
                approach_cost.tolist(),
                marginal.tolist(),
            )
        ]

    def candidates_for_window(
        self, task_indices: Sequence[int], now_ts: float
    ) -> Dict[int, List[Candidate]]:
        """Feasible candidates for a whole dispatch window at once.

        Builds the window's approach/home cost matrices with one ``cross_km``
        call each instead of per-task scans; used by the batched simulator.
        When the spatial index is active, the driver axis is first shrunk to
        the *union of reach* of the window's tasks (every driver inside some
        task's grid range query) — a superset of every feasible pair, so the
        returned candidates are identical with the index on or off and only
        the matrix width changes.  Returns ``{task_index: candidates}`` with
        tasks without candidates omitted.
        """
        if not self.vectorized:
            out: Dict[int, List[Candidate]] = {}
            for m in task_indices:
                candidates = self.candidates_for_scalar(m, self.instance.tasks[m], now_ts)
                if candidates:
                    out[m] = candidates
            return out

        network = self.instance.task_network
        live = [m for m in task_indices if network.servable[m]]
        if not live or not self._states:
            return {}
        tasks = [self.instance.tasks[m] for m in live]
        idx = np.asarray(live, dtype=np.intp)

        slots = self._window_slots(tasks, now_ts)  # (D',) union of reach
        if slots.size == 0:
            return {}
        speed_kmh, cost_per_km = self._query_rates(now_ts)

        sdl = np.array([t.start_deadline_ts for t in tasks], dtype=float)
        edl = np.array([t.end_deadline_ts for t in tasks], dtype=float)
        prices = np.array([t.price for t in tasks], dtype=float)
        if self.use_recorded_duration:
            ride_durations = np.array([t.ride_window_s for t in tasks], dtype=float)
        else:
            ride_durations = network.durations_s[idx].astype(float)
        service_costs = network.service_costs[idx].astype(float)

        depart = np.maximum(self._free_at[slots], self._driver_start[slots])
        depart = np.maximum(depart, now_ts)  # (D',)

        if self._metric_name is not None:
            # Fast radian path: the whole window assembly — both distance
            # legs, every feasibility mask, the marginal values — is one
            # backend call, so a worker running the numba backend fuses it
            # into a single compiled pass.  The numpy backend replicates the
            # historical inline arithmetic operation for operation.
            feasible, arrival, dropoff, approach_cost, marginal = get_backend().window_costs(
                self._metric_name,
                self._metric_scale,
                self._loc_rad[slots],
                self._dest_rad[slots],
                self._task_sources_rad[idx],
                self._task_destinations_rad[idx],
                depart,
                sdl,
                edl,
                prices,
                ride_durations,
                service_costs,
                self._current_home_km[slots],
                self._driver_end[slots],
                speed_kmh,
                cost_per_km,
                self.wait_for_pickup_deadline,
            )
        else:
            # Generic-estimator path: no named metric to hand a backend, so
            # the assembly stays inline over the estimator's batch API.
            feasible = depart[None, :] <= sdl[:, None]  # (T, D')

            approach_km = self._distances_cross(
                self._loc_rad[slots], self._loc[slots],
                self._task_sources_rad[idx], self._task_sources[idx],
            )  # (D', T)
            approach_time = (approach_km / speed_kmh * 3600.0).T  # (T, D')
            approach_cost = (approach_km * cost_per_km).T
            arrival = depart[None, :] + approach_time
            feasible &= arrival <= sdl[:, None] + 1e-9
            if self.wait_for_pickup_deadline:
                pickup = np.maximum(arrival, sdl[:, None])
            else:
                pickup = arrival
            dropoff = pickup + ride_durations[:, None]
            feasible &= dropoff <= edl[:, None] + 1e-9

            home_km = self._distances_cross(
                self._task_destinations_rad[idx], self._task_destinations[idx],
                self._dest_rad[slots], self._dest[slots],
            )  # (T, D')
            home_time = home_km / speed_kmh * 3600.0
            home_cost = home_km * cost_per_km
            feasible &= dropoff + home_time <= self._driver_end[slots][None, :] + 1e-9

            current_home_cost = self._current_home_km[slots] * cost_per_km  # (D',)
            marginal = prices[:, None] - (
                home_cost + service_costs[:, None] + approach_cost - current_home_cost[None, :]
            )

        out = {}
        task_rows, driver_cols = np.nonzero(feasible)
        for row, col in zip(task_rows, driver_cols):
            m = live[int(row)]
            out.setdefault(m, []).append(
                Candidate(
                    state=self._states[int(slots[col])],
                    arrival_ts=float(arrival[row, col]),
                    dropoff_ts=float(dropoff[row, col]),
                    approach_cost=float(approach_cost[row, col]),
                    marginal_value=float(marginal[row, col]),
                )
            )
        return out

    # ------------------------------------------------------------------
    # scalar reference path
    # ------------------------------------------------------------------
    def candidates_for_scalar(
        self, task_index: int, task: Task, now_ts: float
    ) -> List[Candidate]:
        """The original per-driver Python loop, kept as the reference
        implementation (and the fallback for ``vectorized=False``)."""
        network = self.instance.task_network
        if not network.servable[task_index]:
            return []
        if self.use_recorded_duration:
            ride_duration = task.ride_window_s
        else:
            ride_duration = float(network.durations_s[task_index])
        service_cost = float(network.service_costs[task_index])

        candidates: List[Candidate] = []
        for state in self._states:
            driver = state.driver
            depart_ts = max(state.free_at, now_ts, driver.start_ts)
            if depart_ts > task.start_deadline_ts:
                continue
            approach = self._cost_model.leg(state.location, task.source, ts=now_ts)
            arrival_ts = depart_ts + approach.time_s
            if arrival_ts > task.start_deadline_ts + 1e-9:
                continue
            if self.wait_for_pickup_deadline:
                pickup_ts = max(arrival_ts, task.start_deadline_ts)
            else:
                pickup_ts = arrival_ts
            dropoff_ts = pickup_ts + ride_duration
            if dropoff_ts > task.end_deadline_ts + 1e-9:
                continue
            home_leg = self._cost_model.leg(task.destination, driver.destination, ts=now_ts)
            if dropoff_ts + home_leg.time_s > driver.end_ts + 1e-9:
                continue
            current_home_leg = self._cost_model.leg(
                state.location, driver.destination, ts=now_ts
            )
            marginal = task.price - (
                home_leg.cost + service_cost + approach.cost - current_home_leg.cost
            )
            candidates.append(
                Candidate(
                    state=state,
                    arrival_ts=arrival_ts,
                    dropoff_ts=dropoff_ts,
                    approach_cost=approach.cost,
                    marginal_value=marginal,
                )
            )
        return candidates

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _window_slots(self, tasks: Sequence[Task], now_ts: float) -> np.ndarray:
        """The union of reach of a dispatch window: every driver slot inside
        at least one window task's grid range query (the whole fleet when the
        index is off).  Sorted, so restricting the window matrices to these
        slots preserves the per-task candidate order."""
        n = len(self._states)
        if self._grid is None:
            return np.arange(n, dtype=np.intp)
        union = np.zeros(n, dtype=bool)
        for task in tasks:
            slots = self._prefilter_slots(task, now_ts)
            if slots.size == n:
                return slots
            union[slots] = True
        return np.nonzero(union)[0]

    def _prefilter_slots(self, task: Task, now_ts: float) -> np.ndarray:
        """Slots worth checking for ``task``: a grid range query when the
        spatial index is active, otherwise the whole fleet."""
        if self._grid is None:
            return np.arange(len(self._states), dtype=np.intp)
        # A driver departing no earlier than ``now_ts`` must cover the whole
        # approach within the pickup-deadline budget; convert that distance
        # budget into a safe straight-line radius for the grid query.
        budget_s = max(0.0, task.start_deadline_ts - now_ts) + 1.0
        # Use the profile's *maximum* speed: a faster future window can never
        # shrink the reach below this bound, so the range query stays a
        # superset of the exact checks (and equals the historical radius for
        # flat profiles and plain models).
        reach_km = budget_s / 3600.0 * self._max_speed_kmh
        prune_km = self._estimator.prune_radius_km(reach_km)
        if prune_km is None:
            return np.arange(len(self._states), dtype=np.intp)
        return self._grid.query_slots(task.source, prune_km)
