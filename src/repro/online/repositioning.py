"""Idle-driver repositioning.

Section VI-C of the paper concludes that "an effective matching market
designer should make the market dense enough to ensure a high service rate".
Dispatch alone cannot do that when idle drivers sit where their last
drop-off happened to be; production platforms therefore *reposition* idle
drivers towards predicted demand.  This module adds that capability as an
optional plug-in for the online simulator:

* :class:`DemandHeatmap` — a zone-by-hour count of historical ride requests
  (built from tasks or trips), answering "where is demand expected around
  time t?".
* :class:`HotspotRepositioning` — moves a driver who has been idle for a
  while towards the busiest reachable zone centre, provided she can still
  make it to her own destination in time afterwards.  The empty drive is paid
  for by the driver, so repositioning only pays off when it wins her
  subsequent rides — exactly the trade-off the ablation benchmark measures.
* :class:`NoRepositioning` — the do-nothing baseline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..geo import BoundingBox, GeoPoint, PORTO
from ..market.task import Task
from ..trace.records import TripRecord
from .state import DriverState


class DemandHeatmap:
    """Zone-by-hour demand counts over a service area."""

    def __init__(self, bounding_box: BoundingBox = PORTO, rows: int = 6, cols: int = 6) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.bounding_box = bounding_box
        self.rows = rows
        self.cols = cols
        self._counts: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def record(self, location: GeoPoint, ts: float, count: int = 1) -> None:
        """Record ``count`` ride requests at ``location`` around time ``ts``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        key = self._key(location, ts)
        self._counts[key] = self._counts.get(key, 0) + count

    @classmethod
    def from_tasks(
        cls,
        tasks: Iterable[Task],
        bounding_box: BoundingBox = PORTO,
        rows: int = 6,
        cols: int = 6,
    ) -> "DemandHeatmap":
        """Build a heatmap from task pickup locations and deadlines."""
        heatmap = cls(bounding_box, rows, cols)
        for task in tasks:
            heatmap.record(task.source, task.start_deadline_ts)
        return heatmap

    @classmethod
    def from_trips(
        cls,
        trips: Iterable[TripRecord],
        bounding_box: BoundingBox = PORTO,
        rows: int = 6,
        cols: int = 6,
    ) -> "DemandHeatmap":
        """Build a heatmap from historical trips (yesterday's demand as the
        forecast for today, the simplest production-grade predictor)."""
        heatmap = cls(bounding_box, rows, cols)
        for trip in trips:
            heatmap.record(trip.origin, trip.start_ts)
        return heatmap

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def demand_at(self, location: GeoPoint, ts: float) -> int:
        """Demand count of the zone containing ``location`` in the hour of ``ts``."""
        return self._counts.get(self._key(location, ts), 0)

    def hottest_zones(self, ts: float, top: int = 3) -> List[Tuple[GeoPoint, int]]:
        """The ``top`` busiest zone centres for the hour containing ``ts``."""
        if top < 1:
            raise ValueError("top must be >= 1")
        hour = self._hour(ts)
        cells = [
            ((row, col), count)
            for (row, col, h), count in self._counts.items()
            if h == hour and count > 0
        ]
        cells.sort(key=lambda item: -item[1])
        centres: List[Tuple[GeoPoint, int]] = []
        zone_boxes = self.bounding_box.split(self.rows, self.cols)
        for (row, col), count in cells[:top]:
            centres.append((zone_boxes[row * self.cols + col].center, count))
        return centres

    def total_demand(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _hour(self, ts: float) -> int:
        return int(ts // 3600.0)

    def _key(self, location: GeoPoint, ts: float) -> Tuple[int, int, int]:
        row, col = self.bounding_box.cell_index(location, self.rows, self.cols)
        return (row, col, self._hour(ts))


@dataclass(frozen=True, slots=True)
class RepositioningMove:
    """A suggested empty drive for an idle driver."""

    target: GeoPoint
    depart_ts: float


class RepositioningPolicy(abc.ABC):
    """Decides whether (and where) an idle driver should reposition."""

    @abc.abstractmethod
    def suggest(self, state: DriverState, now_ts: float) -> Optional[RepositioningMove]:
        """A move for ``state`` at time ``now_ts``, or ``None`` to stay put."""

    def suggest_batch(
        self, states: Sequence[DriverState], now_ts: float
    ) -> List[Optional[RepositioningMove]]:
        """Moves for a whole fleet, aligned with ``states``.

        The default walks the scalar :meth:`suggest` per driver, so custom
        policies keep working; policies with a vectorisable rule (see
        :meth:`HotspotRepositioning.suggest_batch`) override it with a
        batched kernel.
        """
        return [self.suggest(state, now_ts) for state in states]


@dataclass
class NoRepositioning(RepositioningPolicy):
    """Baseline: idle drivers wait where they are."""

    def suggest(self, state: DriverState, now_ts: float) -> Optional[RepositioningMove]:
        return None


@dataclass
class HotspotRepositioning(RepositioningPolicy):
    """Move long-idle drivers towards the busiest reachable demand zone.

    Parameters
    ----------
    heatmap:
        The demand forecast.
    travel_model:
        Used to estimate the repositioning drive and to check the driver can
        still reach her own destination afterwards.
    idle_threshold_s:
        Only drivers idle for at least this long are repositioned.
    max_drive_km:
        Never reposition further than this (empty kilometres are expensive).
    improvement_factor:
        The target zone must have at least this many times the demand of the
        driver's current zone to justify the move.
    """

    heatmap: DemandHeatmap
    travel_model: object
    idle_threshold_s: float = 600.0
    max_drive_km: float = 5.0
    improvement_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.idle_threshold_s < 0:
            raise ValueError("idle_threshold_s must be non-negative")
        if self.max_drive_km <= 0:
            raise ValueError("max_drive_km must be positive")
        if self.improvement_factor < 1.0:
            raise ValueError("improvement_factor must be >= 1")

    def suggest(self, state: DriverState, now_ts: float) -> Optional[RepositioningMove]:
        """Scalar reference rule (one driver).

        Kept as the parity baseline for :meth:`suggest_batch`; the batched
        kernel replicates this decision sequence with the estimator's batch
        distances, which match the scalar estimator to floating-point
        round-off.
        """
        if not self._eligible(state, now_ts):
            return None
        driver = state.driver
        current_demand = self.heatmap.demand_at(state.location, now_ts)
        for target, demand in self.heatmap.hottest_zones(now_ts, top=3):
            if demand < self.improvement_factor * max(1, current_demand):
                continue
            drive_km = self.travel_model.distance_km(state.location, target)
            if drive_km > self.max_drive_km or drive_km < 0.2:
                continue
            drive_s = self.travel_model.time_for_distance_s(drive_km)
            home_s = self.travel_model.travel_time_s(target, driver.destination)
            if now_ts + drive_s + home_s > driver.end_ts:
                continue
            return RepositioningMove(target=target, depart_ts=now_ts)
        return None

    def suggest_batch(
        self, states: Sequence[DriverState], now_ts: float
    ) -> List[Optional[RepositioningMove]]:
        """Vectorised :meth:`suggest` over the whole fleet.

        The idle fleet's drive legs (driver location -> zone centre) and home
        legs (zone centre -> driver destination) are computed with two
        ``cross_km`` batch calls — the same kernel the online candidate
        search runs on — instead of up to ``2 x idle x zones`` scalar
        estimator calls; the zone scan itself is a cheap Python loop over at
        most three precomputed columns per driver.  Falls back to the scalar
        path for duck-typed travel models without a batch estimator.

        The batch kernels match the scalar estimator to floating-point
        round-off, not bit for bit, so a distance landing *exactly* on a
        threshold (``max_drive_km``, the 0.2 km floor, the shift-end budget)
        could in principle decide differently from :meth:`suggest`; real
        fleets sit measurably away from those boundaries.
        """
        states = list(states)
        estimator = getattr(self.travel_model, "estimator", None)
        if estimator is None:
            return [self.suggest(state, now_ts) for state in states]
        moves: List[Optional[RepositioningMove]] = [None] * len(states)
        idle = [i for i, state in enumerate(states) if self._eligible(state, now_ts)]
        if not idle:
            return moves
        zones = self.heatmap.hottest_zones(now_ts, top=3)
        if not zones:
            return moves
        centres = [target for target, _demand in zones]
        drive_km = estimator.cross_km(
            [states[i].location for i in idle], centres
        )  # (idle, zones)
        home_km = estimator.cross_km(
            centres, [states[i].driver.destination for i in idle]
        )  # (zones, idle)
        for row, i in enumerate(idle):
            state = states[i]
            driver = state.driver
            current_demand = self.heatmap.demand_at(state.location, now_ts)
            for z, (target, demand) in enumerate(zones):
                if demand < self.improvement_factor * max(1, current_demand):
                    continue
                distance = float(drive_km[row, z])
                if distance > self.max_drive_km or distance < 0.2:
                    continue
                drive_s = self.travel_model.time_for_distance_s(distance)
                home_s = self.travel_model.time_for_distance_s(float(home_km[z, row]))
                if now_ts + drive_s + home_s > driver.end_ts:
                    continue
                moves[i] = RepositioningMove(target=target, depart_ts=now_ts)
                break
        return moves

    def _eligible(self, state: DriverState, now_ts: float) -> bool:
        """Whether a driver is idle long enough to be repositioned at all."""
        if state.locked:
            return False
        driver = state.driver
        if now_ts < driver.start_ts:
            return False
        return now_ts - max(state.free_at, driver.start_ts) >= self.idle_threshold_s


def apply_repositioning(
    policy: RepositioningPolicy,
    states: Iterable[DriverState],
    now_ts: float,
    travel_model,
    on_move: Optional[Callable[[DriverState], None]] = None,
) -> int:
    """Apply a policy to every idle driver; returns how many moved.

    The empty drive is charged to the driver's running profit and her
    location / free-at time advance to the target, exactly as an approach
    drive would.  ``on_move`` (if given) is called with every state that
    moved, so callers tracking driver positions — e.g. the candidate
    kernel's spatial index — stay in sync.  Suggestions come from the
    policy's (possibly vectorised) ``suggest_batch`` and the empty-drive
    distances of all accepted moves are computed with one batched estimator
    call, which means every suggestion observes the fleet as it stood
    *before* this round of moves (the built-in policies only read the
    suggesting driver's own state, so they are unaffected).
    """
    state_list = list(states)
    suggestions = policy.suggest_batch(state_list, now_ts)
    moves: List[Tuple[DriverState, RepositioningMove]] = [
        (state, move) for state, move in zip(state_list, suggestions) if move is not None
    ]
    if not moves:
        return 0
    estimator = getattr(travel_model, "estimator", None)
    if estimator is not None:
        distances = estimator.pairwise_km(
            [state.location for state, _move in moves],
            [move.target for _state, move in moves],
        )
    else:
        # Duck-typed travel models (only distance_km/cost/time conversions)
        # keep working through the scalar path.
        distances = [
            travel_model.distance_km(state.location, move.target)
            for state, move in moves
        ]
    for (state, move), distance in zip(moves, distances):
        distance = float(distance)
        state.running_profit -= travel_model.cost_for_distance(distance)
        state.location = move.target
        state.free_at = move.depart_ts + travel_model.time_for_distance_s(distance)
        if on_move is not None:
            on_move(state)
    return len(moves)
