"""Runtime driver state for the online simulator.

Algorithms 3 and 4 of the paper track, for every driver, whether she is
*locked* (committed to a task she has not finished yet), her *last task*, and
where/when she will next be free.  :class:`DriverState` is that record;
:class:`Candidate` is one entry of the candidate set built for an arriving
task, annotated with everything the dispatch rules need (arrival time at the
pickup and the marginal value ``delta_{n,m}`` of Eq. 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..geo import GeoPoint
from ..market.driver import Driver


@dataclass(slots=True)
class DriverState:
    """Mutable per-driver state during an online simulation."""

    driver: Driver
    #: Where the driver will be once she has finished everything assigned so far.
    location: GeoPoint
    #: When she is free at ``location`` (never before her shift start).
    free_at: float
    #: Whether she currently has an unfinished assigned task.
    locked: bool = False
    #: Index of her last assigned task (``None`` maps to the paper's "last task 0").
    last_task: Optional[int] = None
    #: All task indices assigned to her, in service order.
    served: List[int] = field(default_factory=list)
    #: When the driver reached each served task's pickup point, aligned
    #: entry-for-entry with ``served`` (NaN when a caller did not supply an
    #: arrival, so later entries never shift).  Fed by the simulators'
    #: commit paths; the wait-time metrics (publish -> driver arrival) are
    #: derived from these at settlement.  Under trace-replay semantics the
    #: *ride* then starts at the recorded start, but the customer's wait
    #: for a car ends here.
    arrival_times: List[float] = field(default_factory=list)
    #: Profit accumulated so far: task payoffs minus the empty-drive and
    #: in-task costs actually incurred (the driver's own final leg home and
    #: the direct-cost credit are settled at the end of the simulation).
    running_profit: float = 0.0

    @classmethod
    def fresh(cls, driver: Driver) -> "DriverState":
        """The initial state: unlocked, waiting at her source until her shift starts."""
        return cls(driver=driver, location=driver.source, free_at=driver.start_ts)

    @property
    def task_count(self) -> int:
        return len(self.served)

    def assign(
        self,
        task_index: int,
        pickup_location: GeoPoint,
        dropoff_location: GeoPoint,
        dropoff_ts: float,
        profit_delta: float,
        arrival_ts: Optional[float] = None,
    ) -> None:
        """Commit a task to this driver and advance her state.

        ``arrival_ts`` records when the driver reaches the pickup point;
        callers that do not track it may omit it — a NaN keeps
        ``arrival_times`` aligned with ``served`` and the wait-time metrics
        skip that assignment.
        """
        self.served.append(task_index)
        self.arrival_times.append(math.nan if arrival_ts is None else arrival_ts)
        self.last_task = task_index
        self.location = dropoff_location
        self.free_at = dropoff_ts
        self.locked = True
        self.running_profit += profit_delta

    def release_if_done(self, now_ts: float) -> None:
        """Unlock the driver once the current time passes her busy-until time."""
        if self.locked and now_ts >= self.free_at:
            self.locked = False


@dataclass(frozen=True, slots=True)
class Candidate:
    """One feasible driver for an arriving task."""

    state: DriverState
    #: When the driver could reach the task's pickup point.
    arrival_ts: float
    #: When she would drop the customer off.
    dropoff_ts: float
    #: Empty-drive cost from her current position to the pickup.
    approach_cost: float
    #: Marginal value ``delta_{n,m}`` of Eq. (14).
    marginal_value: float

    @property
    def driver_id(self) -> str:
        return self.state.driver.driver_id
