"""Rolling-horizon lookahead for the batched dispatcher.

The batched simulator is myopic: each Hungarian window maximises that
window's marginal value and nothing else.  This module adds the
control/overlap-horizon scheme of the MPC exemplar (SNIPPETS.md snippet 1 —
``n_hours`` control window, ``n_hours_ov`` overlap horizon, multi-resolution
blocks): each dispatch step *solves* the control window (the Hungarian
assignment, exactly as before) **plus** a lookahead over the overlap horizon,
but *commits* only the control window.

The overlap horizon enters the control-window solve in expectation, because
in streaming the future orders have not published yet.  A per-zone demand
forecast (:mod:`repro.online.forecast`) is rolled out over:

* ``horizon - 1`` *fine* windows at the control resolution, each discounted
  by ``LOOKAHEAD_DECAY`` per window, and
* ``overlap`` *coarse* blocks of ``overlap_factor`` windows each, every
  block aggregated into one discounted term —

yielding a per-zone *pressure* field (normalised to ``[0, 1]``).  The
pressure reshapes the control-window assignment through a bounded bias on
the Hungarian matrix (see :meth:`LookaheadPlanner.pair_bias`): pairs that
drop a driver in a zone expecting demand gain, pairs that pull supply out of
one lose.  The bias only ever touches the assignment matrix — committed
profits keep the paper's exact marginal arithmetic, which is what "commit
only the control window" means here.

The *undiscounted* expected counts over the same lookahead feed a
:class:`ForecastHeatmap` driving proactive
:class:`~repro.online.repositioning.HotspotRepositioning` after each
window's dispatch, so idle drivers start moving toward forecast demand
before the orders publish.

Everything in this module is a deterministic function of (fleet, config,
observed arrival slots), so horizon dispatch inherits the bit-identical
executor-parity contracts of the myopic dispatcher (parity contract 18).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..market.task import Task
from .forecast import (
    DemandForecaster,
    EwmaDemandForecaster,
    OracleDemandForecaster,
    ZoneGrid,
)
from .repositioning import HotspotRepositioning, apply_repositioning
from .state import DriverState

__all__ = ["ForecastHeatmap", "LookaheadPlanner"]

#: Per-control-window discount of future demand in the pressure field.
LOOKAHEAD_DECAY = 0.7

#: Zone grid resolution of the forecast field.
FORECAST_ROWS = 6
FORECAST_COLS = 6

#: Proactive-repositioning knobs.  Horizon windows are typically a minute
#: long, so drivers become candidates for a forecast-driven move after five
#: idle minutes; moves are capped (empty km are paid by the driver) and
#: require the target zone to forecast 1.5x the fleet-mean zone demand.
#: Tuned on the built-in scenario suite (see ``BENCH_rolling_horizon``):
#: the 6 km radius lets drivers actually cross a city-scale zone grid —
#: at 4 km, half the profitable moves were filtered and the serve-rate
#: gains evaporated.
REPOSITION_IDLE_S = 300.0
REPOSITION_MAX_KM = 6.0
REPOSITION_IMPROVEMENT = 1.5


class ForecastHeatmap:
    """Expected-demand heatmap quacking like
    :class:`~repro.online.repositioning.DemandHeatmap`.

    :class:`HotspotRepositioning` reads only ``demand_at`` and
    ``hottest_zones``; this adapter serves both from the planner's expected
    per-zone counts.  Counts over a short lookahead are fractional (often
    well below 1 per zone), while the hotspot policy's improvement rule uses
    a ``max(1, current)`` floor calibrated for whole-hour historical counts —
    so the adapter normalises the field to the *mean positive zone count*:
    an average zone reads 1.0 and a zone reading 1.5 forecasts 1.5x the
    fleet-mean demand, which is exactly the relative rule the policy's
    ``improvement_factor`` expresses.
    """

    def __init__(self, grid: ZoneGrid) -> None:
        self.grid = grid
        self._heat = np.zeros(grid.zone_count, dtype=float)
        self._scale = 0.0

    def update(self, expected_counts: np.ndarray) -> None:
        self._heat = expected_counts
        positive = expected_counts[expected_counts > 0.0]
        self._scale = 1.0 / float(positive.mean()) if positive.size else 0.0

    # -- DemandHeatmap duck API -----------------------------------------
    def demand_at(self, location, ts: float) -> float:
        return float(self._heat[self.grid.zone_of(location)] * self._scale)

    def hottest_zones(self, ts: float, top: int = 3) -> List[Tuple[object, float]]:
        if top < 1:
            raise ValueError("top must be >= 1")
        # Stable argsort on the negated field: ties break on zone index, so
        # the ranking is a pure function of the field.
        order = np.argsort(-self._heat, kind="stable")
        zones: List[Tuple[object, float]] = []
        for z in order[:top]:
            if self._heat[z] <= 0.0:
                break
            zones.append((self.grid.centers[int(z)], float(self._heat[z] * self._scale)))
        return zones


class LookaheadPlanner:
    """Holds the forecast state of one rolling-horizon dispatcher.

    One planner per :class:`~repro.online.batch.BatchedSimulator` run; the
    simulator calls :meth:`observe_window` once per dispatched window (in
    slot order), then prices the window's Hungarian matrix through
    :meth:`pair_bias` and finally repositions idle drivers via
    :meth:`reposition`.
    """

    def __init__(
        self,
        forecaster: DemandForecaster,
        travel_model,
        *,
        horizon: int,
        overlap: int,
        overlap_factor: int,
        lookahead_weight: float,
    ) -> None:
        self.grid = forecaster.grid
        self.forecaster = forecaster
        self.horizon = horizon
        self.overlap = overlap
        self.overlap_factor = overlap_factor
        self.lookahead_weight = lookahead_weight
        self._travel_model = travel_model
        self._heatmap = ForecastHeatmap(self.grid)
        self._policy = HotspotRepositioning(
            heatmap=self._heatmap,
            travel_model=travel_model,
            idle_threshold_s=REPOSITION_IDLE_S,
            max_drive_km=REPOSITION_MAX_KM,
            improvement_factor=REPOSITION_IMPROVEMENT,
        )
        self._pressure = np.zeros(self.grid.zone_count, dtype=float)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, instance, config) -> Optional["LookaheadPlanner"]:
        """Planner for one simulator run, or ``None`` when lookahead cannot
        apply (no fleet to derive a zone grid from).

        The grid derives from the *fleet* (driver sources and destinations),
        which is fully known at ``stream_begin`` in both the replay and the
        streaming paths — so both paths hold the identical grid, a
        precondition of the stream == replay contract under horizon dispatch.
        """
        drivers = instance.drivers
        points = [d.source for d in drivers] + [d.destination for d in drivers]
        grid = ZoneGrid.from_points(points, FORECAST_ROWS, FORECAST_COLS)
        if grid is None:
            return None
        if config.forecast == "oracle":
            forecaster: DemandForecaster = OracleDemandForecaster(
                grid, instance.tasks, config.window_s
            )
        else:
            forecaster = EwmaDemandForecaster(grid, alpha=config.forecast_alpha)
        return cls(
            forecaster,
            instance.cost_model.travel_model,
            horizon=config.horizon,
            overlap=config.overlap,
            overlap_factor=config.overlap_factor,
            lookahead_weight=config.lookahead_weight,
        )

    # ------------------------------------------------------------------
    # per-window lifecycle
    # ------------------------------------------------------------------
    def observe_window(self, slot: int, tasks: Iterable[Task]) -> None:
        """Feed one dispatched window's arrivals and refresh the lookahead."""
        self.forecaster.observe(slot, list(tasks))
        self._refresh(slot)

    def _refresh(self, slot: int) -> None:
        """Roll the forecast out over the control + overlap horizon.

        Fine windows (control resolution) are discounted per window; each
        coarse overlap block aggregates ``overlap_factor`` windows into one
        term discounted at the block boundary — the multi-resolution scheme
        of the MPC exemplar, in expectation.
        """
        pressure = np.zeros(self.grid.zone_count, dtype=float)
        heat = np.zeros(self.grid.zone_count, dtype=float)
        for offset in range(1, self.horizon):
            counts = self.forecaster.predict(slot + offset)
            pressure += (LOOKAHEAD_DECAY ** offset) * counts
            heat += counts
        for block in range(self.overlap):
            start = self.horizon + block * self.overlap_factor
            block_counts = np.zeros(self.grid.zone_count, dtype=float)
            for i in range(self.overlap_factor):
                block_counts += self.forecaster.predict(slot + start + i)
            pressure += (LOOKAHEAD_DECAY ** start) * block_counts
            heat += block_counts
        peak = float(pressure.max())
        self._pressure = pressure / peak if peak > 0.0 else pressure
        self._heatmap.update(heat)

    # ------------------------------------------------------------------
    # pricing and repositioning
    # ------------------------------------------------------------------
    def pressure_at(self, location) -> float:
        """Normalised (``[0, 1]``) lookahead pressure of a location's zone."""
        return float(self._pressure[self.grid.zone_of(location)])

    def pair_bias(self, task: Task, state: DriverState, price_scale: float) -> float:
        """Assignment-matrix bias for pairing ``state`` with ``task``.

        Positive when the task drops the driver in a higher-pressure zone
        than she currently occupies.  Scaled by the window's mean price so
        the bias is bounded by ``lookahead_weight`` times a typical fare —
        enough to break near-ties toward future demand, never enough to
        overturn a clearly better present assignment.  Applied to the
        Hungarian matrix only; committed profits never see it.
        """
        delta = self.pressure_at(task.destination) - self.pressure_at(state.location)
        return self.lookahead_weight * price_scale * delta

    def reposition(
        self,
        states: Iterable[DriverState],
        now_ts: float,
        on_move: Optional[Callable[[DriverState], None]] = None,
    ) -> int:
        """Proactively move idle drivers toward forecast demand.  Returns the
        number of drivers moved."""
        return apply_repositioning(
            self._policy, states, now_ts, self._travel_model, on_move=on_move
        )
