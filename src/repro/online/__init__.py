"""Online dispatch: driver state, dispatch heuristics and the simulator."""

from .batch import BatchConfig, BatchedSimulator, run_batched, run_batched_stream, window_batches
from .candidates import CandidateKernel
from .dispatchers import Dispatcher, MaxMarginDispatcher, NearestDispatcher, RandomDispatcher
from .forecast import EwmaDemandForecaster, OracleDemandForecaster, ZoneGrid
from .horizon import ForecastHeatmap, LookaheadPlanner
from .outcome import OnlineDriverRecord, OnlineOutcome
from .repositioning import (
    DemandHeatmap,
    HotspotRepositioning,
    NoRepositioning,
    RepositioningMove,
    RepositioningPolicy,
    apply_repositioning,
)
from .simulator import OnlineSimulator, SimulationConfig, TaskOrdering, run_online
from .state import Candidate, DriverState

__all__ = [
    "CandidateKernel",
    "Dispatcher",
    "NearestDispatcher",
    "MaxMarginDispatcher",
    "RandomDispatcher",
    "BatchConfig",
    "BatchedSimulator",
    "run_batched",
    "run_batched_stream",
    "window_batches",
    "DemandHeatmap",
    "ZoneGrid",
    "EwmaDemandForecaster",
    "OracleDemandForecaster",
    "ForecastHeatmap",
    "LookaheadPlanner",
    "RepositioningPolicy",
    "RepositioningMove",
    "HotspotRepositioning",
    "NoRepositioning",
    "apply_repositioning",
    "DriverState",
    "Candidate",
    "OnlineDriverRecord",
    "OnlineOutcome",
    "OnlineSimulator",
    "SimulationConfig",
    "TaskOrdering",
    "run_online",
]
