"""Batched (rolling-horizon) online dispatch.

The paper's conclusion lists "solving the online problem with non-heuristic
algorithms" as future work.  The standard industry step in that direction is
*batched matching*: instead of dispatching every order the instant it
arrives, the platform accumulates the orders of a short window (Uber and Didi
use a few seconds to a minute) and solves one assignment problem per window,
which removes most of the myopia of per-order rules at a negligible latency
cost.

:class:`BatchedSimulator` implements that policy on top of the same driver
state as the per-order simulator:

1. orders are grouped into windows of ``window_s`` seconds by publish time;
2. at the end of each window the feasible (driver, order) pairs are priced by
   the marginal value ``delta_{n,m}`` (Eq. 14 of the paper);
3. a maximum-weight assignment over those pairs is solved with the Hungarian
   algorithm (``scipy.optimize.linear_sum_assignment``), so each driver picks
   up at most one *new* order per window and each order goes to at most one
   driver;
4. drivers advance exactly as in the per-order simulator, and unassigned
   orders whose pickup deadline has not passed roll over into the next
   window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..market.instance import MarketInstance
from ..market.task import Task
from .candidates import CandidateKernel
from .outcome import OnlineDriverRecord, OnlineOutcome
from .state import Candidate, DriverState

#: Cost assigned to infeasible pairs in the assignment matrix.
_INFEASIBLE = 1e12


@dataclass(frozen=True, slots=True)
class BatchConfig:
    """Knobs of the batched dispatcher."""

    #: Length of the accumulation window in seconds.
    window_s: float = 60.0
    #: Refuse (driver, order) pairs whose marginal value is negative, so that
    #: individual rationality (constraint 5b) also holds online.
    require_positive_margin: bool = True
    #: Let orders that missed their window retry in later windows as long as
    #: their pickup deadline has not passed.
    allow_retries: bool = True
    #: Trace-replay semantics (see ``SimulationConfig``): wait at the pickup
    #: until the recorded start and occupy the driver for the recorded
    #: duration.
    wait_for_pickup_deadline: bool = True
    use_recorded_duration: bool = True
    #: Use the vectorised candidate kernel (one ``cross_km`` cost matrix per
    #: window instead of nested Python loops); ``False`` falls back to the
    #: scalar reference loop, which yields the same candidates.
    use_vectorized_kernel: bool = True

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


class BatchedSimulator:
    """Rolling-horizon batched dispatch over a market instance."""

    name = "batched"

    def __init__(self, instance: MarketInstance, config: BatchConfig | None = None) -> None:
        self.instance = instance
        self.config = config or BatchConfig()
        self._cost_model = instance.cost_model
        self._kernel: Optional[CandidateKernel] = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> OnlineOutcome:
        """Simulate the full order stream window by window."""
        states = {
            driver.driver_id: DriverState.fresh(driver) for driver in self.instance.drivers
        }
        self._kernel = CandidateKernel(
            self.instance,
            states.values(),
            wait_for_pickup_deadline=self.config.wait_for_pickup_deadline,
            use_recorded_duration=self.config.use_recorded_duration,
            vectorized=self.config.use_vectorized_kernel,
            # The window path builds full cost matrices; the per-task grid
            # prefilter would not be consulted anyway.
            spatial_index=False,
        )
        pending: List[int] = []
        rejected: List[int] = []

        for window_end, arrivals in self._windows():
            pending.extend(arrivals)
            if not pending:
                continue
            for state in states.values():
                state.release_if_done(window_end)

            assigned, expired = self._dispatch_window(window_end, pending, states)
            rejected.extend(expired)
            still_pending = [
                m for m in pending if m not in assigned and m not in set(expired)
            ]
            if not self.config.allow_retries:
                rejected.extend(still_pending)
                still_pending = []
            pending = still_pending

        rejected.extend(pending)
        records = tuple(self._settle(state) for state in states.values())
        return OnlineOutcome(
            instance=self.instance,
            records=records,
            rejected_tasks=tuple(sorted(set(rejected))),
            dispatcher_name=self.name,
        )

    # ------------------------------------------------------------------
    # window machinery
    # ------------------------------------------------------------------
    def _windows(self) -> List[Tuple[float, List[int]]]:
        """Group task indices into dispatch windows by publish time."""
        indexed = [
            (index, task)
            for index, task in enumerate(self.instance.tasks)
            if task.is_publishable
        ]
        if not indexed:
            return []
        indexed.sort(key=lambda pair: (pair[1].publish_ts, pair[0]))
        first_publish = indexed[0][1].publish_ts
        window_s = self.config.window_s

        windows: Dict[int, List[int]] = {}
        for index, task in indexed:
            slot = int((task.publish_ts - first_publish) // window_s)
            windows.setdefault(slot, []).append(index)
        return [
            (first_publish + (slot + 1) * window_s, indices)
            for slot, indices in sorted(windows.items())
        ]

    def _dispatch_window(
        self,
        now_ts: float,
        pending: Sequence[int],
        states: Dict[str, DriverState],
    ) -> Tuple[Dict[int, str], List[int]]:
        """Assign the pending orders of one window.  Returns the mapping of
        assigned task index -> driver id, plus the orders whose deadline has
        already passed (they can never be served and are rejected now)."""
        expired = [
            m for m in pending if self.instance.tasks[m].start_deadline_ts < now_ts
        ]
        expired_set = set(expired)
        window = [m for m in pending if m not in expired_set]
        # One vectorised pass builds the feasibility masks and marginal-value
        # matrix for the whole window (a cross_km call per leg kind) instead
        # of a nested Python loop over (task, driver) pairs.
        candidates_by_task = self._kernel.candidates_for_window(window, now_ts)
        live_tasks = [m for m in window if m in candidates_by_task]

        if not live_tasks:
            return {}, expired

        driver_ids = list(states.keys())
        driver_pos = {driver_id: j for j, driver_id in enumerate(driver_ids)}
        cost = np.full((len(live_tasks), len(driver_ids)), _INFEASIBLE)
        candidate_lookup: Dict[Tuple[int, str], Candidate] = {}
        for i, m in enumerate(live_tasks):
            for candidate in candidates_by_task[m]:
                if self.config.require_positive_margin and candidate.marginal_value <= 0:
                    continue
                j = driver_pos[candidate.driver_id]
                cost[i, j] = -candidate.marginal_value
                candidate_lookup[(m, candidate.driver_id)] = candidate

        rows, cols = optimize.linear_sum_assignment(cost)
        assigned: Dict[int, str] = {}
        for i, j in zip(rows, cols):
            if cost[i, j] >= _INFEASIBLE:
                continue
            m = live_tasks[i]
            driver_id = driver_ids[j]
            candidate = candidate_lookup[(m, driver_id)]
            self._commit(candidate, m, self.instance.tasks[m])
            assigned[m] = driver_id
        return assigned, expired

    def _commit(self, choice: Candidate, task_index: int, task: Task) -> None:
        service_cost = float(self.instance.task_network.service_costs[task_index])
        profit_delta = task.price - service_cost - choice.approach_cost
        choice.state.assign(
            task_index=task_index,
            pickup_location=task.source,
            dropoff_location=task.destination,
            dropoff_ts=choice.dropoff_ts,
            profit_delta=profit_delta,
        )
        self._kernel.sync(choice.state)

    def _settle(self, state: DriverState) -> OnlineDriverRecord:
        profit = state.running_profit
        if state.served:
            final_leg = self._cost_model.leg(state.location, state.driver.destination)
            direct_leg = self._cost_model.driver_direct_leg(
                state.driver.source, state.driver.destination
            )
            profit = profit - final_leg.cost + direct_leg.cost
        return OnlineDriverRecord(
            driver_id=state.driver.driver_id,
            task_indices=tuple(state.served),
            profit=profit,
        )


def run_batched(
    instance: MarketInstance, window_s: float = 60.0, config: Optional[BatchConfig] = None
) -> OnlineOutcome:
    """Convenience wrapper around :class:`BatchedSimulator`."""
    if config is None:
        config = BatchConfig(window_s=window_s)
    return BatchedSimulator(instance, config).run()
