"""Batched (rolling-horizon) online dispatch.

The paper's conclusion lists "solving the online problem with non-heuristic
algorithms" as future work.  The standard industry step in that direction is
*batched matching*: instead of dispatching every order the instant it
arrives, the platform accumulates the orders of a short window (Uber and Didi
use a few seconds to a minute) and solves one assignment problem per window,
which removes most of the myopia of per-order rules at a negligible latency
cost.

:class:`BatchedSimulator` implements that policy on top of the same driver
state as the per-order simulator:

1. orders are grouped into windows of ``window_s`` seconds by publish time;
2. at the end of each window the feasible (driver, order) pairs are priced by
   the marginal value ``delta_{n,m}`` (Eq. 14 of the paper);
3. a maximum-weight assignment over those pairs is solved with the Hungarian
   algorithm (``scipy.optimize.linear_sum_assignment``).  The assignment
   matrix is shrunk first: the candidate kernel's spatial index restricts the
   driver axis to the window's union of reach, and only drivers with at least
   one feasible pair become columns — both strict supersets of the feasible
   pairs, so the solve sees every real option at a fraction of the
   ``(tasks x fleet)`` width;
4. drivers advance exactly as in the per-order simulator, and unassigned
   orders whose pickup deadline has not passed roll over into the next
   window.

The simulator also runs *live*: :meth:`BatchedSimulator.run_stream` consumes
publish-ordered arrival batches through a
:class:`~repro.market.streaming.StreamingMarketInstance`, appending each
batch incrementally (never rebuilding task maps) and dispatching the same
windows :meth:`run` would — :func:`window_batches` produces exactly that
grouping, and the stream/replay parity test pins the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..market.instance import MarketInstance
from ..market.task import Task
from ..obs import trace as obs_trace
from .candidates import CandidateKernel
from .outcome import OnlineDriverRecord, OnlineOutcome
from .state import Candidate, DriverState

#: Cost assigned to infeasible pairs in the assignment matrix.
_INFEASIBLE = 1e12


@dataclass(frozen=True, slots=True)
class BatchConfig:
    """Knobs of the batched dispatcher."""

    #: Length of the accumulation window in seconds.
    window_s: float = 60.0
    #: Refuse (driver, order) pairs whose marginal value is negative, so that
    #: individual rationality (constraint 5b) also holds online.
    require_positive_margin: bool = True
    #: Let orders that missed their window retry in later windows as long as
    #: their pickup deadline has not passed.
    allow_retries: bool = True
    #: Trace-replay semantics (see ``SimulationConfig``): wait at the pickup
    #: until the recorded start and occupy the driver for the recorded
    #: duration.
    wait_for_pickup_deadline: bool = True
    use_recorded_duration: bool = True
    #: Use the vectorised candidate kernel (one ``cross_km`` cost matrix per
    #: window instead of nested Python loops); ``False`` falls back to the
    #: scalar reference loop, which yields the same candidates.
    use_vectorized_kernel: bool = True
    #: Shrink each window's driver axis to the union of the tasks' spatial
    #: reach (a grid range query per task).  Superset-safe: candidates and
    #: outcomes are identical with the index on or off.
    use_spatial_index: bool = True
    #: Rolling-horizon lookahead (see :mod:`repro.online.horizon`).  The
    #: dispatcher solves a *control window* of ``horizon`` dispatch windows
    #: (the current one exactly, the next ``horizon - 1`` in expectation via
    #: the demand forecast) plus ``overlap`` coarser blocks of
    #: ``overlap_factor`` windows each, and commits only the control window.
    #: ``horizon=1`` is the exact myopic dispatcher — no forecaster is even
    #: constructed, so the outputs are bit-identical to today's.
    horizon: int = 1
    overlap: int = 0
    overlap_factor: int = 4
    #: Demand forecaster: ``"ewma"`` (causal, works on live streams) or
    #: ``"oracle"`` (true future counts; replay-only, used by tests).
    forecast: str = "ewma"
    forecast_alpha: float = 0.35
    #: Hungarian-matrix bias per unit of pressure difference, in units of the
    #: window's mean price.  ``0`` keeps the assignment myopic while still
    #: running forecast-driven repositioning.  0.1 breaks near-ties toward
    #: forecast demand without overturning clearly better present
    #: assignments (larger weights started losing mean wait on the suite).
    lookahead_weight: float = 0.1

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.overlap < 0:
            raise ValueError("overlap must be >= 0")
        if self.overlap_factor < 1:
            raise ValueError("overlap_factor must be >= 1")
        if self.forecast not in ("ewma", "oracle"):
            raise ValueError("forecast must be 'ewma' or 'oracle'")
        if not 0.0 < self.forecast_alpha <= 1.0:
            raise ValueError("forecast_alpha must be in (0, 1]")
        if self.lookahead_weight < 0:
            raise ValueError("lookahead_weight must be non-negative")


def _publish_slot(publish_ts: float, first_publish: float, window_s: float) -> int:
    """The dispatch-window slot of a publish time.

    The single source of truth shared by :meth:`BatchedSimulator._windows`,
    :meth:`BatchedSimulator.run_stream` and :func:`window_batches` — the
    stream/replay parity guarantee rests on all three agreeing.
    """
    return int((publish_ts - first_publish) // window_s)


def window_batches(tasks: Iterable[Task], window_s: float) -> List[List[Task]]:
    """Group publishable tasks into publish-ordered arrival batches, one per
    dispatch window.

    Feeding these batches to :meth:`BatchedSimulator.run_stream` dispatches
    exactly the windows :meth:`BatchedSimulator.run` derives from the full
    task set, which makes replay/stream parity testable.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    publishable = [t for t in tasks if t.is_publishable]
    publishable.sort(key=lambda t: t.publish_ts)  # stable: input order on ties
    if not publishable:
        return []
    first_publish = publishable[0].publish_ts
    slots: Dict[int, List[Task]] = {}
    for task in publishable:
        slots.setdefault(_publish_slot(task.publish_ts, first_publish, window_s), []).append(task)
    return [batch for _slot, batch in sorted(slots.items())]


def stream_schedule(tasks: Iterable[Task], window_s: float) -> List[List[Task]]:
    """Like :func:`window_batches`, but carrying **every** task.

    Non-publishable tasks never dispatch, but a streamed instance must still
    contain them so its metrics (serve rate, tasks-per-driver denominators)
    match a replay over the full task set.  They ride along in the batch of
    their publish slot (anchored at the first *publishable* task, exactly as
    :func:`window_batches` anchors the windows), so the publishable
    subsequence — and therefore every dispatch decision — is identical to
    feeding :func:`window_batches` directly.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    ordered = sorted(tasks, key=lambda t: t.publish_ts)  # stable: input order on ties
    anchor = next((t for t in ordered if t.is_publishable), None)
    if anchor is None:
        return [ordered] if ordered else []
    first_publish = anchor.publish_ts
    slots: Dict[int, List[Task]] = {}
    for task in ordered:
        slots.setdefault(_publish_slot(task.publish_ts, first_publish, window_s), []).append(task)
    return [batch for _slot, batch in sorted(slots.items())]


class BatchedSimulator:
    """Rolling-horizon batched dispatch over a market instance.

    ``instance`` may be a plain :class:`~repro.market.instance.MarketInstance`
    (replay of a known task set via :meth:`run`) or a
    :class:`~repro.market.streaming.StreamingMarketInstance` (live
    consumption of arrival batches via :meth:`run_stream`).
    """

    name = "batched"

    def __init__(self, instance: MarketInstance, config: BatchConfig | None = None) -> None:
        self.instance = instance
        self.config = config or BatchConfig()
        self._cost_model = instance.cost_model
        self._kernel: Optional[CandidateKernel] = None
        self._states: Dict[str, DriverState] = {}
        self._pending: List[int] = []
        self._rejected: List[int] = []
        self._streaming = False
        self._lookahead = None

    # ------------------------------------------------------------------
    # main loops
    # ------------------------------------------------------------------
    def run(self) -> OnlineOutcome:
        """Simulate the full (already known) order stream window by window."""
        self._begin()
        for slot, window_end, arrivals in self._windows():
            self._pending.extend(arrivals)
            self._step_window(window_end, slot=slot, arrivals=arrivals)
        return self._finish()

    def run_stream(self, arrival_batches: Iterable[Sequence[Task]]) -> OnlineOutcome:
        """Consume a live order stream through a streaming instance.

        Each batch is appended to the instance incrementally
        (``append_tasks``) and mirrored into the candidate kernel.  Windows
        close on a *watermark*: a publish slot is dispatched only once a
        later-slot order proves it complete (or the stream ends), so any
        publish-ordered batching — window-aligned, one order per batch, or
        anything between — dispatches exactly the windows :meth:`run`
        derives from the full task set.  Batches must arrive in publish-time
        order; an order publishing before an already-dispatched window
        raises.
        """
        self.stream_begin()
        for batch in arrival_batches:
            self.stream_feed(batch)
        return self.stream_end()

    # ------------------------------------------------------------------
    # incremental streaming API
    # ------------------------------------------------------------------
    def stream_begin(self) -> None:
        """Start consuming a live stream batch by batch.

        The incremental triple ``stream_begin`` / :meth:`stream_feed` /
        :meth:`stream_end` is exactly :meth:`run_stream` with the loop turned
        inside out, so callers that receive batches one at a time (the
        distributed shard workers) run the identical code path — the
        stream==replay parity contract extends to them for free.
        """
        if getattr(self.instance, "append_tasks", None) is None:
            raise TypeError(
                "run_stream needs a streaming instance with append_tasks(); "
                "use StreamingMarketInstance (or run() for a static instance)"
            )
        if self.config.horizon > 1 and self.config.forecast == "oracle":
            raise ValueError(
                "forecast='oracle' reads the full task table and cannot run "
                "on a live stream (the future is unknown at stream_begin); "
                "use forecast='ewma'"
            )
        self._begin()
        self._streaming = True
        self._stream_first_publish: Optional[float] = None
        self._stream_watermark = float("-inf")  # highest publish time accepted
        self._stream_open_slot: Optional[int] = None
        self._stream_open_arrivals: List[int] = []

    def _stream_flush(self) -> None:
        if self._stream_open_slot is None or not self._stream_open_arrivals:
            return
        arrivals = self._stream_open_arrivals
        self._pending.extend(arrivals)
        self._step_window(
            self._stream_first_publish
            + (self._stream_open_slot + 1) * self.config.window_s,
            slot=self._stream_open_slot,
            arrivals=arrivals,
        )
        self._stream_open_arrivals = []

    def stream_feed(self, batch: Sequence[Task]) -> int:
        """Append one publish-ordered arrival batch and dispatch every window
        the watermark proves complete.  Returns the number of tasks appended.
        """
        if not self._streaming:
            raise RuntimeError("call stream_begin() before stream_feed()")
        batch = tuple(batch)
        if not batch:
            return 0
        window_s = self.config.window_s
        start_index = self.instance.task_count
        self.instance.append_tasks(batch)
        self._kernel.extend_tasks()
        arrivals = [
            start_index + offset
            for offset, task in enumerate(batch)
            if task.is_publishable
        ]
        if not arrivals:
            return len(batch)
        tasks = self.instance.tasks
        arrivals.sort(key=lambda m: (tasks[m].publish_ts, m))
        if self._stream_first_publish is None:
            self._stream_first_publish = tasks[arrivals[0]].publish_ts
        for m in arrivals:
            publish_ts = tasks[m].publish_ts
            if publish_ts < self._stream_watermark:
                raise ValueError(
                    "arrival batches must be publish-ordered: task "
                    f"{tasks[m].task_id!r} publishes at {publish_ts} "
                    f"behind the stream watermark {self._stream_watermark}"
                )
            self._stream_watermark = publish_ts
            slot = _publish_slot(publish_ts, self._stream_first_publish, window_s)
            if self._stream_open_slot is None:
                self._stream_open_slot = slot
            elif slot > self._stream_open_slot:
                self._stream_flush()
                self._stream_open_slot = slot
            self._stream_open_arrivals.append(m)
        return len(batch)

    def stream_end(self) -> OnlineOutcome:
        """Dispatch the final open window and settle every driver."""
        if not self._streaming:
            raise RuntimeError("call stream_begin() before stream_end()")
        self._streaming = False
        self._stream_flush()
        return self._finish()

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        self._states = {
            driver.driver_id: DriverState.fresh(driver) for driver in self.instance.drivers
        }
        self._kernel = CandidateKernel(
            self.instance,
            self._states.values(),
            wait_for_pickup_deadline=self.config.wait_for_pickup_deadline,
            use_recorded_duration=self.config.use_recorded_duration,
            vectorized=self.config.use_vectorized_kernel,
            spatial_index=self.config.use_spatial_index,
        )
        self._pending = []
        self._rejected = []
        self._lookahead = None
        if self.config.horizon > 1:
            # Imported here: horizon.py builds on the repositioning module,
            # which imports from this package.
            from .horizon import LookaheadPlanner

            self._lookahead = LookaheadPlanner.build(self.instance, self.config)

    def _step_window(
        self, window_end: float, *, slot: int = 0, arrivals: Sequence[int] = ()
    ) -> None:
        """Dispatch everything pending at one window boundary.

        ``slot`` / ``arrivals`` describe the publish window being flushed;
        the replay and streaming paths derive them from the same watermark
        arithmetic (:func:`_publish_slot`), so the lookahead planner observes
        the identical (slot, arrivals) sequence in both — the foundation of
        the stream == replay contract under horizon dispatch.
        """
        if self._lookahead is not None:
            tasks = self.instance.tasks
            self._lookahead.observe_window(slot, (tasks[m] for m in arrivals))
        if not self._pending:
            return
        for state in self._states.values():
            state.release_if_done(window_end)
        assigned, expired = self._dispatch_window(window_end, self._pending, self._states)
        self._rejected.extend(expired)
        expired_set = set(expired)
        still_pending = [
            m for m in self._pending if m not in assigned and m not in expired_set
        ]
        if not self.config.allow_retries:
            self._rejected.extend(still_pending)
            still_pending = []
        self._pending = still_pending
        if self._lookahead is not None:
            # Proactive repositioning: drivers still idle after the window's
            # dispatch start moving toward forecast demand.  The kernel's
            # mirrors follow via sync, exactly as an assignment would.
            self._lookahead.reposition(
                self._states.values(), window_end, on_move=self._kernel.sync
            )

    def _finish(self) -> OnlineOutcome:
        self._rejected.extend(self._pending)
        records = tuple(self._settle(state) for state in self._states.values())
        return OnlineOutcome(
            instance=self.instance,
            records=records,
            rejected_tasks=tuple(sorted(set(self._rejected))),
            dispatcher_name=self.name,
        )

    def _windows(self) -> List[Tuple[int, float, List[int]]]:
        """Group task indices into dispatch windows by publish time.

        Returns ``(slot, window_end, indices)`` triples — the same
        (slot, arrivals) pairs the streaming watermark flushes, so both paths
        feed the lookahead planner identically.
        """
        indexed = [
            (index, task)
            for index, task in enumerate(self.instance.tasks)
            if task.is_publishable
        ]
        if not indexed:
            return []
        indexed.sort(key=lambda pair: (pair[1].publish_ts, pair[0]))
        first_publish = indexed[0][1].publish_ts
        window_s = self.config.window_s

        windows: Dict[int, List[int]] = {}
        for index, task in indexed:
            slot = _publish_slot(task.publish_ts, first_publish, window_s)
            windows.setdefault(slot, []).append(index)
        return [
            (slot, first_publish + (slot + 1) * window_s, indices)
            for slot, indices in sorted(windows.items())
        ]

    def _dispatch_window(
        self,
        now_ts: float,
        pending: Sequence[int],
        states: Dict[str, DriverState],
    ) -> Tuple[Dict[int, str], List[int]]:
        """Assign the pending orders of one window.  Returns the mapping of
        assigned task index -> driver id, plus the orders whose deadline has
        already passed (they can never be served and are rejected now)."""
        expired = [
            m for m in pending if self.instance.tasks[m].start_deadline_ts < now_ts
        ]
        expired_set = set(expired)
        window = [m for m in pending if m not in expired_set]
        # One vectorised pass builds the feasibility masks and marginal-value
        # matrix for the whole window (a cross_km call per leg kind) instead
        # of a nested Python loop over (task, driver) pairs.
        with obs_trace.span("candidates", window_size=len(window)):
            candidates_by_task = self._kernel.candidates_for_window(window, now_ts)
        live_tasks = [m for m in window if m in candidates_by_task]

        if not live_tasks:
            return {}, expired

        # Only drivers with at least one admissible pair become columns of
        # the assignment matrix (in fleet order, so ties resolve the same
        # regardless of how the candidate lists were produced).
        candidate_lookup: Dict[Tuple[int, str], Candidate] = {}
        participating: set = set()
        for m in live_tasks:
            for candidate in candidates_by_task[m]:
                if self.config.require_positive_margin and candidate.marginal_value <= 0:
                    continue
                participating.add(candidate.driver_id)
                candidate_lookup[(m, candidate.driver_id)] = candidate
        if not candidate_lookup:
            return {}, expired
        driver_ids = [driver_id for driver_id in states if driver_id in participating]
        driver_pos = {driver_id: j for j, driver_id in enumerate(driver_ids)}
        task_pos = {m: i for i, m in enumerate(live_tasks)}

        cost = np.full((len(live_tasks), len(driver_ids)), _INFEASIBLE)
        lookahead = self._lookahead
        if lookahead is not None and lookahead.lookahead_weight > 0.0:
            # Overlap-horizon term: bias each admissible pair by the forecast
            # pressure it creates (drop-off zone) minus the pressure it
            # consumes (driver's current zone).  The bias prices the matrix
            # only — the participation filter above and the committed profits
            # in :meth:`_commit` use the unbiased marginals, so only the
            # control window is ever committed.
            price_scale = float(
                np.mean([self.instance.tasks[m].price for m in live_tasks])
            )
            task_pressure = {
                m: lookahead.pressure_at(self.instance.tasks[m].destination)
                for m in live_tasks
            }
            driver_pressure = {
                driver_id: lookahead.pressure_at(states[driver_id].location)
                for driver_id in driver_ids
            }
            weight = lookahead.lookahead_weight * price_scale
            for (m, driver_id), candidate in candidate_lookup.items():
                bias = weight * (task_pressure[m] - driver_pressure[driver_id])
                cost[task_pos[m], driver_pos[driver_id]] = -(
                    candidate.marginal_value + bias
                )
        else:
            for (m, driver_id), candidate in candidate_lookup.items():
                cost[task_pos[m], driver_pos[driver_id]] = -candidate.marginal_value

        with obs_trace.span(
            "hungarian", tasks=len(live_tasks), drivers=len(driver_ids)
        ):
            rows, cols = optimize.linear_sum_assignment(cost)
        assigned: Dict[int, str] = {}
        for i, j in zip(rows, cols):
            if cost[i, j] >= _INFEASIBLE:
                continue
            m = live_tasks[i]
            driver_id = driver_ids[j]
            candidate = candidate_lookup[(m, driver_id)]
            self._commit(candidate, m, self.instance.tasks[m])
            assigned[m] = driver_id
        return assigned, expired

    def _commit(self, choice: Candidate, task_index: int, task: Task) -> None:
        service_cost = float(self.instance.task_network.service_costs[task_index])
        profit_delta = task.price - service_cost - choice.approach_cost
        choice.state.assign(
            task_index=task_index,
            pickup_location=task.source,
            dropoff_location=task.destination,
            dropoff_ts=choice.dropoff_ts,
            profit_delta=profit_delta,
            arrival_ts=choice.arrival_ts,
        )
        self._kernel.sync(choice.state)

    def _settle(self, state: DriverState) -> OnlineDriverRecord:
        profit = state.running_profit
        if state.served:
            final_leg = self._cost_model.leg(state.location, state.driver.destination)
            direct_leg = self._cost_model.driver_direct_leg(
                state.driver.source, state.driver.destination
            )
            profit = profit - final_leg.cost + direct_leg.cost
        return OnlineDriverRecord(
            driver_id=state.driver.driver_id,
            task_indices=tuple(state.served),
            profit=profit,
            arrival_times=tuple(state.arrival_times),
        )


def run_batched(
    instance: MarketInstance, window_s: float = 60.0, config: Optional[BatchConfig] = None
) -> OnlineOutcome:
    """Convenience wrapper around :class:`BatchedSimulator`."""
    if config is None:
        config = BatchConfig(window_s=window_s)
    return BatchedSimulator(instance, config).run()


def run_batched_stream(
    instance,
    arrival_batches: Iterable[Sequence[Task]],
    window_s: float = 60.0,
    config: Optional[BatchConfig] = None,
) -> OnlineOutcome:
    """Convenience wrapper around :meth:`BatchedSimulator.run_stream` for a
    :class:`~repro.market.streaming.StreamingMarketInstance`."""
    if config is None:
        config = BatchConfig(window_s=window_s)
    return BatchedSimulator(instance, config).run_stream(arrival_batches)
