"""Per-zone demand forecasting for rolling-horizon dispatch.

The rolling-horizon dispatcher (:mod:`repro.online.horizon`) needs an
estimate of *future* per-zone demand: how many ride requests will publish in
each zone of the service area over the next few dispatch windows.  Two
forecasters share one small protocol:

* :class:`EwmaDemandForecaster` — an exponentially-weighted moving average of
  the per-zone arrival counts observed so far.  Cheap, causal (it only ever
  sees windows that already published, so it works unchanged in true
  streaming), and exactly equal to the oracle on stationary demand.
* :class:`OracleDemandForecaster` — reads the true future counts off a known
  task table.  Scenario-compiled timelines know every arrival in advance, so
  tests use the oracle as ground truth for the EWMA and the horizon logic;
  it is unavailable in true streaming, where the future is unknown.

Both forecasters are deterministic functions of their inputs (the zone grid,
the observed/known tasks and the slot sequence), which is what lets horizon
dispatch keep the bit-identical executor-parity contracts: every worker
replays the same observations in the same order and therefore holds the same
forecast state.

Zoning is a :class:`ZoneGrid` — a fixed ``rows x cols`` split of the fleet's
padded bounding box.  The fleet is known at ``stream_begin`` in both the
replay and the streaming paths, so both derive the *same* grid before any
task arrives (deriving it from tasks would make the grid depend on how much
of the future has been seen, breaking stream == replay).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geo import BoundingBox, GeoPoint, bounding_box_of
from ..market.task import Task

__all__ = [
    "ZoneGrid",
    "DemandForecaster",
    "EwmaDemandForecaster",
    "OracleDemandForecaster",
    "publish_slot_of",
]


def publish_slot_of(publish_ts: float, first_publish: float, window_s: float) -> int:
    """The dispatch-window slot a publish time lands in.

    Mirrors the batched simulator's watermark arithmetic
    (:func:`repro.online.batch._publish_slot`) so forecaster slots line up
    exactly with dispatch windows.  Kept as a tiny local copy to avoid a
    circular import between the forecaster and the simulator.
    """
    return max(0, int((publish_ts - first_publish) // window_s))


class ZoneGrid:
    """A fixed ``rows x cols`` zoning of a service area.

    Thin wrapper over :meth:`BoundingBox.cell_index` that numbers zones
    row-major and pre-computes every zone centre.  Out-of-box points clamp to
    the nearest edge cell (the underlying ``cell_index`` already clamps), so
    the grid is total over all coordinates.
    """

    def __init__(self, bounding_box: BoundingBox, rows: int = 6, cols: int = 6) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.bounding_box = bounding_box
        self.rows = rows
        self.cols = cols
        self.centers: Tuple[GeoPoint, ...] = tuple(
            box.center for box in bounding_box.split(rows, cols)
        )

    @property
    def zone_count(self) -> int:
        return self.rows * self.cols

    def zone_of(self, location: GeoPoint) -> int:
        row, col = self.bounding_box.cell_index(location, self.rows, self.cols)
        return row * self.cols + col

    def counts_of(self, tasks: Iterable[Task]) -> np.ndarray:
        """Per-zone pickup counts of a task collection."""
        counts = np.zeros(self.zone_count, dtype=float)
        for task in tasks:
            counts[self.zone_of(task.source)] += 1.0
        return counts

    @classmethod
    def from_points(
        cls, points: Sequence[GeoPoint], rows: int = 6, cols: int = 6
    ) -> Optional["ZoneGrid"]:
        """Grid over the padded bounding box of ``points`` (``None`` when
        there are no points to bound)."""
        box = bounding_box_of(points)
        if box is None:
            return None
        return cls(box, rows, cols)


class DemandForecaster:
    """Protocol: observe each dispatch window's arrivals, predict future ones.

    ``observe(slot, tasks)`` must be called once per *published* dispatch
    window, in slot order; ``predict(slot)`` returns the expected per-zone
    pickup counts (a non-negative float vector of ``zone_count`` entries) for
    a future window ``slot``.
    """

    grid: ZoneGrid

    def observe(self, slot: int, tasks: Sequence[Task]) -> None:
        raise NotImplementedError

    def predict(self, slot: int) -> np.ndarray:
        raise NotImplementedError


class EwmaDemandForecaster(DemandForecaster):
    """Exponentially-weighted moving average of per-zone window counts.

    The state is initialised to the *first* observed window's counts rather
    than zeros, so on stationary demand (identical counts every window) the
    forecast equals the true per-window counts from the first prediction on —
    the property the test battery pins against the oracle.  Updates are
    convex combinations of non-negative vectors, so the forecast can never go
    negative.
    """

    def __init__(self, grid: ZoneGrid, alpha: float = 0.35) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.grid = grid
        self.alpha = alpha
        self._state: Optional[np.ndarray] = None
        self._last_slot: Optional[int] = None

    def observe(self, slot: int, tasks: Sequence[Task]) -> None:
        counts = self.grid.counts_of(tasks)
        if self._state is None:
            self._state = counts
        else:
            # Windows the watermark skipped (no arrivals published) count as
            # zero-demand observations, one per skipped slot, so the state
            # decays identically whether a quiet stretch was streamed or
            # replayed.
            gap = 0 if self._last_slot is None else max(0, slot - self._last_slot - 1)
            decay = (1.0 - self.alpha) ** gap
            self._state = self._state * decay
            self._state = (1.0 - self.alpha) * self._state + self.alpha * counts
        self._last_slot = slot

    def predict(self, slot: int) -> np.ndarray:
        if self._state is None:
            return np.zeros(self.grid.zone_count, dtype=float)
        return self._state


class OracleDemandForecaster(DemandForecaster):
    """Ground-truth forecaster over a fully known task table.

    Buckets every publishable task of a *compiled* (replay) instance into its
    dispatch-window slot up front; ``predict`` then reads the true counts.
    Only meaningful when the future is known — the streaming dispatcher
    rejects it at ``stream_begin``.
    """

    def __init__(self, grid: ZoneGrid, tasks: Sequence[Task], window_s: float) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.grid = grid
        self.window_s = window_s
        publishable = [t for t in tasks if t.is_publishable]
        self._by_slot: Dict[int, np.ndarray] = {}
        if publishable:
            first_publish = min(t.publish_ts for t in publishable)
            buckets: Dict[int, List[Task]] = {}
            for task in publishable:
                slot = publish_slot_of(task.publish_ts, first_publish, window_s)
                buckets.setdefault(slot, []).append(task)
            self._by_slot = {
                slot: grid.counts_of(batch) for slot, batch in buckets.items()
            }

    def observe(self, slot: int, tasks: Sequence[Task]) -> None:
        # The oracle already knows the future; observations are no-ops.
        return None

    def predict(self, slot: int) -> np.ndarray:
        counts = self._by_slot.get(slot)
        if counts is None:
            return np.zeros(self.grid.zone_count, dtype=float)
        return counts
