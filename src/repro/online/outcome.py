"""Result of an online simulation.

Produces the same metric vocabulary as :class:`repro.core.MarketSolution`
(total value, revenue, serve rate, per-driver averages) so that online and
offline algorithms can be compared side by side in the Fig. 5-9 experiments.

Online plans are *not* converted into offline task-map paths: a driver who
finishes a ride earlier than its drop-off deadline may legitimately chain a
task that the deadline-based task map rules out (Section V of the paper), so
profits are accounted from the drives actually simulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..market.instance import MarketInstance


@dataclass(frozen=True, slots=True)
class OnlineDriverRecord:
    """One driver's final record after an online simulation."""

    driver_id: str
    task_indices: Tuple[int, ...]
    profit: float
    #: When the driver reached each served task's pickup point, aligned
    #: entry-for-entry with ``task_indices`` (NaN for untracked commits);
    #: empty when the producing simulator does not track arrivals at all.
    #: The wait-time metrics skip untracked entries either way.
    arrival_times: Tuple[float, ...] = ()

    @property
    def task_count(self) -> int:
        return len(self.task_indices)


@dataclass(frozen=True)
class OnlineOutcome:
    """Aggregate outcome of one online simulation run."""

    instance: MarketInstance
    records: Tuple[OnlineDriverRecord, ...]
    rejected_tasks: Tuple[int, ...]
    dispatcher_name: str

    # ------------------------------------------------------------------
    # assignment views
    # ------------------------------------------------------------------
    def assignment(self) -> Dict[str, Tuple[int, ...]]:
        """``driver_id -> served task indices`` (drivers with work only)."""
        return {r.driver_id: r.task_indices for r in self.records if r.task_indices}

    def served_tasks(self) -> set[int]:
        served: set[int] = set()
        for record in self.records:
            served.update(record.task_indices)
        return served

    def record_for(self, driver_id: str) -> OnlineDriverRecord:
        for record in self.records:
            if record.driver_id == driver_id:
                return record
        raise KeyError(f"no record for driver {driver_id!r}")

    # ------------------------------------------------------------------
    # metrics (same vocabulary as MarketSolution)
    # ------------------------------------------------------------------
    @property
    def total_value(self) -> float:
        """Drivers' total profit achieved by the online algorithm."""
        return sum(record.profit for record in self.records)

    @property
    def served_count(self) -> int:
        return len(self.served_tasks())

    @property
    def serve_rate(self) -> float:
        if self.instance.task_count == 0:
            return 1.0
        return self.served_count / self.instance.task_count

    @property
    def total_revenue(self) -> float:
        prices = self.instance.task_network.prices
        return float(sum(prices[m] for m in self.served_tasks()))

    @property
    def active_driver_count(self) -> int:
        return sum(1 for record in self.records if record.task_indices)

    def revenue_per_driver(self) -> float:
        if self.instance.driver_count == 0:
            return 0.0
        return self.total_revenue / self.instance.driver_count

    # ------------------------------------------------------------------
    # wait-time metrics (publish -> pickup)
    # ------------------------------------------------------------------
    def wait_times_s(self) -> Dict[int, float]:
        """Per served task: seconds from publication until a driver arrived
        at the pickup point.

        Only tasks whose record tracked an arrival appear (all of them for
        the built-in simulators).  This is the latency half of the dispatch
        quality story that serve rate and revenue do not show — under
        trace-replay semantics the *ride* then starts at the recorded start
        time, but the customer's wait for a car ends at arrival — and the
        per-scenario comparison the scenario suite reports.
        """
        tasks = self.instance.tasks
        waits: Dict[int, float] = {}
        for record in self.records:
            for m, arrival_ts in zip(record.task_indices, record.arrival_times):
                if not math.isnan(arrival_ts):
                    waits[m] = arrival_ts - tasks[m].publish_ts
        return waits

    @property
    def total_wait_s(self) -> float:
        """Sum of all tracked publish->arrival waits (deterministic: summed
        in driver order — dict insertion order — so shard merges reproduce
        it bit for bit)."""
        return sum(self.wait_times_s().values())

    @property
    def mean_wait_s(self) -> float:
        """Mean publish->arrival wait over the tracked served tasks."""
        waits = self.wait_times_s()
        if not waits:
            return 0.0
        return sum(waits.values()) / len(waits)

    def tasks_per_driver(self) -> float:
        if self.instance.driver_count == 0:
            return 0.0
        return self.served_count / self.instance.driver_count

    def summary(self) -> Dict[str, float]:
        """Flat metric dictionary (same keys as ``MarketSolution.summary``)."""
        return {
            "total_value": self.total_value,
            "total_revenue": self.total_revenue,
            "served_count": float(self.served_count),
            "serve_rate": self.serve_rate,
            "revenue_per_driver": self.revenue_per_driver(),
            "tasks_per_driver": self.tasks_per_driver(),
            "active_drivers": float(self.active_driver_count),
            "rejected_tasks": float(len(self.rejected_tasks)),
            "mean_wait_s": self.mean_wait_s,
        }
