"""Travel-cost model for the market.

Section III-B of the paper defines, for driver ``n`` and tasks ``m, m'``:

* ``l_{n,m,m'}`` / ``c_{n,m,m'}`` — travel time / cost to drive *empty* from
  the destination of task ``m`` to the source of task ``m'``;
* ``l̂_{n,m}`` / ``ĉ_{n,m}`` — travel time / cost to drive the customer from
  the source to the destination of task ``m``;
* ``c_{n,0,-1}`` — the driver's original source-to-destination cost, which is
  credited back in the objective because she would drive it anyway.

The paper estimates all of these from distances and an average driving speed,
which makes them independent of the particular driver; this model therefore
exposes point-to-point estimates plus vectorised (NumPy) batch versions used
by the task-map builder to keep construction at city scale fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..geo import GeoPoint, TimeVaryingTravelModel, TravelModel, default_travel_model
from .task import Task


@dataclass(frozen=True, slots=True)
class Leg:
    """A single empty-drive leg between two locations."""

    time_s: float
    cost: float


class MarketCostModel:
    """Derives the ``l``/``c`` quantities of the paper from a travel model.

    The travel model may be a plain :class:`TravelModel` or a
    :class:`TimeVaryingTravelModel`.  Task quantities (``l̂_m`` / ``ĉ_m``)
    resolve the rates in effect at the task's pickup deadline
    (``start_deadline_ts``) — a pure function of the task and the model, so
    the streaming task maps' incremental-maintenance parity (incremental ==
    rebuild, bit for bit) holds with no extra bookkeeping.  For a plain
    model every timestamp resolves to the model itself, reproducing the
    historical outputs exactly.
    """

    def __init__(self, travel_model: TravelModel | TimeVaryingTravelModel | None = None) -> None:
        self.travel_model = travel_model or default_travel_model()
        self._time_indexed = hasattr(self.travel_model, "at")

    # ------------------------------------------------------------------
    # time indexing
    # ------------------------------------------------------------------
    def model_at(self, ts: Optional[float]) -> TravelModel:
        """The plain :class:`TravelModel` in effect at ``ts`` (the configured
        model itself when it is time-invariant or ``ts`` is ``None``)."""
        if ts is None or not self._time_indexed:
            return self.travel_model  # type: ignore[return-value]
        return self.travel_model.at(ts)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # point-to-point estimates (the paper's l / c)
    # ------------------------------------------------------------------
    def leg(self, origin: GeoPoint, destination: GeoPoint, ts: Optional[float] = None) -> Leg:
        """Empty-drive travel time and cost between two points at ``ts``."""
        model = self.model_at(ts)
        distance = model.distance_km(origin, destination)
        return Leg(
            time_s=model.time_for_distance_s(distance),
            cost=model.cost_for_distance(distance),
        )

    def task_duration_s(self, task: Task) -> float:
        """``l̂_m`` — time to drive the customer from source to destination.

        Uses the task's recorded trace distance when available (the paper
        derives it from the trip polyline), otherwise the travel model's
        estimate between the endpoints; rates are the ones in effect at the
        task's pickup deadline.
        """
        distance = self.task_distance_km(task)
        return self.model_at(task.start_deadline_ts).time_for_distance_s(distance)

    def task_cost(self, task: Task) -> float:
        """``ĉ_m`` — driving cost of serving the task."""
        return self.model_at(task.start_deadline_ts).cost_for_distance(
            self.task_distance_km(task)
        )

    def task_distance_km(self, task: Task) -> float:
        """The driven distance of the task (trace value or model estimate)."""
        if task.distance_km is not None:
            return task.distance_km
        return self.travel_model.distance_km(task.source, task.destination)

    def driver_direct_leg(self, source: GeoPoint, destination: GeoPoint) -> Leg:
        """``c_{n,0,-1}`` — the driver's own source-to-destination leg."""
        return self.leg(source, destination)

    # ------------------------------------------------------------------
    # vectorised batch estimates
    # ------------------------------------------------------------------
    def pairwise_leg_matrix(
        self,
        origins: Sequence[GeoPoint],
        destinations: Sequence[GeoPoint],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Times and costs for every (origin, destination) pair.

        Returns ``(times_s, costs)`` with shape ``(len(origins),
        len(destinations))``.  Distances come from the estimator's batch
        kernel, so the matrix matches the scalar :meth:`leg` values to
        floating-point round-off (historically this used an equirectangular
        approximation that could drift from the scalar path by ~0.1%).
        """
        distance_km = self.travel_model.estimator.cross_km(origins, destinations)
        times = distance_km / self.travel_model.speed_kmh * 3600.0
        costs = distance_km * self.travel_model.cost_per_km
        return times, costs

    def legs_from_point(
        self, origin: GeoPoint, destinations: Sequence[GeoPoint]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Times and costs from one origin to many destinations."""
        times, costs = self.pairwise_leg_matrix([origin], destinations)
        return times[0], costs[0]

    def legs_to_point(
        self, origins: Sequence[GeoPoint], destination: GeoPoint
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Times and costs from many origins to one destination."""
        times, costs = self.pairwise_leg_matrix(origins, [destination])
        return times[:, 0], costs[:, 0]
