"""Task (customer order) entity.

Section III-A of the paper: each task ``m`` has a publishing time ``t̄_m``, a
source ``s̄_m`` with estimated start time ``t̄⁻_m``, a destination ``d̄_m`` with
estimated end time ``t̄⁺_m`` (``t̄_m < t̄⁻_m < t̄⁺_m``), a price ``p_m``
calculated by the platform (the driver's payoff) and the customer's
willingness to pay ``b_m``.  A task is only published when ``p_m <= b_m``.

In the online scenario the estimated times act as deadlines: the task may
start before ``t̄⁻_m`` and finish before ``t̄⁺_m``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..geo import GeoPoint


@dataclass(frozen=True, slots=True)
class Task:
    """A customer order in the two-sided market."""

    task_id: str
    publish_ts: float
    source: GeoPoint
    destination: GeoPoint
    #: ``t̄⁻_m`` — deadline for the pickup.
    start_deadline_ts: float
    #: ``t̄⁺_m`` — deadline for the drop-off.
    end_deadline_ts: float
    #: ``p_m`` — driver payoff set by the platform's pricing mechanism.
    price: float
    #: ``b_m`` — customer's willingness to pay (defaults to the price, i.e.
    #: zero consumer surplus, when no WTP model is supplied).
    wtp: Optional[float] = None
    #: Driven distance from source to destination, if known from the trace.
    distance_km: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.publish_ts <= self.start_deadline_ts:
            raise ValueError(
                f"task {self.task_id!r}: publish time must not exceed start deadline"
            )
        if not self.start_deadline_ts < self.end_deadline_ts:
            raise ValueError(
                f"task {self.task_id!r}: start deadline must precede end deadline"
            )
        if self.price < 0:
            raise ValueError(f"task {self.task_id!r}: price must be non-negative")
        if self.wtp is not None and self.wtp < 0:
            raise ValueError(f"task {self.task_id!r}: wtp must be non-negative")
        if self.distance_km is not None and self.distance_km < 0:
            raise ValueError(f"task {self.task_id!r}: distance must be non-negative")

    @property
    def valuation(self) -> float:
        """``b_m`` if a WTP was supplied, otherwise ``p_m``."""
        return self.price if self.wtp is None else self.wtp

    @property
    def consumer_surplus(self) -> float:
        """``b_m - p_m`` — non-negative for any publishable task."""
        return self.valuation - self.price

    @property
    def is_publishable(self) -> bool:
        """Individual rationality of the customer: ``p_m <= b_m``."""
        return self.price <= self.valuation + 1e-9

    @property
    def ride_window_s(self) -> float:
        """``t̄⁺_m − t̄⁻_m`` — the window available to complete the ride."""
        return self.end_deadline_ts - self.start_deadline_ts

    def with_price(self, price: float, wtp: Optional[float] = None) -> "Task":
        """Copy of this task re-priced by a different pricing policy."""
        return replace(self, price=price, wtp=self.wtp if wtp is None else wtp)
