"""Task-map construction (Section III-B, Eqs. 1-3).

The paper builds, for every driver, a directed acyclic graph whose nodes are
her virtual source (label 0), her virtual destination (label -1) and every
task; an arc means "the driver can take the head task after finishing the
tail task in time".

A naive per-driver construction is ``O(M²)`` per driver (``O(N·M²)`` in
total).  Two observations keep this fast at the scale of the paper's
evaluation (1000 tasks, up to 300 drivers):

* Eq. (1) — whether a task can be completed inside its own time window —
  and the leg condition of Eq. (3) — whether one task's destination can
  reach another task's source before its pickup deadline — do not depend on
  the driver at all (travel times come from distances and a shared average
  speed).  They are computed once and shared in a :class:`TaskNetwork`.
* Only the source-arc and sink-arc conditions of Eqs. (2)-(3) depend on the
  driver; they are vectorised per driver in :class:`DriverTaskMap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .cost import Leg, MarketCostModel
from .driver import Driver
from .task import Task

#: Node label of the driver's virtual source (the paper's node ``0``).
SOURCE_NODE = "source"
#: Node label of the driver's virtual destination (the paper's node ``-1``).
SINK_NODE = "sink"


@dataclass(frozen=True)
class TaskNetwork:
    """Driver-independent part of the task maps, shared by all drivers.

    Attributes
    ----------
    tasks:
        The market's tasks, in index order (task ``m`` is ``tasks[m]``).
    durations_s:
        ``l̂_m`` — in-task travel time for each task.
    service_costs:
        ``ĉ_m`` — in-task driving cost for each task.
    prices / valuations:
        ``p_m`` and ``b_m`` for each task.
    servable:
        Eq. (1): whether the task can be completed within its own window.
    successors / leg_times / leg_costs:
        For every task ``m``, the tasks ``m'`` reachable after it (the
        driver-independent part of Eq. (3)) with the empty-drive leg time and
        cost of the connection.
    topo_order:
        Task indices sorted by pickup deadline — a valid topological order of
        every driver's task map, because every arc goes from an earlier
        drop-off deadline to a later pickup deadline.
    """

    tasks: Tuple[Task, ...]
    durations_s: np.ndarray
    service_costs: np.ndarray
    prices: np.ndarray
    valuations: np.ndarray
    servable: np.ndarray
    successors: Tuple[np.ndarray, ...]
    leg_times: Tuple[np.ndarray, ...]
    leg_costs: Tuple[np.ndarray, ...]
    topo_order: np.ndarray

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def arc_count(self) -> int:
        """Number of driver-independent task-to-task arcs."""
        return int(sum(len(s) for s in self.successors))

    def successor_leg(self, m: int, m_prime: int) -> Optional[Leg]:
        """The empty-drive leg of arc ``m -> m_prime`` if it exists."""
        succ = self.successors[m]
        positions = np.nonzero(succ == m_prime)[0]
        if positions.size == 0:
            return None
        j = int(positions[0])
        return Leg(time_s=float(self.leg_times[m][j]), cost=float(self.leg_costs[m][j]))


def build_task_network(
    tasks: Sequence[Task],
    cost_model: MarketCostModel,
) -> TaskNetwork:
    """Build the shared :class:`TaskNetwork` for a collection of tasks."""
    task_tuple = tuple(tasks)
    count = len(task_tuple)
    if count == 0:
        empty = np.zeros(0)
        return TaskNetwork(
            tasks=task_tuple,
            durations_s=empty,
            service_costs=empty,
            prices=empty,
            valuations=empty,
            servable=np.zeros(0, dtype=bool),
            successors=tuple(),
            leg_times=tuple(),
            leg_costs=tuple(),
            topo_order=np.zeros(0, dtype=int),
        )

    durations = np.array([cost_model.task_duration_s(t) for t in task_tuple])
    service_costs = np.array([cost_model.task_cost(t) for t in task_tuple])
    prices = np.array([t.price for t in task_tuple])
    valuations = np.array([t.valuation for t in task_tuple])
    start_deadlines = np.array([t.start_deadline_ts for t in task_tuple])
    end_deadlines = np.array([t.end_deadline_ts for t in task_tuple])

    # Eq. (1): the ride itself must fit inside the task's own time window.
    servable = durations <= (end_deadlines - start_deadlines) + 1e-9

    # Driver-independent part of Eq. (3): destination of m can reach the
    # source of m' before m's drop-off deadline turns into m''s pickup
    # deadline.
    destinations = [t.destination for t in task_tuple]
    sources = [t.source for t in task_tuple]
    leg_time_matrix, leg_cost_matrix = cost_model.pairwise_leg_matrix(destinations, sources)
    slack = start_deadlines[None, :] - end_deadlines[:, None]
    connectable = leg_time_matrix <= slack + 1e-9
    np.fill_diagonal(connectable, False)
    connectable &= servable[None, :]
    connectable &= servable[:, None]

    successors: List[np.ndarray] = []
    leg_times: List[np.ndarray] = []
    leg_costs: List[np.ndarray] = []
    for m in range(count):
        succ = np.nonzero(connectable[m])[0]
        successors.append(succ)
        leg_times.append(leg_time_matrix[m, succ])
        leg_costs.append(leg_cost_matrix[m, succ])

    return TaskNetwork(
        tasks=task_tuple,
        durations_s=durations,
        service_costs=service_costs,
        prices=prices,
        valuations=valuations,
        servable=servable,
        successors=tuple(successors),
        leg_times=tuple(leg_times),
        leg_costs=tuple(leg_costs),
        topo_order=np.argsort(start_deadlines, kind="stable"),
    )


@dataclass(frozen=True)
class DriverTaskMap:
    """One driver's task map: the per-driver part of Eqs. (2)-(3).

    Attributes
    ----------
    driver:
        The driver this map belongs to.
    network:
        The shared driver-independent :class:`TaskNetwork`.
    entry_ok:
        Eq. (2): tasks with an arc from the driver's source node.
    exit_ok:
        Tasks with an arc to the driver's destination node (the driver can
        still reach her destination in time after dropping the customer off).
    source_leg_times / source_leg_costs:
        Empty-drive legs from the driver's source to every task's source.
    sink_leg_times / sink_leg_costs:
        Empty-drive legs from every task's destination to the driver's
        destination.
    direct_leg:
        ``c_{n,0,-1}`` — the driver's own source-to-destination leg.
    """

    driver: Driver
    network: TaskNetwork
    entry_ok: np.ndarray
    exit_ok: np.ndarray
    source_leg_times: np.ndarray
    source_leg_costs: np.ndarray
    sink_leg_times: np.ndarray
    sink_leg_costs: np.ndarray
    direct_leg: Leg

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def task_count(self) -> int:
        return self.network.task_count

    def usable_tasks(self) -> np.ndarray:
        """Indices of tasks that can appear anywhere on one of this driver's
        paths (they must at least allow the driver to reach her sink)."""
        return np.nonzero(self.exit_ok)[0]

    def entry_tasks(self) -> np.ndarray:
        """Indices of tasks reachable directly from the driver's source."""
        return np.nonzero(self.entry_ok)[0]

    def has_any_task(self) -> bool:
        return bool(self.entry_ok.any())

    def successors_of(self, m: int, allowed: Optional[np.ndarray] = None) -> np.ndarray:
        """Tasks that may follow task ``m`` on this driver's path.

        ``allowed`` is an optional boolean mask (e.g. tasks not yet taken by
        other drivers in the greedy algorithm).
        """
        succ = self.network.successors[m]
        mask = self.exit_ok[succ]
        if allowed is not None:
            mask = mask & allowed[succ]
        return succ[mask]

    def arc_exists(self, tail, head) -> bool:
        """Whether the task map contains the arc ``tail -> head``.

        ``tail``/``head`` are task indices or the :data:`SOURCE_NODE` /
        :data:`SINK_NODE` sentinels.
        """
        if tail == SOURCE_NODE and head == SINK_NODE:
            return True
        if tail == SOURCE_NODE:
            return bool(self.entry_ok[int(head)])
        if head == SINK_NODE:
            return bool(self.exit_ok[int(tail)])
        tail_i, head_i = int(tail), int(head)
        if not self.exit_ok[head_i]:
            return False
        return bool(np.any(self.network.successors[tail_i] == head_i))

    # ------------------------------------------------------------------
    # path evaluation
    # ------------------------------------------------------------------
    def is_feasible_path(self, path: Sequence[int]) -> bool:
        """Whether ``path`` (a sequence of task indices) is a valid task list:
        it must start with an entry arc, follow existing arcs, and end with an
        exit arc.  The empty path is always feasible."""
        if len(path) == 0:
            return True
        if len(set(path)) != len(path):
            return False
        if not self.entry_ok[path[0]]:
            return False
        for tail, head in zip(path[:-1], path[1:]):
            if not self.arc_exists(tail, head):
                return False
        return bool(self.exit_ok[path[-1]])

    def path_profit(self, path: Sequence[int], use_valuation: bool = False) -> float:
        """The profit ``r_π`` of a task list (Eq. (4) restricted to one driver).

        ``sum(value_m - ĉ_m) - (source leg + connecting legs + sink leg)
        + c_{n,0,-1}``.  With ``use_valuation=True`` the customer valuation
        ``b_m`` replaces the price ``p_m`` (the social-welfare objective of
        Eq. (6)).  The empty path has profit exactly 0.
        """
        if len(path) == 0:
            return 0.0
        net = self.network
        values = net.valuations if use_valuation else net.prices
        total = 0.0
        for m in path:
            total += float(values[m] - net.service_costs[m])
        total -= float(self.source_leg_costs[path[0]])
        for tail, head in zip(path[:-1], path[1:]):
            leg = net.successor_leg(tail, head)
            if leg is None:
                raise ValueError(f"path uses a non-existent arc {tail} -> {head}")
            total -= leg.cost
        total -= float(self.sink_leg_costs[path[-1]])
        total += self.direct_leg.cost
        return total

    def path_excess_cost(self, path: Sequence[int]) -> float:
        """The excess driving cost of a task list (the parenthesised term of
        Eq. (4) for this driver): everything she drives beyond her original
        source-to-destination plan."""
        if len(path) == 0:
            return 0.0
        net = self.network
        cost = float(self.source_leg_costs[path[0]])
        for m in path:
            cost += float(net.service_costs[m])
        for tail, head in zip(path[:-1], path[1:]):
            leg = net.successor_leg(tail, head)
            if leg is None:
                raise ValueError(f"path uses a non-existent arc {tail} -> {head}")
            cost += leg.cost
        cost += float(self.sink_leg_costs[path[-1]])
        return cost - self.direct_leg.cost


def build_driver_task_map(
    driver: Driver,
    network: TaskNetwork,
    cost_model: MarketCostModel,
) -> DriverTaskMap:
    """Build one driver's task map on top of the shared network."""
    count = network.task_count
    direct_leg = cost_model.driver_direct_leg(driver.source, driver.destination)
    if count == 0:
        empty = np.zeros(0)
        empty_bool = np.zeros(0, dtype=bool)
        return DriverTaskMap(
            driver=driver,
            network=network,
            entry_ok=empty_bool,
            exit_ok=empty_bool,
            source_leg_times=empty,
            source_leg_costs=empty,
            sink_leg_times=empty,
            sink_leg_costs=empty,
            direct_leg=direct_leg,
        )

    sources = [t.source for t in network.tasks]
    destinations = [t.destination for t in network.tasks]
    start_deadlines = np.array([t.start_deadline_ts for t in network.tasks])
    end_deadlines = np.array([t.end_deadline_ts for t in network.tasks])

    source_times, source_costs = cost_model.legs_from_point(driver.source, sources)
    sink_times, sink_costs = cost_model.legs_to_point(destinations, driver.destination)

    # Eq. (2)/(3) driver-dependent conditions.
    exit_ok = network.servable & (sink_times <= (driver.end_ts - end_deadlines) + 1e-9)
    entry_ok = exit_ok & (source_times <= (start_deadlines - driver.start_ts) + 1e-9)

    return DriverTaskMap(
        driver=driver,
        network=network,
        entry_ok=entry_ok,
        exit_ok=exit_ok,
        source_leg_times=source_times,
        source_leg_costs=source_costs,
        sink_leg_times=sink_times,
        sink_leg_costs=sink_costs,
        direct_leg=direct_leg,
    )


def build_driver_task_maps(
    drivers: Iterable[Driver],
    network: TaskNetwork,
    cost_model: MarketCostModel,
) -> Dict[str, DriverTaskMap]:
    """Task maps for a whole fleet, keyed by driver id.

    The source/sink legs of *all* drivers are computed with two fleet-wide
    batch calls (``N x M`` matrices) instead of two batch calls per driver,
    which removes the per-driver Python overhead from instance construction.
    The per-driver numbers are identical to :func:`build_driver_task_map`.
    """
    fleet = list(drivers)
    seen = set()
    for driver in fleet:
        if driver.driver_id in seen:
            raise ValueError(f"duplicate driver id {driver.driver_id!r}")
        seen.add(driver.driver_id)
    if not fleet:
        return {}
    if network.task_count == 0:
        return {
            d.driver_id: build_driver_task_map(d, network, cost_model) for d in fleet
        }

    sources = [t.source for t in network.tasks]
    destinations = [t.destination for t in network.tasks]
    start_deadlines = np.array([t.start_deadline_ts for t in network.tasks])
    end_deadlines = np.array([t.end_deadline_ts for t in network.tasks])

    # Chunking the fleet bounds peak memory at O(chunk x M) while keeping
    # the batched-leg win; 512 drivers x 100k tasks is ~400 MB transient,
    # versus the whole-fleet matrices growing without bound.
    chunk_size = 512
    maps: Dict[str, DriverTaskMap] = {}
    for lo in range(0, len(fleet), chunk_size):
        chunk = fleet[lo : lo + chunk_size]
        source_times, source_costs = cost_model.pairwise_leg_matrix(
            [d.source for d in chunk], sources
        )  # (chunk, M)
        sink_times, sink_costs = cost_model.pairwise_leg_matrix(
            destinations, [d.destination for d in chunk]
        )  # (M, chunk)
        for j, driver in enumerate(chunk):
            src_t = np.ascontiguousarray(source_times[j])
            src_c = np.ascontiguousarray(source_costs[j])
            snk_t = np.ascontiguousarray(sink_times[:, j])
            snk_c = np.ascontiguousarray(sink_costs[:, j])
            exit_ok = network.servable & (snk_t <= (driver.end_ts - end_deadlines) + 1e-9)
            entry_ok = exit_ok & (src_t <= (start_deadlines - driver.start_ts) + 1e-9)
            maps[driver.driver_id] = DriverTaskMap(
                driver=driver,
                network=network,
                entry_ok=entry_ok,
                exit_ok=exit_ok,
                source_leg_times=src_t,
                source_leg_costs=src_c,
                sink_leg_times=snk_t,
                sink_leg_costs=snk_c,
                direct_leg=cost_model.driver_direct_leg(driver.source, driver.destination),
            )
    return maps
