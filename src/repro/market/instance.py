"""The market instance: the complete input of the optimisation problem.

A :class:`MarketInstance` bundles the ``N`` drivers, the ``M`` tasks and the
travel-cost model, lazily builds the shared task network and the per-driver
task maps, and provides the conversion from raw trace trips to priced tasks
(the pipeline of Section VI-A of the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence

from ..geo import TravelModel, default_travel_model
from ..pricing import LinearPricing, PricingPolicy, RideQuote, WtpModel
from ..trace.records import TripRecord
from .cost import MarketCostModel
from .driver import Driver
from .task import Task
from .taskmap import (
    DriverTaskMap,
    TaskNetwork,
    build_driver_task_maps,
    build_task_network,
)


@dataclass(frozen=True)
class MarketInstance:
    """An immutable snapshot of a two-sided ride-sharing market."""

    drivers: tuple[Driver, ...]
    tasks: tuple[Task, ...]
    cost_model: MarketCostModel

    def __post_init__(self) -> None:
        driver_ids = [d.driver_id for d in self.drivers]
        if len(set(driver_ids)) != len(driver_ids):
            raise ValueError("driver ids must be unique")
        task_ids = [t.task_id for t in self.tasks]
        if len(set(task_ids)) != len(task_ids):
            raise ValueError("task ids must be unique")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        drivers: Iterable[Driver],
        tasks: Iterable[Task],
        cost_model: Optional[MarketCostModel] = None,
    ) -> "MarketInstance":
        """Create an instance, defaulting to the standard travel model."""
        return cls(
            drivers=tuple(drivers),
            tasks=tuple(tasks),
            cost_model=cost_model or MarketCostModel(),
        )

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def driver_count(self) -> int:
        """``N`` — the number of drivers."""
        return len(self.drivers)

    @property
    def task_count(self) -> int:
        """``M`` — the number of tasks."""
        return len(self.tasks)

    # ------------------------------------------------------------------
    # derived structures (cached)
    # ------------------------------------------------------------------
    @cached_property
    def task_network(self) -> TaskNetwork:
        """The shared driver-independent task network."""
        return build_task_network(self.tasks, self.cost_model)

    @cached_property
    def task_maps(self) -> Dict[str, DriverTaskMap]:
        """Per-driver task maps keyed by driver id (Eqs. 1-3), built with the
        fleet-batched constructor (two ``N x M`` leg matrices)."""
        return build_driver_task_maps(self.drivers, self.task_network, self.cost_model)

    def task_map(self, driver_id: str) -> DriverTaskMap:
        """The task map of one driver."""
        try:
            return self.task_maps[driver_id]
        except KeyError:
            raise KeyError(f"unknown driver id {driver_id!r}") from None

    def task_index(self, task_id: str) -> int:
        """Index of a task by id."""
        for index, task in enumerate(self.tasks):
            if task.task_id == task_id:
                return index
        raise KeyError(f"unknown task id {task_id!r}")

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def with_drivers(self, drivers: Iterable[Driver]) -> "MarketInstance":
        """A new instance with a different driver fleet but the same tasks.

        Used by the driver-count sweeps of Figs. 5-9; the (expensive) shared
        task network is reused when it has already been built.
        """
        new = MarketInstance(drivers=tuple(drivers), tasks=self.tasks, cost_model=self.cost_model)
        if "task_network" in self.__dict__:
            new.__dict__["task_network"] = self.task_network
        return new

    def with_tasks(self, tasks: Iterable[Task]) -> "MarketInstance":
        """A new instance with a different task set but the same drivers."""
        return MarketInstance(drivers=self.drivers, tasks=tuple(tasks), cost_model=self.cost_model)

    def subset_tasks(self, count: int) -> "MarketInstance":
        """Keep the ``count`` earliest tasks by publish time."""
        if count < 0:
            raise ValueError("count must be non-negative")
        ordered = sorted(self.tasks, key=lambda t: (t.publish_ts, t.task_id))
        return self.with_tasks(ordered[:count])


def tasks_from_trips(
    trips: Sequence[TripRecord],
    pricing: Optional[PricingPolicy] = None,
    wtp_model: Optional[WtpModel] = None,
    publish_lead_s: float = 600.0,
    seed: int = 11,
) -> List[Task]:
    """Convert trace trips into market tasks (the Section VI-A pipeline).

    Each trip becomes a task whose pickup deadline is the trip's recorded
    start time, whose drop-off deadline is its recorded end time, and whose
    publish time precedes the pickup deadline by ``publish_lead_s`` (riders
    request some minutes ahead; ten minutes by default, which also bounds how
    far away an online dispatcher can pull a driver from).  The price comes
    from ``pricing`` (Eq. 15 by default) and, when a ``wtp_model`` is given,
    the customer valuation is sampled from it.
    """
    if publish_lead_s < 0:
        raise ValueError("publish_lead_s must be non-negative")
    policy = pricing or LinearPricing()
    rng = random.Random(seed)
    tasks: List[Task] = []
    for trip in trips:
        if trip.duration_s <= 0:
            continue
        quote = RideQuote(
            origin=trip.origin,
            destination=trip.destination,
            distance_km=trip.distance_km,
            duration_s=trip.duration_s,
            request_ts=trip.start_ts - publish_lead_s,
        )
        price = policy.price(quote)
        wtp = wtp_model.valuation(quote, price, rng) if wtp_model is not None else None
        tasks.append(
            Task(
                task_id=f"task-{trip.trip_id}",
                publish_ts=trip.start_ts - publish_lead_s,
                source=trip.origin,
                destination=trip.destination,
                start_deadline_ts=trip.start_ts,
                end_deadline_ts=trip.end_ts,
                price=price,
                wtp=wtp,
                distance_km=trip.distance_km,
            )
        )
    return tasks


def market_from_trace(
    trips: Sequence[TripRecord],
    drivers: Iterable[Driver],
    pricing: Optional[PricingPolicy] = None,
    wtp_model: Optional[WtpModel] = None,
    travel_model: Optional[TravelModel] = None,
) -> MarketInstance:
    """One-call construction of a market instance from a trip trace."""
    cost_model = MarketCostModel(travel_model or default_travel_model())
    tasks = tasks_from_trips(trips, pricing=pricing, wtp_model=wtp_model)
    return MarketInstance.create(drivers=drivers, tasks=tasks, cost_model=cost_model)
