"""Merged market graph ``G`` and graph diagnostics.

Section IV-A of the paper merges all drivers' task maps into one big DAG
``G`` containing every driver source, every driver destination and every task
node; the offline problem is then a maximum-value node-disjoint-paths problem
on ``G``.  The greedy solver works directly on the vectorised task maps for
speed, but the explicit :mod:`networkx` graph built here is useful for
inspection, for computing the diameter ``D`` that appears in the
``1/(D+1)`` approximation ratio, and for cross-checking path feasibility in
tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import networkx as nx

from .instance import MarketInstance
from .taskmap import SINK_NODE, SOURCE_NODE, DriverTaskMap


def driver_source(driver_id: str) -> Tuple[str, str]:
    """Graph node representing driver ``driver_id``'s source (paper label 0)."""
    return ("driver_source", driver_id)


def driver_sink(driver_id: str) -> Tuple[str, str]:
    """Graph node representing driver ``driver_id``'s destination (label -1)."""
    return ("driver_sink", driver_id)


def task_node(index: int) -> Tuple[str, int]:
    """Graph node representing task ``index``."""
    return ("task", index)


def build_driver_graph(task_map: DriverTaskMap) -> nx.DiGraph:
    """One driver's task map as an explicit :class:`networkx.DiGraph`.

    Arc attributes carry the empty-drive leg cost (``cost``) and time
    (``time_s``); task nodes carry the price, service cost and deadlines.
    """
    graph = nx.DiGraph()
    driver_id = task_map.driver.driver_id
    src = driver_source(driver_id)
    dst = driver_sink(driver_id)
    graph.add_node(src, kind="source", driver_id=driver_id)
    graph.add_node(dst, kind="sink", driver_id=driver_id)
    graph.add_edge(src, dst, cost=task_map.direct_leg.cost, time_s=task_map.direct_leg.time_s)

    net = task_map.network
    usable = set(int(m) for m in task_map.usable_tasks())
    for m in usable:
        task = net.tasks[m]
        graph.add_node(
            task_node(m),
            kind="task",
            task_id=task.task_id,
            price=float(net.prices[m]),
            service_cost=float(net.service_costs[m]),
            start_deadline_ts=task.start_deadline_ts,
            end_deadline_ts=task.end_deadline_ts,
        )
        graph.add_edge(
            task_node(m),
            dst,
            cost=float(task_map.sink_leg_costs[m]),
            time_s=float(task_map.sink_leg_times[m]),
        )
    for m in (int(x) for x in task_map.entry_tasks()):
        graph.add_edge(
            src,
            task_node(m),
            cost=float(task_map.source_leg_costs[m]),
            time_s=float(task_map.source_leg_times[m]),
        )
    for m in usable:
        for j, m_prime in enumerate(net.successors[m]):
            m_prime = int(m_prime)
            if m_prime not in usable:
                continue
            graph.add_edge(
                task_node(m),
                task_node(m_prime),
                cost=float(net.leg_costs[m][j]),
                time_s=float(net.leg_times[m][j]),
            )
    return graph


def build_market_graph(instance: MarketInstance) -> nx.DiGraph:
    """The merged DAG ``G`` over all drivers (Section IV-A)."""
    graph = nx.DiGraph()
    for driver in instance.drivers:
        driver_graph = build_driver_graph(instance.task_map(driver.driver_id))
        graph = nx.compose(graph, driver_graph)
    return graph


def market_diameter(instance: MarketInstance) -> int:
    """``D`` — the maximum number of task nodes on any feasible path.

    This is the quantity in the paper's ``1/(D+1)`` approximation ratio: the
    maximum number of tasks a single driver could chain during one working
    period.  Computed by a longest-path (in hop count over task nodes) DP on
    the merged DAG, which is acyclic by construction.
    """
    best = 0
    for driver in instance.drivers:
        best = max(best, driver_diameter(instance.task_map(driver.driver_id)))
    return best


def driver_diameter(task_map: DriverTaskMap) -> int:
    """Maximum number of tasks on any feasible path of one driver's map."""
    net = task_map.network
    usable = task_map.exit_ok
    # longest chain ending at each task, following topological order
    longest: Dict[int, int] = {}
    best = 0
    for m in (int(x) for x in net.topo_order):
        if not usable[m]:
            continue
        start = 1 if task_map.entry_ok[m] else 0
        if start == 0 and m not in longest:
            # not yet proven reachable from the driver's source
            reachable_len = 0
        else:
            reachable_len = max(start, longest.get(m, 0))
        if reachable_len == 0:
            continue
        best = max(best, reachable_len)
        for m_prime in (int(x) for x in task_map.successors_of(m)):
            longest[m_prime] = max(longest.get(m_prime, 0), reachable_len + 1)
    return best


def graph_summary(instance: MarketInstance) -> Dict[str, float]:
    """Summary statistics of the merged market graph (for reports/examples)."""
    network = instance.task_network
    total_entry_arcs = sum(int(tm.entry_ok.sum()) for tm in instance.task_maps.values())
    total_exit_arcs = sum(int(tm.exit_ok.sum()) for tm in instance.task_maps.values())
    return {
        "drivers": float(instance.driver_count),
        "tasks": float(instance.task_count),
        "servable_tasks": float(int(network.servable.sum())),
        "task_to_task_arcs": float(network.arc_count()),
        "driver_entry_arcs": float(total_entry_arcs),
        "driver_exit_arcs": float(total_exit_arcs),
        "diameter": float(market_diameter(instance)),
    }
