"""Market core: drivers, tasks, cost model, task maps and market instances."""

from .cost import Leg, MarketCostModel
from .driver import Driver
from .graph import (
    build_driver_graph,
    build_market_graph,
    driver_diameter,
    graph_summary,
    market_diameter,
)
from .instance import MarketInstance, market_from_trace, tasks_from_trips
from .streaming import StreamingMarketInstance
from .task import Task
from .taskmap import (
    SINK_NODE,
    SOURCE_NODE,
    DriverTaskMap,
    TaskNetwork,
    build_driver_task_map,
    build_driver_task_maps,
    build_task_network,
)

__all__ = [
    "Driver",
    "Task",
    "Leg",
    "MarketCostModel",
    "MarketInstance",
    "StreamingMarketInstance",
    "market_from_trace",
    "tasks_from_trips",
    "TaskNetwork",
    "DriverTaskMap",
    "build_task_network",
    "build_driver_task_map",
    "build_driver_task_maps",
    "SOURCE_NODE",
    "SINK_NODE",
    "build_driver_graph",
    "build_market_graph",
    "market_diameter",
    "driver_diameter",
    "graph_summary",
]
