"""Driver (worker) entity.

Section III-A of the paper: each driver ``n`` reveals her travel plan before
she starts working — a source location ``s_n`` at time ``t⁻_n`` and a
destination location ``d_n`` at time ``t⁺_n`` with ``t⁻_n < t⁺_n``.  The
special case ``s_n == d_n`` is the "home-work-home" working model; distinct
endpoints correspond to the "hitchhiking" model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..geo import GeoPoint


@dataclass(frozen=True, slots=True)
class Driver:
    """A driver's daily travel plan.

    Attributes
    ----------
    driver_id:
        Stable identifier of the driver.
    source:
        Where the driver starts her working period (e.g. home address).
    destination:
        Where she must end her working period.
    start_ts:
        ``t⁻_n`` — earliest time she is on the road, in seconds.
    end_ts:
        ``t⁺_n`` — latest time by which she must reach her destination.
    """

    driver_id: str
    source: GeoPoint
    destination: GeoPoint
    start_ts: float
    end_ts: float

    def __post_init__(self) -> None:
        if self.end_ts <= self.start_ts:
            raise ValueError(
                f"driver {self.driver_id!r}: end_ts must be strictly after start_ts"
            )

    @property
    def working_window(self) -> Tuple[float, float]:
        """``(t⁻_n, t⁺_n)`` as a tuple."""
        return (self.start_ts, self.end_ts)

    @property
    def working_duration_s(self) -> float:
        """Length of the working period in seconds."""
        return self.end_ts - self.start_ts

    @property
    def is_home_work_home(self) -> bool:
        """Whether the driver's source and destination coincide."""
        return self.source == self.destination

    def with_window(self, start_ts: float, end_ts: float) -> "Driver":
        """A copy of this driver with a different working window."""
        return Driver(
            driver_id=self.driver_id,
            source=self.source,
            destination=self.destination,
            start_ts=start_ts,
            end_ts=end_ts,
        )
