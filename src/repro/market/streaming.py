"""A streaming market instance with incremental task-map maintenance.

:class:`~repro.market.instance.MarketInstance` is an immutable snapshot: its
``with_tasks`` slicer throws away the shared task network and every
per-driver task map, so feeding an order *stream* through it rebuilds
``O((N + M) · M)`` state on every arrival batch.  The fleet-batched builders
of :mod:`repro.market.taskmap` make the marginal work of one batch small —
only the *new columns* of every matrix change — and
:class:`StreamingMarketInstance` exploits exactly that:

* the shared :class:`~repro.market.taskmap.TaskNetwork` grows by the new
  tasks' rows/columns only (two block leg-matrix calls instead of the full
  ``M x M`` matrix);
* every driver's :class:`~repro.market.taskmap.DriverTaskMap` is extended by
  the new columns with two fleet-batched block calls (``N x new`` instead of
  ``N x M``), chunked exactly like the full builder;
* the arithmetic replicates :func:`~repro.market.taskmap.build_task_network` /
  :func:`~repro.market.taskmap.build_driver_task_maps` element for element
  (the batch kernels are elementwise), so every array is **bit-identical** to
  a from-scratch rebuild — the equivalence property tests in
  ``tests/market/test_streaming.py`` pin this.

The cost of appending a batch of ``B`` tasks to an instance holding ``M``
tasks and ``N`` drivers is ``O((N + M) · B)`` versus ``O((N + M) · M)`` for
the rebuild a plain ``with_tasks`` forces — sublinear in the instance size,
which is what lets the online simulators consume a full day as a stream.

``append_tasks`` also reports which drivers are *affected* — gained at least
one entry-feasible task — so streaming consumers (dispatch loops, re-solvers)
know whom to reconsider without diffing the maps themselves.

Parity contracts
----------------

* **Incremental == rebuild, bit for bit.**  After any sequence of
  ``append_tasks`` batches, every maintained array equals a from-scratch
  :class:`~repro.market.instance.MarketInstance` over the same inputs under
  ``np.array_equal`` — not approximately (hypothesis-pinned in
  ``tests/market/test_streaming.py``).
* **Stream == replay.**  Because of the above, any simulator consuming a
  streaming instance live (``BatchedSimulator.run_stream`` and the
  distributed ``solve_stream`` shard sessions built on it) produces exactly
  the outcome a replay over the completed task set would — the property the
  online and distributed layers' parity tests rest on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .cost import MarketCostModel
from .driver import Driver
from .instance import MarketInstance
from .task import Task
from .taskmap import (
    DriverTaskMap,
    TaskNetwork,
    build_driver_task_maps,
    build_task_network,
)

#: Fleet chunk bounding peak memory of the batched column extension, matching
#: the full builder's chunking (the values are chunk-size independent).
_FLEET_CHUNK = 512


class StreamingMarketInstance:
    """A market instance whose task set grows in publish-ordered batches.

    Exposes the read API of :class:`~repro.market.instance.MarketInstance`
    (``drivers`` / ``tasks`` / ``cost_model`` / ``task_network`` /
    ``task_maps`` / ``task_map`` / counts), so solvers and simulators consume
    it unchanged; :meth:`append_tasks` is the streaming entry point.
    """

    def __init__(
        self,
        drivers: Iterable[Driver],
        cost_model: Optional[MarketCostModel] = None,
        tasks: Iterable[Task] = (),
    ) -> None:
        self._drivers: Tuple[Driver, ...] = tuple(drivers)
        driver_ids = [d.driver_id for d in self._drivers]
        if len(set(driver_ids)) != len(driver_ids):
            raise ValueError("driver ids must be unique")
        self._cost_model = cost_model or MarketCostModel()
        self._tasks: List[Task] = []
        self._tasks_tuple: Optional[Tuple[Task, ...]] = ()
        self._task_ids: set = set()
        self._network: TaskNetwork = build_task_network((), self._cost_model)
        self._maps: Dict[str, DriverTaskMap] = build_driver_task_maps(
            self._drivers, self._network, self._cost_model
        )
        initial = tuple(tasks)
        if initial:
            self.append_tasks(initial)

    @classmethod
    def from_instance(cls, instance: MarketInstance) -> "StreamingMarketInstance":
        """Seed a stream with an existing instance's drivers and tasks."""
        return cls(instance.drivers, instance.cost_model, instance.tasks)

    # ------------------------------------------------------------------
    # MarketInstance read API
    # ------------------------------------------------------------------
    @property
    def drivers(self) -> Tuple[Driver, ...]:
        return self._drivers

    @property
    def tasks(self) -> Tuple[Task, ...]:
        # Cached between appends: the simulators subscript this property per
        # pending task per window, so rebuilding an O(M) tuple on every
        # access would make a long stream quadratic.
        if self._tasks_tuple is None:
            self._tasks_tuple = tuple(self._tasks)
        return self._tasks_tuple

    @property
    def cost_model(self) -> MarketCostModel:
        return self._cost_model

    @property
    def driver_count(self) -> int:
        return len(self._drivers)

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def task_network(self) -> TaskNetwork:
        return self._network

    @property
    def task_maps(self) -> Dict[str, DriverTaskMap]:
        return self._maps

    def task_map(self, driver_id: str) -> DriverTaskMap:
        try:
            return self._maps[driver_id]
        except KeyError:
            raise KeyError(f"unknown driver id {driver_id!r}") from None

    def task_index(self, task_id: str) -> int:
        for index, task in enumerate(self._tasks):
            if task.task_id == task_id:
                return index
        raise KeyError(f"unknown task id {task_id!r}")

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> MarketInstance:
        """An immutable :class:`MarketInstance` view of the current state.

        The incrementally maintained network and maps are *shared* with the
        snapshot (they are exactly what the snapshot would lazily build), so
        taking one is O(M) for the task tuple, never a rebuild.
        """
        instance = MarketInstance(
            drivers=self._drivers, tasks=tuple(self._tasks), cost_model=self._cost_model
        )
        instance.__dict__["task_network"] = self._network
        instance.__dict__["task_maps"] = self._maps
        return instance

    def rebuild(self) -> MarketInstance:
        """A from-scratch :class:`MarketInstance` over the same inputs (the
        reference the incremental state must match bit for bit)."""
        return MarketInstance(
            drivers=self._drivers, tasks=tuple(self._tasks), cost_model=self._cost_model
        )

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def append_tasks(self, new_tasks: Iterable[Task]) -> Tuple[str, ...]:
        """Append a batch of tasks, extending the network and every task map
        incrementally.

        Returns the ids of the *affected* drivers: those for whom at least
        one of the new tasks is entry-feasible (appears in their
        :meth:`~repro.market.taskmap.DriverTaskMap.entry_tasks`).
        """
        batch = tuple(new_tasks)
        if not batch:
            return ()
        for task in batch:
            if task.task_id in self._task_ids:
                raise ValueError(f"duplicate task id {task.task_id!r}")
        if len({t.task_id for t in batch}) != len(batch):
            raise ValueError("duplicate task id inside the appended batch")

        old_count = self._network.task_count
        self._network = self._extend_network(batch)
        affected = self._extend_maps(batch, old_count)
        self._tasks.extend(batch)
        self._tasks_tuple = None
        self._task_ids.update(t.task_id for t in batch)
        return affected

    # ------------------------------------------------------------------
    # incremental construction internals
    # ------------------------------------------------------------------
    def _extend_network(self, batch: Tuple[Task, ...]) -> TaskNetwork:
        """The old network plus the new tasks' rows and columns.

        Replicates :func:`build_task_network` block-wise: the ``old -> new``
        and ``new -> all`` leg blocks are the only parts of the full pairwise
        matrix that involve a new task, and the batch kernels are elementwise,
        so every stored value matches the full rebuild exactly.
        """
        net = self._network
        cost_model = self._cost_model
        old_count = net.task_count
        all_tasks = tuple(net.tasks) + batch

        durations_new = np.array([cost_model.task_duration_s(t) for t in batch])
        service_costs_new = np.array([cost_model.task_cost(t) for t in batch])
        prices_new = np.array([t.price for t in batch])
        valuations_new = np.array([t.valuation for t in batch])
        sdl_new = np.array([t.start_deadline_ts for t in batch])
        edl_new = np.array([t.end_deadline_ts for t in batch])
        servable_new = durations_new <= (edl_new - sdl_new) + 1e-9

        sdl_all = np.concatenate(
            [np.array([t.start_deadline_ts for t in net.tasks]), sdl_new]
        ) if old_count else sdl_new
        edl_old = np.array([t.end_deadline_ts for t in net.tasks])
        servable_all = np.concatenate([net.servable, servable_new])

        sources_new = [t.source for t in batch]
        destinations_new = [t.destination for t in batch]
        sources_all = [t.source for t in all_tasks]

        successors = list(net.successors)
        leg_times = list(net.leg_times)
        leg_costs = list(net.leg_costs)

        if old_count:
            # old -> new arcs: destinations of old tasks to sources of new.
            destinations_old = [t.destination for t in net.tasks]
            time_block, cost_block = cost_model.pairwise_leg_matrix(
                destinations_old, sources_new
            )  # (old, B)
            connectable = time_block <= (sdl_new[None, :] - edl_old[:, None]) + 1e-9
            connectable &= servable_new[None, :]
            connectable &= net.servable[:, None]
            for m in range(old_count):
                extra = np.nonzero(connectable[m])[0]
                if extra.size == 0:
                    continue
                successors[m] = np.concatenate([successors[m], old_count + extra])
                leg_times[m] = np.concatenate([leg_times[m], time_block[m, extra]])
                leg_costs[m] = np.concatenate([leg_costs[m], cost_block[m, extra]])

        # new -> all arcs: destinations of new tasks to every source.
        time_block, cost_block = cost_model.pairwise_leg_matrix(
            destinations_new, sources_all
        )  # (B, old + B)
        connectable = time_block <= (sdl_all[None, :] - edl_new[:, None]) + 1e-9
        for i in range(len(batch)):
            connectable[i, old_count + i] = False  # no self-arc
        connectable &= servable_all[None, :]
        connectable &= servable_new[:, None]
        for i in range(len(batch)):
            succ = np.nonzero(connectable[i])[0]
            successors.append(succ)
            leg_times.append(time_block[i, succ])
            leg_costs.append(cost_block[i, succ])

        return TaskNetwork(
            tasks=all_tasks,
            durations_s=np.concatenate([net.durations_s, durations_new]),
            service_costs=np.concatenate([net.service_costs, service_costs_new]),
            prices=np.concatenate([net.prices, prices_new]),
            valuations=np.concatenate([net.valuations, valuations_new]),
            servable=servable_all,
            successors=tuple(successors),
            leg_times=tuple(leg_times),
            leg_costs=tuple(leg_costs),
            topo_order=np.argsort(sdl_all, kind="stable"),
        )

    def _extend_maps(self, batch: Tuple[Task, ...], old_count: int) -> Tuple[str, ...]:
        """Extend every driver's task map by the new columns (fleet-batched,
        chunked like :func:`build_driver_task_maps`) and collect the drivers
        that gained an entry-feasible task."""
        network = self._network
        cost_model = self._cost_model
        fleet = self._drivers
        if not fleet:
            return ()

        sources_new = [t.source for t in batch]
        destinations_new = [t.destination for t in batch]
        sdl_new = np.array([t.start_deadline_ts for t in batch])
        edl_new = np.array([t.end_deadline_ts for t in batch])
        servable_new = network.servable[old_count:]

        affected: List[str] = []
        maps: Dict[str, DriverTaskMap] = {}
        for lo in range(0, len(fleet), _FLEET_CHUNK):
            chunk = fleet[lo : lo + _FLEET_CHUNK]
            source_times, source_costs = cost_model.pairwise_leg_matrix(
                [d.source for d in chunk], sources_new
            )  # (chunk, B)
            sink_times, sink_costs = cost_model.pairwise_leg_matrix(
                destinations_new, [d.destination for d in chunk]
            )  # (B, chunk)
            for j, driver in enumerate(chunk):
                old_map = self._maps[driver.driver_id]
                src_t = np.ascontiguousarray(source_times[j])
                src_c = np.ascontiguousarray(source_costs[j])
                snk_t = np.ascontiguousarray(sink_times[:, j])
                snk_c = np.ascontiguousarray(sink_costs[:, j])
                exit_new = servable_new & (snk_t <= (driver.end_ts - edl_new) + 1e-9)
                entry_new = exit_new & (src_t <= (sdl_new - driver.start_ts) + 1e-9)
                if entry_new.any():
                    affected.append(driver.driver_id)
                maps[driver.driver_id] = DriverTaskMap(
                    driver=driver,
                    network=network,
                    entry_ok=np.concatenate([old_map.entry_ok, entry_new]),
                    exit_ok=np.concatenate([old_map.exit_ok, exit_new]),
                    source_leg_times=np.concatenate([old_map.source_leg_times, src_t]),
                    source_leg_costs=np.concatenate([old_map.source_leg_costs, src_c]),
                    sink_leg_times=np.concatenate([old_map.sink_leg_times, snk_t]),
                    sink_leg_costs=np.concatenate([old_map.sink_leg_costs, snk_c]),
                    direct_leg=old_map.direct_leg,
                )
        self._maps = maps
        return tuple(affected)
