"""Command-line interface.

Installed as the ``repro`` console script (also reachable as
``python -m repro``).  Sub-commands cover the everyday workflow:

``generate-trace``
    Write a synthetic Porto-like day of trips as a Porto-format CSV.
``build-market``
    Generate trips + drivers, price them, and save the market instance as JSON.
``solve``
    Load a market JSON and solve it with one of the algorithms (greedy,
    maxMargin, nearest, batched, exact), optionally saving the solution.
    ``--stream`` consumes the orders as a live publish-ordered stream, and
    ``--executor process --grid 2x2`` fans the stream out to per-shard
    streaming sessions on a persistent worker pool.  ``--horizon``/
    ``--overlap``/``--forecast`` turn the batched dispatcher into the
    rolling-horizon one (lookahead pricing + proactive repositioning).
``bound``
    Compute an upper bound (LP relaxation, Lagrangian or exact) for a market.
``info``
    Print the structural summary of a market (sizes, arcs, diameter).
``experiment``
    Re-run the paper's experiments (fig3-4, fig5, fig6-9, ablations or all).
``scenario``
    The declarative workload engine: ``scenario list`` names the built-in
    city days, ``scenario run`` compiles one and runs it offline or as a
    live sharded stream, ``scenario compare`` sweeps scenarios x dispatch
    modes on one warm worker pool and prints the metrics comparison.
``serve``
    Run the long-lived asyncio dispatch service against a synthetic
    multi-city order flood (a soak): orders stream through the ingestion
    gateway, epochs rotate on warm pools, and p50/p99 end-to-end dispatch
    latency plus the parity-15 verdict are printed (and optionally written
    as JSON).  Ctrl-C tears the service down cleanly — streams closed,
    worker pools shut down — and exits 130.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import BoundKind, compute_upper_bound, format_metric_dict, format_table
from .distributed import EXECUTOR_POLICIES, TRANSPORTS, PersistentWorkerPool
from .experiments import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    TINY_SCALE,
    ExperimentConfig,
    run_distribution_experiment,
    run_everything,
    run_fig5,
    run_market_insight_sweep,
    run_partition_ablation,
    run_surge_ablation,
)
from .io import load_instance, save_instance, save_solution
from .market import graph_summary, market_from_trace
from .offline import exact_optimum, greedy_assignment
from .online import BatchedSimulator, MaxMarginDispatcher, NearestDispatcher, OnlineSimulator
from .pricing import FareSchedule, LinearPricing
from .trace import WorkingModel, generate_drivers, generate_trace, write_porto_csv

_SCALES = {"tiny": TINY_SCALE, "default": DEFAULT_SCALE, "paper": PAPER_SCALE}
_BOUNDS = {
    "lp": BoundKind.LP_RELAXATION,
    "lagrangian": BoundKind.LAGRANGIAN,
    "exact": BoundKind.EXACT,
}


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    """The flight-recorder flag shared by solve / scenario run / serve."""
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="record a span trace of the whole run (coordinator and worker "
        "side) and write it as Chrome trace-event JSON — load it at "
        "https://ui.perfetto.dev or chrome://tracing",
    )


def _add_horizon_args(parser: argparse.ArgumentParser) -> None:
    """The rolling-horizon dispatch knobs shared by the streaming commands."""
    parser.add_argument(
        "--horizon", type=int, default=1,
        help="rolling-horizon control window in dispatch windows (1 = myopic; "
        ">1 biases each window's assignment toward forecast future demand "
        "and proactively repositions idle drivers)",
    )
    parser.add_argument(
        "--overlap", type=int, default=0,
        help="coarse overlap horizon beyond the control window, in blocks of "
        "windows; solved in expectation, never committed",
    )
    parser.add_argument(
        "--forecast", choices=["ewma", "oracle"], default="ewma",
        help="per-zone demand forecaster feeding the lookahead ('oracle' "
        "reads the compiled timeline and only works on replayed — not "
        "live-streamed — runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimization framework for online ride-sharing markets (ICDCS 2017 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="enable structured logging on the 'repro' logger tree at this "
        "level (DEBUG/INFO/WARNING/...); worker-process records are relayed "
        "to the parent.  Defaults to the REPRO_LOG environment variable",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace = subparsers.add_parser("generate-trace", help="write a synthetic day of trips as CSV")
    trace.add_argument("--trips", type=int, default=1000, help="number of trips to generate")
    trace.add_argument("--seed", type=int, default=2017)
    trace.add_argument("--output", required=True, help="output CSV path (Porto format)")

    market = subparsers.add_parser("build-market", help="build and save a market instance")
    market.add_argument("--trips", type=int, default=250)
    market.add_argument("--drivers", type=int, default=50)
    market.add_argument("--seed", type=int, default=2017)
    market.add_argument(
        "--working-model",
        choices=[m.value for m in WorkingModel],
        default=WorkingModel.HITCHHIKING.value,
    )
    market.add_argument("--surge", type=float, default=1.2, help="static surge multiplier")
    market.add_argument("--output", required=True, help="output JSON path")

    solve = subparsers.add_parser("solve", help="solve a saved market instance")
    solve.add_argument("--market", required=True, help="market JSON produced by build-market")
    solve.add_argument(
        "--algorithm",
        choices=["greedy", "maxMargin", "nearest", "batched", "exact", "lp", "auto"],
        default="greedy",
    )
    solve.add_argument("--batch-window", type=float, default=60.0, help="batched: window in seconds")
    _add_horizon_args(solve)
    solve.add_argument(
        "--gap-threshold", type=float, default=0.02,
        help="lp/auto: relative optimality-gap threshold below which 'auto' "
        "keeps the greedy solution instead of solving the LP",
    )
    solve.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="batched only: consume the orders as a live publish-ordered stream "
        "(incremental per-shard streaming instances; bit-identical to the "
        "offline replay on a 1x1 grid)",
    )
    solve.add_argument(
        "--executor",
        choices=sorted(EXECUTOR_POLICIES),
        default="serial",
        help="streaming fan-out policy: 'serial' replays in-process, 'thread'/"
        "'process' route shard deltas to a persistent worker pool "
        "(merged results are executor-independent)",
    )
    solve.add_argument(
        "--grid",
        default="1x1",
        metavar="RxC",
        help="streaming shard grid over the market's bounding box, e.g. 2x2 "
        "(finer grids parallelise further but lose cross-shard trips)",
    )
    solve.add_argument(
        "--transport", choices=sorted(TRANSPORTS), default="pickle",
        help="streaming wire format: 'shm' ships shard arrays through "
        "shared memory on the process executor (results are "
        "transport-independent)",
    )
    solve.add_argument("--output", help="optional path to save the solution JSON")
    _add_trace_arg(solve)

    bound = subparsers.add_parser("bound", help="compute an upper bound for a market")
    bound.add_argument("--market", required=True)
    bound.add_argument("--kind", choices=sorted(_BOUNDS), default="lp")

    info = subparsers.add_parser("info", help="print the structural summary of a market")
    info.add_argument("--market", required=True)

    experiment = subparsers.add_parser("experiment", help="re-run the paper's experiments")
    experiment.add_argument(
        "--figure",
        choices=["fig3-4", "fig5", "fig6-9", "ablations", "all"],
        default="all",
    )
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="default")
    experiment.add_argument(
        "--executor",
        choices=sorted(EXECUTOR_POLICIES),
        default="serial",
        help="distributed fan-out for the partitioning ablation "
        "('process' uses every core; merged solutions are executor-independent)",
    )
    experiment.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the partitioning ablation as a live order stream on the "
        "persistent shard pool instead of offline greedy re-solves",
    )
    experiment.add_argument(
        "--scenarios",
        metavar="NAMES",
        help="--figure all only: append a scenario-suite comparison over the "
        "comma-separated built-in scenarios ('all' for the whole library), "
        "sharing the run's warm worker pool",
    )

    scenario = subparsers.add_parser(
        "scenario", help="declarative city workloads (list / run / compare)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="name and describe the built-in scenarios")

    scenario_run = scenario_sub.add_parser(
        "run", help="compile one scenario and run it end to end"
    )
    scenario_run.add_argument("--name", required=True, help="a built-in scenario name")
    scenario_run.add_argument(
        "--mode",
        choices=["offline", "stream"],
        default="stream",
        help="offline sharded solve() or live sharded solve_stream()",
    )
    scenario_run.add_argument(
        "--solver",
        choices=["greedy", "nearest", "maxMargin", "lp", "auto"],
        default="greedy",
        help="offline mode only: the shard solver ('lp'/'auto' run the exact "
        "tier and report per-scenario optimality gaps)",
    )
    scenario_run.add_argument(
        "--gap-threshold", type=float, default=0.02,
        help="lp/auto solvers: relative gap below which 'auto' keeps greedy "
        "on a shard",
    )
    scenario_run.add_argument("--trips", type=int, help="rescale the scenario's demand volume")
    scenario_run.add_argument("--drivers", type=int, help="rescale the scenario's fleet")
    scenario_run.add_argument("--seed", type=int, help="override the scenario's seed")
    scenario_run.add_argument(
        "--executor", choices=sorted(EXECUTOR_POLICIES), default="serial",
        help="shard fan-out policy (results are executor-independent)",
    )
    scenario_run.add_argument(
        "--grid", default="2x2", metavar="RxC",
        help="shard grid over the scenario's service region",
    )
    _add_horizon_args(scenario_run)
    _add_trace_arg(scenario_run)

    scenario_compare = scenario_sub.add_parser(
        "compare", help="sweep scenarios x dispatch modes on one warm pool"
    )
    scenario_compare.add_argument(
        "--names",
        help="comma-separated scenario names (default: every built-in scenario)",
    )
    scenario_compare.add_argument(
        "--solvers", default="greedy",
        help="comma-separated offline shard solvers (empty string to skip offline)",
    )
    scenario_compare.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="include the streamed batched-Hungarian mode",
    )
    scenario_compare.add_argument("--trips", type=int, help="rescale every scenario's demand")
    scenario_compare.add_argument("--drivers", type=int, help="rescale every scenario's fleet")
    scenario_compare.add_argument(
        "--executor", choices=sorted(EXECUTOR_POLICIES), default="serial",
        help="worker-pool policy the whole sweep shares",
    )
    scenario_compare.add_argument(
        "--grid", default="2x2", metavar="RxC",
        help="shard grid over each scenario's service region",
    )
    scenario_compare.add_argument(
        "--bounds",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the exact tier once per scenario and stamp optimality-gap "
        "columns (greedy/lp revenue, Lagrangian bound) onto every row",
    )
    scenario_compare.add_argument(
        "--gap-threshold", type=float, default=0.02,
        help="relative gap below which the 'auto' solver keeps greedy on a shard",
    )
    _add_horizon_args(scenario_compare)

    serve = subparsers.add_parser(
        "serve",
        help="run the asyncio dispatch service against a synthetic order soak",
    )
    serve.add_argument(
        "--orders", type=int, default=20_000,
        help="total orders across all cities and epochs",
    )
    serve.add_argument("--cities", type=int, default=2, help="tenant city count")
    serve.add_argument(
        "--epochs", type=int, default=2,
        help="stream rotations per city (bounds per-stream task-network size)",
    )
    serve.add_argument("--drivers", type=int, default=24, help="fleet size per city")
    serve.add_argument(
        "--executor", choices=sorted(EXECUTOR_POLICIES), default="serial",
        help="per-city worker-pool policy",
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="pool width per city (pooled policies)"
    )
    serve.add_argument(
        "--transport", choices=sorted(TRANSPORTS), default="pickle",
        help="per-city pool wire format ('shm' = zero-copy shared memory on "
        "the process executor; outcomes are transport-independent)",
    )
    serve.add_argument(
        "--backend", default=None,
        help="compute backend for pool workers (e.g. 'numpy', 'numba'; "
        "default: numpy)",
    )
    serve.add_argument(
        "--grid", default="2x2", metavar="RxC", help="shard grid per city"
    )
    serve.add_argument(
        "--window", type=float, default=120.0, help="dispatch-window length in seconds"
    )
    serve.add_argument(
        "--backpressure", type=int, default=8,
        help="max per-shard window-queue depth before ingestion pauses",
    )
    serve.add_argument(
        "--max-batch", type=int, default=512,
        help="ship a window in slices of at most this many orders",
    )
    serve.add_argument("--seed", type=int, default=2017, help="soak synthesis seed")
    serve.add_argument(
        "--parity-epochs", type=int, default=1,
        help="epochs per city to verify against the offline replay (-1 for all)",
    )
    serve.add_argument(
        "--report-json", metavar="PATH",
        help="also write the full soak report as JSON",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus /metrics and JSON /health on 127.0.0.1:PORT "
        "for the duration of the soak",
    )
    _add_trace_arg(serve)

    return parser


# ----------------------------------------------------------------------
# sub-command implementations
# ----------------------------------------------------------------------
def _cmd_generate_trace(args: argparse.Namespace) -> int:
    trips = generate_trace(trip_count=args.trips, seed=args.seed)
    count = write_porto_csv(trips, args.output)
    print(f"wrote {count} trips to {args.output}")
    return 0


def _cmd_build_market(args: argparse.Namespace) -> int:
    trips = generate_trace(trip_count=args.trips, seed=args.seed)
    drivers = generate_drivers(
        count=args.drivers,
        working_model=WorkingModel(args.working_model),
        seed=args.seed + 1,
    )
    pricing = LinearPricing(schedule=FareSchedule(), alpha=args.surge)
    instance = market_from_trace(trips, drivers, pricing=pricing)
    save_instance(instance, args.output)
    print(
        f"saved market with {instance.task_count} tasks and {instance.driver_count} drivers "
        f"to {args.output}"
    )
    return 0


def _parse_grid(text: str) -> tuple:
    try:
        rows_text, cols_text = text.lower().split("x", 1)
        rows, cols = int(rows_text), int(cols_text)
    except ValueError:
        raise SystemExit(f"invalid --grid {text!r}; expected ROWSxCOLS, e.g. 2x2")
    if rows < 1 or cols < 1:
        raise SystemExit(f"invalid --grid {text!r}; rows and cols must be >= 1")
    return rows, cols


def _batch_config(args: argparse.Namespace, window_s: float):
    """A :class:`BatchConfig` from the CLI's window + horizon knobs, with
    validation errors surfaced as clean CLI errors instead of tracebacks."""
    from .online.batch import BatchConfig

    try:
        return BatchConfig(
            window_s=window_s,
            horizon=args.horizon,
            overlap=args.overlap,
            forecast=args.forecast,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def _cmd_solve_stream(args: argparse.Namespace, instance) -> int:
    """``solve --stream``: live windowed dispatch on the sharded pool."""
    from .distributed import DistributedCoordinator, SpatialPartitioner
    from .geo import bounding_box_of

    rows, cols = _parse_grid(args.grid)
    points = [d.source for d in instance.drivers] + [d.destination for d in instance.drivers]
    points += [t.source for t in instance.tasks] + [t.destination for t in instance.tasks]
    region = bounding_box_of(points)
    if region is None:
        raise SystemExit("market is empty; nothing to stream")
    with DistributedCoordinator(
        SpatialPartitioner(region, rows, cols),
        executor=args.executor,
        transport=args.transport,
    ) as coordinator:
        try:
            result = coordinator.solve_stream(
                instance, config=_batch_config(args, args.batch_window)
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    report = result.report
    dispatch = "myopic" if args.horizon <= 1 else f"horizon={args.horizon}"
    print(
        f"algorithm: batched (streamed, {args.executor} executor, "
        f"{dispatch} dispatch, {report.transport} transport)"
    )
    print(
        f"shards: {report.shard_count} ({rows}x{cols} grid), "
        f"workers: {report.worker_count}, batches: {report.batch_count}, "
        f"wall clock: {report.wall_clock_s:.2f}s"
    )
    print(format_metric_dict(result.solution.summary()))
    if args.output:
        save_solution(result.solution, args.output, algorithm="batched-stream")
        print(f"solution written to {args.output}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.market)
    if args.stream and args.algorithm != "batched":
        raise SystemExit("--stream requires --algorithm batched")
    if args.algorithm != "batched" and (args.horizon != 1 or args.overlap != 0):
        raise SystemExit("--horizon/--overlap require --algorithm batched")
    if not args.stream and (args.executor != "serial" or args.grid != "1x1"):
        raise SystemExit("--executor and --grid only apply to --stream solves")
    if args.stream:
        return _cmd_solve_stream(args, instance)
    bounds = None
    if args.algorithm == "greedy":
        result = greedy_assignment(instance)
        summary = result.summary()
    elif args.algorithm == "exact":
        result = exact_optimum(instance).solution
        summary = result.summary()
    elif args.algorithm in ("lp", "auto"):
        from .offline import solve_exact_tier

        result, bounds = solve_exact_tier(
            instance, mode=args.algorithm, gap_threshold=args.gap_threshold
        )
        summary = result.summary()
    elif args.algorithm == "batched":
        outcome = BatchedSimulator(instance, _batch_config(args, args.batch_window)).run()
        result, summary = outcome, outcome.summary()
    else:
        dispatcher = MaxMarginDispatcher() if args.algorithm == "maxMargin" else NearestDispatcher()
        outcome = OnlineSimulator(instance, dispatcher).run()
        result, summary = outcome, outcome.summary()

    print(f"algorithm: {args.algorithm}")
    if bounds is not None:
        print(f"exact tier chose: {bounds.chosen_solver}")
        print(format_metric_dict(bounds.as_dict()))
    print(format_metric_dict(summary))
    if args.output:
        if hasattr(result, "plans"):
            save_solution(result, args.output, algorithm=args.algorithm)
        else:
            from .io import outcome_to_dict
            import json

            from pathlib import Path

            Path(args.output).write_text(
                json.dumps(outcome_to_dict(result), indent=2), encoding="utf-8"
            )
        print(f"solution written to {args.output}")
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    instance = load_instance(args.market)
    value = compute_upper_bound(instance, _BOUNDS[args.kind])
    print(f"{args.kind} upper bound: {value:.4f}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    instance = load_instance(args.market)
    print(format_metric_dict(graph_summary(instance)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]
    config = ExperimentConfig(scale=scale)
    if args.scenarios and args.figure != "all":
        raise SystemExit("--scenarios requires --figure all")
    if args.figure == "all":
        scenarios = _parse_scenario_names(args.scenarios or None)
        # One warm worker pool for every distributed solve in the run: the
        # partitioning ablation's whole grid sweep (and the scenario suite,
        # when requested) reuses the same forked workers instead of paying
        # executor startup per grid point.
        with PersistentWorkerPool(executor=args.executor) as pool:
            print(
                run_everything(
                    scale=scale,
                    partition_executor=args.executor,
                    stream=args.stream,
                    pool=pool,
                    scenarios=scenarios,
                ).render()
            )
        return 0
    if args.figure == "fig3-4":
        print(run_distribution_experiment(config).render())
        return 0
    if args.figure == "fig5":
        print(run_fig5(config=config).render())
        return 0
    if args.figure == "fig6-9":
        print(run_market_insight_sweep(config=config).render_all())
        return 0
    if args.figure == "ablations":
        print(run_surge_ablation(config=config).render())
        print()
        with PersistentWorkerPool(executor=args.executor) as pool:
            print(
                run_partition_ablation(
                    config=config, executor=args.executor, stream=args.stream, pool=pool
                ).render()
            )
        return 0
    raise AssertionError(f"unhandled figure choice {args.figure!r}")


def _parse_scenario_names(text: Optional[str]) -> Optional[list]:
    """Split a comma-separated scenario-name list, tolerating whitespace and
    failing with a clean CLI error (not a traceback) on unknown names.
    ``None`` input stays ``None``; ``"all"`` resolves to the whole library.
    """
    if text is None:
        return None
    from .scenarios import get_scenario, scenario_names

    if text.strip() == "all":
        return scenario_names()
    names = [token.strip() for token in text.split(",") if token.strip()]
    for name in names:
        try:
            get_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    return names


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .scenarios import (
        BUILTIN_SCENARIOS,
        compile_scenario,
        get_scenario,
        run_scenario_suite,
    )

    if args.scenario_command == "list":
        width = max(len(name) for name in BUILTIN_SCENARIOS)
        for name, spec in BUILTIN_SCENARIOS.items():
            events = ", ".join(type(e).__name__ for e in spec.events)
            print(f"{name.ljust(width)}  [{events}]")
            print(f"{' ' * width}  {spec.description}")
        return 0

    if args.scenario_command == "run":
        try:
            spec = get_scenario(args.name).with_scale(args.trips, args.drivers)
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"error: {exc.args[0]}")
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
        compiled = compile_scenario(spec)
        rows, cols = _parse_grid(args.grid)
        print(
            f"scenario: {spec.name} — {spec.description}\n"
            f"compiled: {len(compiled.trips)} trips, {compiled.instance.task_count} "
            f"tasks, {compiled.instance.driver_count} drivers "
            f"(checksum {compiled.checksum()[:12]})"
        )
        from .distributed import DistributedCoordinator, SpatialPartitioner

        with DistributedCoordinator(
            SpatialPartitioner(spec.region, rows, cols),
            solver_name=args.solver,
            executor=args.executor,
            gap_threshold=args.gap_threshold,
        ) as coordinator:
            if args.mode == "offline":
                result = coordinator.solve(compiled.instance)
                print(f"mode: offline-{args.solver} ({args.executor}, {rows}x{cols} grid)")
                report = result.report
                if report.bounds_reported:
                    print(
                        "bounds: greedy "
                        f"{report.greedy_revenue:.4f} <= lp {report.lp_revenue:.4f} "
                        f"<= bound {report.upper_bound:.4f} "
                        f"(gap {report.optimality_gap:.4%})"
                    )
                print(format_metric_dict(result.solution.summary()))
            else:
                try:
                    result = coordinator.solve_stream(
                        compiled.instance,
                        compiled.arrival_batches(),
                        config=_batch_config(args, spec.window_s),
                    )
                except ValueError as exc:
                    raise SystemExit(f"error: {exc.args[0]}")
                report = result.report
                mode = "stream-batched" if args.horizon <= 1 else (
                    f"stream-horizon[h={args.horizon},ov={args.overlap},"
                    f"forecast={args.forecast}]"
                )
                print(
                    f"mode: {mode} ({args.executor}, {rows}x{cols} grid), "
                    f"{report.batch_count} batches, mean wait "
                    f"{report.mean_wait_s:.1f}s, wall {report.wall_clock_s:.2f}s"
                )
                print(format_metric_dict(result.solution.summary()))
        return 0

    if args.scenario_command == "compare":
        from .scenarios import OFFLINE_SOLVERS

        names = _parse_scenario_names(args.names)
        solvers = tuple(s.strip() for s in args.solvers.split(",") if s.strip())
        for solver in solvers:
            if solver not in OFFLINE_SOLVERS:
                raise SystemExit(
                    f"error: unknown solver {solver!r}; expected a subset of "
                    f"{list(OFFLINE_SOLVERS)}"
                )
        rows, cols = _parse_grid(args.grid)
        scenarios = None
        if names is not None or args.trips is not None or args.drivers is not None:
            from .scenarios import scenario_names

            try:
                scenarios = [
                    get_scenario(name).with_scale(args.trips, args.drivers)
                    for name in (names if names is not None else scenario_names())
                ]
            except ValueError as exc:
                raise SystemExit(f"error: {exc.args[0]}")
        try:
            suite = run_scenario_suite(
                scenarios,
                solvers=solvers,
                stream=args.stream,
                rows=rows,
                cols=cols,
                executor=args.executor,
                bounds=args.bounds,
                gap_threshold=args.gap_threshold,
                horizon=args.horizon,
                overlap=args.overlap,
                forecast=args.forecast,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
        print(suite.render())
        return 0

    raise AssertionError(f"unhandled scenario command {args.scenario_command!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the asyncio dispatch service under a synthetic soak.

    The service owns one coordinator + one persistent worker pool per city;
    teardown is unconditional (the service's async context manager closes
    every stream and pool even on Ctrl-C, which exits 130 without orphaning
    worker processes).
    """
    import json
    import multiprocessing

    from .service import SoakConfig, run_soak

    rows, cols = _parse_grid(args.grid)
    config = SoakConfig(
        orders=args.orders,
        cities=args.cities,
        epochs=args.epochs,
        drivers_per_city=args.drivers,
        window_s=args.window,
        rows=rows,
        cols=cols,
        executor=args.executor,
        workers=args.workers,
        transport=args.transport,
        backend=args.backend,
        backpressure_depth=args.backpressure,
        max_batch=args.max_batch,
        seed=args.seed,
        parity_epochs=None if args.parity_epochs < 0 else args.parity_epochs,
        metrics_port=args.metrics_port,
    )

    def _announce(service) -> None:
        workers = ",".join(
            str(child.pid) for child in multiprocessing.active_children()
        )
        print(
            f"SERVE_READY cities={args.cities} executor={args.executor} "
            f"workers={workers or '-'}",
            flush=True,
        )

    try:
        report = run_soak(config, on_ready=_announce)
    except KeyboardInterrupt:
        print(
            "interrupted — streams closed, worker pools shut down", file=sys.stderr
        )
        return 130
    payload = report.to_payload()
    latency = payload["dispatch_latency"]
    print(
        f"soak complete: {payload['orders']} orders, {args.cities} cities x "
        f"{args.epochs} epochs, {payload['wall_clock_s']}s wall clock "
        f"({payload['orders_per_second']} orders/s)"
    )
    print(
        f"dispatch latency: p50 {latency['p50_ms']:.1f}ms, "
        f"p99 {latency['p99_ms']:.1f}ms; serve rate {payload['serve_rate']:.3f}"
    )
    print(
        f"parity (service == replay): {'ok' if payload['parity_ok'] else 'MISMATCH'} "
        f"over {payload['parity_checked_epochs']} epoch(s)"
    )
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.report_json}")
    return 0 if payload["parity_ok"] else 1


_COMMANDS = {
    "generate-trace": _cmd_generate_trace,
    "build-market": _cmd_build_market,
    "solve": _cmd_solve,
    "bound": _cmd_bound,
    "info": _cmd_info,
    "experiment": _cmd_experiment,
    "scenario": _cmd_scenario,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    from .obs import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        configure_logging(args.log_level)  # None falls back to REPRO_LOG
    except ValueError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    handler = _COMMANDS[args.command]
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return handler(args)
    from .obs import disable_tracing, enable_tracing, phase_totals, write_chrome_trace

    recorder = enable_tracing()
    try:
        status = handler(args)
    finally:
        disable_tracing()
        spans = recorder.export()
        write_chrome_trace(trace_out, spans)
        phases = ", ".join(
            f"{name} {seconds:.3f}s"
            for name, seconds in phase_totals(spans)
            if seconds > 0.0
        )
        print(
            f"trace written to {trace_out} ({len(spans)} spans"
            + (f"; {phases}" if phases else "")
            + ")"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
