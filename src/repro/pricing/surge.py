"""Dynamic surge pricing.

Uber's surge pricing (referenced by the paper as [2], Chen & Sheldon 2015)
raises the price multiplier when demand exceeds supply "for a given geographic
area".  The paper's evaluation uses the simplified multiplier of Eq. (15)
"dynamically changed based on real market scenarios"; this module implements a
zone-and-time-window surge engine that produces exactly such a multiplier from
observed demand (requests) and supply (idle drivers) counts.

The engine is deliberately decoupled from the simulator: callers *report*
demand and supply observations, and the engine answers multiplier queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..geo import BoundingBox, GeoPoint, PORTO
from .base import PricingPolicy, RideQuote
from .linear import FareSchedule


@dataclass(frozen=True, slots=True)
class SurgeConfig:
    """Parameters of the surge engine.

    The multiplier for a zone/window is::

        alpha = clip(1 + sensitivity * max(0, demand/supply - 1),
                     min_multiplier, max_multiplier)

    with ``demand/supply`` treated as ``max_multiplier`` when supply is zero
    but demand is positive.  Uber's production multipliers are quantised to
    0.1 steps; ``quantum`` reproduces that.
    """

    bounding_box: BoundingBox = PORTO
    zone_rows: int = 6
    zone_cols: int = 6
    window_s: float = 900.0
    sensitivity: float = 0.5
    min_multiplier: float = 1.0
    max_multiplier: float = 3.0
    quantum: float = 0.1

    def __post_init__(self) -> None:
        if self.zone_rows < 1 or self.zone_cols < 1:
            raise ValueError("zone grid must be at least 1x1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if not 0 < self.min_multiplier <= self.max_multiplier:
            raise ValueError("need 0 < min_multiplier <= max_multiplier")
        if self.quantum < 0:
            raise ValueError("quantum must be non-negative")


ZoneWindow = Tuple[int, int, int]


class SurgeEngine:
    """Tracks demand/supply per (zone, time window) and derives multipliers."""

    def __init__(self, config: SurgeConfig | None = None) -> None:
        self.config = config or SurgeConfig()
        self._demand: Dict[ZoneWindow, int] = {}
        self._supply: Dict[ZoneWindow, int] = {}

    # ------------------------------------------------------------------
    # observation reporting
    # ------------------------------------------------------------------
    def record_demand(self, location: GeoPoint, ts: float, count: int = 1) -> None:
        """Report ``count`` ride requests at ``location`` around time ``ts``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        key = self._key(location, ts)
        self._demand[key] = self._demand.get(key, 0) + count

    def record_supply(self, location: GeoPoint, ts: float, count: int = 1) -> None:
        """Report ``count`` available (idle) drivers at ``location`` around ``ts``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        key = self._key(location, ts)
        self._supply[key] = self._supply.get(key, 0) + count

    def reset(self) -> None:
        """Forget all observations (e.g. between simulated days)."""
        self._demand.clear()
        self._supply.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def multiplier(self, location: GeoPoint, ts: float) -> float:
        """The surge multiplier ``alpha`` for a request at ``location``/``ts``."""
        cfg = self.config
        key = self._key(location, ts)
        demand = self._demand.get(key, 0)
        supply = self._supply.get(key, 0)
        if demand <= 0:
            raw = cfg.min_multiplier
        elif supply <= 0:
            raw = cfg.max_multiplier
        else:
            imbalance = max(0.0, demand / supply - 1.0)
            raw = 1.0 + cfg.sensitivity * imbalance
        clipped = min(cfg.max_multiplier, max(cfg.min_multiplier, raw))
        return self._quantise(clipped)

    def imbalance(self, location: GeoPoint, ts: float) -> float:
        """Raw demand/supply ratio for diagnostics (inf when supply is zero)."""
        key = self._key(location, ts)
        demand = self._demand.get(key, 0)
        supply = self._supply.get(key, 0)
        if supply == 0:
            return math.inf if demand > 0 else 0.0
        return demand / supply

    def zone_of(self, location: GeoPoint) -> Tuple[int, int]:
        """The (row, col) surge zone of a location."""
        cfg = self.config
        return cfg.bounding_box.cell_index(location, cfg.zone_rows, cfg.zone_cols)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _key(self, location: GeoPoint, ts: float) -> ZoneWindow:
        row, col = self.zone_of(location)
        window = int(ts // self.config.window_s)
        return (row, col, window)

    def _quantise(self, value: float) -> float:
        quantum = self.config.quantum
        if quantum <= 0:
            return value
        return round(round(value / quantum) * quantum, 10)


@dataclass(frozen=True, slots=True)
class SurgePricing(PricingPolicy):
    """Eq. (15) with the multiplier supplied by a :class:`SurgeEngine`."""

    engine: SurgeEngine
    schedule: FareSchedule = FareSchedule()

    def price(self, quote: RideQuote) -> float:
        alpha = self.engine.multiplier(quote.origin, quote.request_ts)
        return alpha * self.schedule.fare(quote.distance_km, quote.duration_s)

    def surge_multiplier(self, quote: RideQuote) -> float:
        return self.engine.multiplier(quote.origin, quote.request_ts)
