"""Linear fare model — Eq. (15) of the paper.

``p_m = alpha_m * (beta1 * dis(s̄_m, d̄_m) + beta2 * (t̄⁺_m − t̄⁻_m))``

where ``beta1`` and ``beta2`` are global constants and ``alpha_m`` is the
surge multiplier.  With a static multiplier this is the classic
distance-plus-time taxi fare; the dynamic multiplier variant lives in
:mod:`repro.pricing.surge`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import PricingPolicy, RideQuote


@dataclass(frozen=True, slots=True)
class FareSchedule:
    """The global fare constants of Eq. (15).

    ``beta1`` is the per-kilometre rate, ``beta2`` the per-second rate and
    ``base_fare`` an optional flag-fall added to every trip (zero in the
    paper's simplified model).  The defaults approximate Porto taxi fares:
    0.80 currency units per km and 0.30 per minute.
    """

    beta1_per_km: float = 0.80
    beta2_per_s: float = 0.30 / 60.0
    base_fare: float = 0.0

    def __post_init__(self) -> None:
        if self.beta1_per_km < 0 or self.beta2_per_s < 0 or self.base_fare < 0:
            raise ValueError("fare constants must be non-negative")
        if self.beta1_per_km == 0 and self.beta2_per_s == 0 and self.base_fare == 0:
            raise ValueError("a fare schedule must charge something")

    def fare(self, distance_km: float, duration_s: float) -> float:
        """The un-surged fare for a trip."""
        if distance_km < 0 or duration_s < 0:
            raise ValueError("distance and duration must be non-negative")
        return self.base_fare + self.beta1_per_km * distance_km + self.beta2_per_s * duration_s


@dataclass(frozen=True, slots=True)
class LinearPricing(PricingPolicy):
    """Eq. (15) with a fixed surge multiplier ``alpha``."""

    schedule: FareSchedule = FareSchedule()
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("surge multiplier must be positive")

    def price(self, quote: RideQuote) -> float:
        return self.alpha * self.schedule.fare(quote.distance_km, quote.duration_s)

    def surge_multiplier(self, quote: RideQuote) -> float:
        return self.alpha
