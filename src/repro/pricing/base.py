"""Pricing-policy interface.

The paper treats the task price ``p_m`` as an attribute computed by the
platform's pricing mechanism (Section III-A): "no matter what pricing
mechanism the platform adopts, the system calculates the price of the task and
publishes [it] to both its customers and drivers, therefore price p_m can be
treated as a constant attribute of a given task".

A :class:`PricingPolicy` therefore maps the observable attributes of a ride
request — distance, duration, pickup location and time — to a price.  Concrete
policies live in :mod:`repro.pricing.linear` and :mod:`repro.pricing.surge`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..geo import GeoPoint


@dataclass(frozen=True, slots=True)
class RideQuote:
    """The observable attributes of a ride request used for pricing."""

    origin: GeoPoint
    destination: GeoPoint
    distance_km: float
    duration_s: float
    request_ts: float

    def __post_init__(self) -> None:
        if self.distance_km < 0:
            raise ValueError("distance_km must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")


class PricingPolicy(abc.ABC):
    """Maps a :class:`RideQuote` to a task price ``p_m``."""

    @abc.abstractmethod
    def price(self, quote: RideQuote) -> float:
        """The price (driver payoff) for this ride request."""

    def surge_multiplier(self, quote: RideQuote) -> float:
        """The surge multiplier ``alpha_m`` applied to this quote.

        Policies without dynamic pricing return 1.0.
        """
        return 1.0

    def __call__(self, quote: RideQuote) -> float:
        return self.price(quote)
