"""Willingness-to-pay (WTP) models.

The social-welfare objective (Eq. 6) needs the customer valuation ``b_m``;
the paper notes that "it is always hard to accurately estimate a certain
customer's WTP for a ride" and that a task is only published when
``b_m >= p_m``.  These models generate synthetic-but-plausible valuations so
the social-welfare pipeline can be exercised end to end: every generated WTP
is at least the quoted price, which keeps every task publishable.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from .base import RideQuote


class WtpModel(abc.ABC):
    """Maps a quote and its price to a customer valuation ``b_m >= p_m``."""

    @abc.abstractmethod
    def valuation(self, quote: RideQuote, price: float, rng: random.Random) -> float:
        """The customer's willingness to pay for this ride."""


@dataclass(frozen=True, slots=True)
class ProportionalWtp(WtpModel):
    """``b_m = p_m * (1 + U[0, markup])`` — a uniform relative surplus.

    The default 30% maximum markup reflects the consumer-surplus estimates in
    the UberX literature (Cohen et al.), where the average rider values the
    trip noticeably above the fare.
    """

    max_markup: float = 0.3

    def __post_init__(self) -> None:
        if self.max_markup < 0:
            raise ValueError("max_markup must be non-negative")

    def valuation(self, quote: RideQuote, price: float, rng: random.Random) -> float:
        if price < 0:
            raise ValueError("price must be non-negative")
        return price * (1.0 + rng.uniform(0.0, self.max_markup))


@dataclass(frozen=True, slots=True)
class ExactWtp(WtpModel):
    """``b_m = p_m`` — zero consumer surplus.

    With this model the social-welfare objective (Eq. 6) collapses to the
    drivers'-profit objective (Eq. 4), which is the simplification the paper
    itself adopts for its evaluation.
    """

    def valuation(self, quote: RideQuote, price: float, rng: random.Random) -> float:
        if price < 0:
            raise ValueError("price must be non-negative")
        return price


@dataclass(frozen=True, slots=True)
class TimeValueWtp(WtpModel):
    """Valuation derived from the rider's value of time.

    ``b_m = max(p_m, value_of_time_per_h * duration_h * convenience)`` —
    riders value the ride by the time it would otherwise cost them, scaled by
    a convenience factor, floored at the price so the task stays publishable.
    """

    value_of_time_per_h: float = 12.0
    convenience: float = 1.2

    def __post_init__(self) -> None:
        if self.value_of_time_per_h <= 0:
            raise ValueError("value_of_time_per_h must be positive")
        if self.convenience <= 0:
            raise ValueError("convenience must be positive")

    def valuation(self, quote: RideQuote, price: float, rng: random.Random) -> float:
        if price < 0:
            raise ValueError("price must be non-negative")
        time_value = self.value_of_time_per_h * (quote.duration_s / 3600.0) * self.convenience
        return max(price, time_value)
