"""Pricing substrate: fare schedules, surge pricing, willingness-to-pay models."""

from .base import PricingPolicy, RideQuote
from .linear import FareSchedule, LinearPricing
from .surge import SurgeConfig, SurgeEngine, SurgePricing
from .wtp import ExactWtp, ProportionalWtp, TimeValueWtp, WtpModel

__all__ = [
    "PricingPolicy",
    "RideQuote",
    "FareSchedule",
    "LinearPricing",
    "SurgeConfig",
    "SurgeEngine",
    "SurgePricing",
    "WtpModel",
    "ExactWtp",
    "ProportionalWtp",
    "TimeValueWtp",
]
