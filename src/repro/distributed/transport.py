"""Zero-copy shard transport over POSIX shared memory.

The process-pool wire format (:mod:`repro.distributed.payload`) already
reduced what crosses the executor pipe to primal-input NumPy arrays — but it
still *pickles* those arrays, so every ``ShardPayload`` / ``ShardPayloadDelta``
is copied into the pipe byte for byte, then copied back out in the worker.
At city scale that serialisation is most of the dispatch cost: the benchmarks
consistently showed ``critical_path_speedup`` of 3-4x against
``speedup_vs_serial`` below 1.

This module moves the array bytes out of the pipe entirely:

* the coordinator-side :class:`ShmShipper` copies a payload's columns into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment (one segment
  per in-flight shipment, recycled through a free list, so a steady-state
  stream reuses a handful of segments instead of allocating per batch);
* only a :class:`PayloadDescriptor` / :class:`DeltaDescriptor` crosses the
  pipe — segment name plus ``(offset, shape, dtype)`` per column, a few
  hundred bytes regardless of shard size;
* the worker attaches the segment (cached per name, so attach cost is paid
  once per segment, not per batch) and rebuilds the payload with NumPy views
  straight over the shared buffer — zero copies on the receive side, because
  the payload contiguity invariant (``_coerce_arrays``) makes
  ``np.ascontiguousarray`` a no-op on the views.

Correctness model
-----------------

A segment is recycled only after the future of the call that references it
completes (the pool wires this through ``add_done_callback``), and slot
executors process calls in submission order — so a worker always reads a
segment *after* the coordinator's writes and *before* any reuse overwrites
them.  Workers never keep views past the call: every entry point
materialises plain :class:`~repro.market.task.Task` / driver objects
immediately (the same rebuild the pickle path performs), so a recycled
segment can never mutate state a worker still holds.  String ids travel
inside the segment too, as a UTF-8 blob plus an ``int64`` length column.

Segment names are unique per process (``repro-shm-<pid>-<shipper>-<seq>``,
with a process-global shipper counter so consecutive pools never mint the
same name) and never reused after unlink, which is what makes the
worker-side attach cache safe and lets the lifecycle tests scan
``/dev/shm`` for leaks by prefix.

The pickle transport remains the default and the fallback: a shipment that
fails for any reason (shared memory exhausted, permission trouble) is
re-sent pickled and counted in :attr:`TransportStats.pickle_fallbacks`.
Parity contract 16 pins that both transports produce bit-identical merged
solutions.
"""

from __future__ import annotations

import itertools
import logging
import mmap
import os
import pickle
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import trace as obs_trace

logger = logging.getLogger("repro.distributed.transport")

try:  # the POSIX shm syscalls shared_memory itself is built on
    import _posixshmem
except ImportError:  # non-POSIX: SharedMemory doesn't resource-track there
    _posixshmem = None

from .payload import ShardPayload, ShardPayloadDelta

#: Transport policies accepted by the pool and the coordinator.
TRANSPORTS = ("pickle", "shm")

#: Smallest segment the shipper allocates; segments grow in powers of two so
#: the free list converges to a few sizes instead of fragmenting.
_MIN_SEGMENT_BYTES = 1 << 16

#: Free segments kept for reuse before excess ones are unlinked.
_MAX_FREE_SEGMENTS = 16

#: Worker-side attach cache bound; above it, stale attachments are closed.
_MAX_ATTACHED_SEGMENTS = 32

#: One spec per shipped column: (byte offset, shape, dtype string).
ArraySpec = Tuple[int, Tuple[int, ...], str]


def transport_error(name: str) -> ValueError:
    return ValueError(f"unknown transport {name!r}; expected one of {TRANSPORTS}")


# ----------------------------------------------------------------------
# descriptors (the only thing that crosses the pipe)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeltaDescriptor:
    """Where one :class:`ShardPayloadDelta` lives in shared memory.

    ``specs`` covers, in order, the delta's ``ARRAY_FIELDS`` followed by the
    task-id blob (``uint8``) and task-id lengths (``int64``).
    """

    shard_id: int
    segment: str
    specs: Tuple[ArraySpec, ...]


@dataclass(frozen=True)
class PayloadDescriptor:
    """Where one :class:`ShardPayload` lives in shared memory.

    ``specs`` covers, in order, the payload's ``ARRAY_FIELDS`` followed by
    driver-id blob, driver-id lengths, task-id blob, task-id lengths.  The
    cost model rides along pickled — it is a tiny frozen config object.
    """

    shard_id: int
    segment: str
    specs: Tuple[ArraySpec, ...]
    cost_model: object


# ----------------------------------------------------------------------
# packing helpers
# ----------------------------------------------------------------------
def _encode_ids(ids: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a string-id tuple into a UTF-8 blob + per-id byte lengths."""
    parts = [s.encode("utf-8") for s in ids]
    lens = np.array([len(p) for p in parts], dtype=np.int64)
    blob = np.frombuffer(b"".join(parts), dtype=np.uint8) if parts else np.empty(0, np.uint8)
    return blob, lens


def _decode_ids(blob: np.ndarray, lens: np.ndarray) -> Tuple[str, ...]:
    """Inverse of :func:`_encode_ids` (exact string round trip)."""
    raw = blob.tobytes()
    out: List[str] = []
    pos = 0
    for n in lens.tolist():
        out.append(raw[pos : pos + n].decode("utf-8"))
        pos += n
    return tuple(out)


def _layout(arrays: Sequence[np.ndarray]) -> Tuple[Tuple[ArraySpec, ...], int]:
    """8-byte-aligned packing of ``arrays`` into one buffer: specs + size."""
    specs: List[ArraySpec] = []
    offset = 0
    for arr in arrays:
        offset = (offset + 7) & ~7
        specs.append((offset, tuple(arr.shape), arr.dtype.str))
        offset += arr.nbytes
    return tuple(specs), max(offset, 1)


def _write_arrays(buf: memoryview, specs: Sequence[ArraySpec], arrays: Sequence[np.ndarray]) -> None:
    for (offset, shape, dtype), arr in zip(specs, arrays):
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        view[...] = arr


def _read_arrays(buf: memoryview, specs: Sequence[ArraySpec]) -> List[np.ndarray]:
    return [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        for offset, shape, dtype in specs
    ]


def payload_wire_bytes(payload: ShardPayload) -> int:
    """Bytes a pickled shipment of ``payload`` puts on the pipe, at minimum
    (array bytes + id bytes; pickle framing adds a little more).  Used for
    the pickle transport's side of the bytes-over-pipe accounting."""
    n = sum(getattr(payload, f).nbytes for f in ShardPayload.ARRAY_FIELDS)
    n += sum(len(s) for s in payload.driver_ids) + sum(len(s) for s in payload.task_ids)
    return n


def delta_wire_bytes(delta: ShardPayloadDelta) -> int:
    """Pickled wire size of a delta, same convention as
    :func:`payload_wire_bytes`."""
    n = sum(getattr(delta, f).nbytes for f in ShardPayloadDelta.ARRAY_FIELDS)
    return n + sum(len(s) for s in delta.task_ids)


# ----------------------------------------------------------------------
# transport accounting
# ----------------------------------------------------------------------
@dataclass
class TransportStats:
    """Wire traffic counters for one pool (coordinator side).

    ``bytes_over_pipe`` is the headline number: what actually crossed an
    executor pipe — pickled payload bytes on the pickle transport, only the
    tiny descriptors on shm.  ``shm_bytes`` counts the array bytes that went
    through shared memory instead; ``shard_bytes`` attributes over-pipe
    bytes to shards for the health endpoint.
    """

    transport: str = "pickle"
    shm_shipments: int = 0
    shm_bytes: int = 0
    descriptor_bytes: int = 0
    pickle_shipments: int = 0
    pickle_bytes: int = 0
    pickle_fallbacks: int = 0
    segments_created: int = 0
    segment_reuses: int = 0
    segments_retired: int = 0
    shard_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def bytes_over_pipe(self) -> int:
        return self.descriptor_bytes + self.pickle_bytes

    def record_shm(self, shard_id: int, shm_bytes: int, descriptor_bytes: int) -> None:
        self.shm_shipments += 1
        self.shm_bytes += shm_bytes
        self.descriptor_bytes += descriptor_bytes
        self.shard_bytes[shard_id] = self.shard_bytes.get(shard_id, 0) + descriptor_bytes

    def record_pickle(self, shard_id: int, wire_bytes: int, *, fallback: bool = False) -> None:
        self.pickle_shipments += 1
        self.pickle_bytes += wire_bytes
        if fallback:
            self.pickle_fallbacks += 1
        self.shard_bytes[shard_id] = self.shard_bytes.get(shard_id, 0) + wire_bytes

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy (health endpoints, bench artifacts)."""
        return {
            "transport": self.transport,
            "bytes_over_pipe": self.bytes_over_pipe,
            "shm_shipments": self.shm_shipments,
            "shm_bytes": self.shm_bytes,
            "descriptor_bytes": self.descriptor_bytes,
            "pickle_shipments": self.pickle_shipments,
            "pickle_bytes": self.pickle_bytes,
            "pickle_fallbacks": self.pickle_fallbacks,
            "segments_created": self.segments_created,
            "segment_reuses": self.segment_reuses,
            "segments_retired": self.segments_retired,
            "shard_bytes": dict(sorted(self.shard_bytes.items())),
        }


# ----------------------------------------------------------------------
# coordinator side: the shipper
# ----------------------------------------------------------------------
class ShmShipper:
    """Owns the shared-memory segments a pool ships payloads through.

    Thread-safe: the streaming session's dispatch thread and offline solve
    fan-outs may ship concurrently.  Every live segment is tracked, so
    :meth:`close` (reached from ``pool.close()``, the broken-worker path and
    context-manager/SIGINT unwinding alike) unlinks everything and
    ``/dev/shm`` ends each run exactly as it started.
    """

    #: Process-global shipper counter: two shippers alive in one process
    #: (consecutive pools, a pool per city) must never mint the same segment
    #: name, or the workers' attach-by-name cache would serve stale buffers.
    _instances = itertools.count(1)

    def __init__(self, stats: Optional[TransportStats] = None) -> None:
        import threading

        self._lock = threading.Lock()
        self._seq = 0
        self._prefix = f"repro-shm-{os.getpid()}-{next(ShmShipper._instances)}-"
        self._free: List[shared_memory.SharedMemory] = []
        self._live: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        self.stats = stats if stats is not None else TransportStats(transport="shm")

    @property
    def segment_prefix(self) -> str:
        """The name prefix of every segment this shipper creates (lifecycle
        tests scan ``/dev/shm`` for it)."""
        return self._prefix

    def _acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        with self._lock:
            if self._closed:
                raise RuntimeError("shipper is closed")
            best = None
            for seg in self._free:
                if seg.size >= nbytes and (best is None or seg.size < best.size):
                    best = seg
            if best is not None:
                self._free.remove(best)
                self._live[best.name] = best
                self.stats.segment_reuses += 1
                return best
            size = _MIN_SEGMENT_BYTES
            while size < nbytes:
                size <<= 1
            self._seq += 1
            name = f"{self._prefix}{self._seq}"
            seg = shared_memory.SharedMemory(name=name, create=True, size=size)
            self._live[seg.name] = seg
            self.stats.segments_created += 1
            return seg

    def release(self, segment_name: str) -> None:
        """Return a shipped segment to the free list (called from the done
        callback of the future that consumed it).  Idempotent; excess free
        segments are unlinked on the spot."""
        with self._lock:
            seg = self._live.pop(segment_name, None)
            if seg is None:
                return
            if self._closed or len(self._free) >= _MAX_FREE_SEGMENTS:
                self.stats.segments_retired += 1
                seg.close()
                seg.unlink()
            else:
                self._free.append(seg)

    def _ship(self, arrays: Sequence[np.ndarray]) -> Tuple[str, Tuple[ArraySpec, ...], int]:
        specs, nbytes = _layout(arrays)
        seg = self._acquire(nbytes)
        _write_arrays(seg.buf, specs, arrays)
        return seg.name, specs, nbytes

    def ship_delta(self, delta: ShardPayloadDelta) -> DeltaDescriptor:
        with obs_trace.span("transport:ship_delta", shard=delta.shard_id):
            blob, lens = _encode_ids(delta.task_ids)
            arrays = [getattr(delta, f) for f in ShardPayloadDelta.ARRAY_FIELDS] + [blob, lens]
            name, specs, nbytes = self._ship(arrays)
            desc = DeltaDescriptor(shard_id=delta.shard_id, segment=name, specs=specs)
            self.stats.record_shm(delta.shard_id, nbytes, len(pickle.dumps(desc)))
            return desc

    def ship_payload(self, payload: ShardPayload) -> PayloadDescriptor:
        with obs_trace.span("transport:ship_payload", shard=payload.shard_id):
            d_blob, d_lens = _encode_ids(payload.driver_ids)
            t_blob, t_lens = _encode_ids(payload.task_ids)
            arrays = [getattr(payload, f) for f in ShardPayload.ARRAY_FIELDS] + [
                d_blob, d_lens, t_blob, t_lens,
            ]
            name, specs, nbytes = self._ship(arrays)
            desc = PayloadDescriptor(
                shard_id=payload.shard_id,
                segment=name,
                specs=specs,
                cost_model=payload.cost_model,
            )
            self.stats.record_shm(payload.shard_id, nbytes, len(pickle.dumps(desc)))
            return desc

    def close(self) -> None:
        """Unlink every segment this shipper ever created (idempotent)."""
        with self._lock:
            self._closed = True
            segments = list(self._free) + list(self._live.values())
            self._free.clear()
            self._live.clear()
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # already gone (e.g. manual cleanup)
                pass

    def __del__(self) -> None:  # last-resort cleanup; close() is the contract
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# worker side: attach + rebuild
# ----------------------------------------------------------------------
class _AttachedSegment:
    """A read/write attachment to an existing segment, outside the resource
    tracker.

    The shipper (creator) owns segment lifetime; a reader must not register
    the name with *its* resource tracker, or every attaching process grows a
    tracker that re-unlinks — and warns about — segments the shipper already
    cleaned up at exit.  Python 3.13 grew ``SharedMemory(track=False)`` for
    exactly this; on older versions we attach the same way it does:
    ``shm_open`` + ``mmap``, no registration.
    """

    __slots__ = ("name", "buf", "_mmap")

    def __init__(self, name: str, mm: mmap.mmap) -> None:
        self.name = name
        self._mmap = mm
        self.buf: Optional[memoryview] = memoryview(mm)

    def close(self) -> None:
        if self.buf is not None:
            self.buf.release()  # BufferError while views are live, like shm
            self.buf = None
        self._mmap.close()


def _open_untracked(name: str):
    """Attach to ``name`` without resource-tracker registration."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    if _posixshmem is None:  # pragma: no cover - non-POSIX, attach is untracked
        return shared_memory.SharedMemory(name=name)
    fd = _posixshmem.shm_open("/" + name, os.O_RDWR, mode=0o600)
    try:
        size = os.fstat(fd).st_size
        mm = mmap.mmap(fd, size)
    finally:
        os.close(fd)
    return _AttachedSegment(name, mm)


#: Segments this process has attached, by name.  Names are never reused, so
#: a cache hit is always the right mapping; the bound exists only to cap
#: open handles in very long-lived workers.
_ATTACHED: Dict[str, object] = {}


def _attach(name: str):
    seg = _ATTACHED.get(name)
    if seg is None:
        if len(_ATTACHED) >= _MAX_ATTACHED_SEGMENTS:
            for stale_name, stale in list(_ATTACHED.items()):
                try:
                    stale.close()
                except BufferError:  # a view is somehow still live; keep it
                    continue
                del _ATTACHED[stale_name]
        seg = _open_untracked(name)
        _ATTACHED[name] = seg
    return seg


def delta_from_descriptor(desc: DeltaDescriptor) -> ShardPayloadDelta:
    """Rebuild a delta from shared memory — array views, zero copies.

    The views are only valid until the shipping future completes; callers
    must materialise tasks before returning (both worker entry points do)."""
    with obs_trace.span("transport:attach", shard=desc.shard_id):
        buf = _attach(desc.segment).buf
        arrays = _read_arrays(buf, desc.specs)
        *columns, blob, lens = arrays
        return ShardPayloadDelta(
            desc.shard_id,
            _decode_ids(blob, lens),
            *columns,
        )


def payload_from_descriptor(desc: PayloadDescriptor) -> ShardPayload:
    """Rebuild a full payload from shared memory — array views, zero copies."""
    with obs_trace.span("transport:attach", shard=desc.shard_id):
        buf = _attach(desc.segment).buf
        arrays = _read_arrays(buf, desc.specs)
        *columns, d_blob, d_lens, t_blob, t_lens = arrays
        driver_cols = columns[:2]
        task_cols = columns[2:]
        return ShardPayload(
            desc.shard_id,
            _decode_ids(d_blob, d_lens),
            *driver_cols,
            _decode_ids(t_blob, t_lens),
            *task_cols,
            desc.cost_model,
        )
