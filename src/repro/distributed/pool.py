"""Persistent worker pool hosting per-shard streaming market sessions.

PR 2's process executor forks a fresh pool for every ``solve()`` and ships
each shard's whole payload once — fine for offline re-solves, wasteful for a
live stream where the same shards receive dozens of arrival batches and for
ablation sweeps that re-solve the same city many times.  This module keeps
the workers (and the per-shard streaming state living inside them) alive:

* :class:`PersistentWorkerPool` owns ``worker_count`` *slot executors*.  Each
  slot is a single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
  (or ``ThreadPoolExecutor``, or inline execution for the serial policy), so
  every call submitted to a slot runs in the **same** process, in submission
  order.  Shards are pinned to slots, which is what lets a worker process
  hold a shard's :class:`~repro.market.streaming.StreamingMarketInstance`
  across batches instead of rebuilding it.
* :class:`ShardStreamSession` is the worker-resident state of one shard's
  stream: a streaming instance plus a
  :class:`~repro.online.batch.BatchedSimulator` consuming it through the
  incremental ``stream_begin`` / ``stream_feed`` / ``stream_end`` API — the
  exact ``run_stream`` code path, so pooled streaming inherits the
  stream==replay parity contract.
* The ``_pool_open`` / ``_pool_append`` / ``_pool_finish`` / ``_pool_discard``
  functions are the wire protocol.  They are top-level (picklable by
  reference) and resolve sessions from a per-process registry keyed by a
  coordinator-unique token, so one long-lived pool can serve many streams
  (re-solves, ablation sweeps) back to back — the startup cost of the worker
  processes is paid once per pool, not once per solve.

Only primal inputs ever cross the process boundary: drivers + cost model at
open (plain frozen dataclasses with no derived caches) and
:class:`~repro.distributed.payload.ShardPayloadDelta` arrays per batch (the
new task columns only).

The pool is also the offline execution substrate: the coordinator's
``solve(pool=...)`` dispatches one-shot shard solves (top-level
``solve_shard`` / ``solve_shard_payload`` calls) onto the same slot
executors, so streaming sessions and offline re-solves share one set of warm
workers.  Slots make no assumption about what runs on them — they are plain
single-worker executors with a submission-order guarantee.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.streaming import StreamingMarketInstance
from ..market.task import Task
from ..obs import logs as obs_logs
from ..obs import trace as obs_trace
from ..online.batch import BatchConfig, BatchedSimulator
from ..runtime import pin_blas_threads
from .messages import ShardStreamResult, Stopwatch
from .payload import ShardPayloadDelta, tasks_from_delta
from .transport import (
    TRANSPORTS,
    DeltaDescriptor,
    ShmShipper,
    TransportStats,
    delta_from_descriptor,
    transport_error,
)

#: Executor policies accepted by the pool (mirrors the coordinator's).
POOL_POLICIES = ("serial", "thread", "process")

logger = logging.getLogger("repro.distributed.pool")


def _slot_initializer(backend: Optional[str], log_spec=None) -> None:
    """Runs once in every pool worker process, before any shard work.

    Pins the native BLAS/OpenMP pools to one thread — the pool's parallelism
    is *across* worker processes, and nested threading would oversubscribe
    the cores — selects the worker's compute backend when the pool was
    constructed with one (fails the worker loudly at startup for a backend
    unavailable in the worker's environment, never silently mid-solve), and
    routes the worker's ``repro.*`` log records into the parent's relay
    queue (``log_spec`` is ``(queue, level)``, or None when the parent never
    configured logging — then ``REPRO_LOG`` still applies worker-locally).
    """
    pin_blas_threads()
    obs_logs.init_worker_logging(log_spec)
    if backend is not None:
        from .. import backends

        backends.set_backend(backend)
    logger.debug("slot worker initialised: pid=%d backend=%s", os.getpid(), backend)


class WorkerPoolBrokenError(RuntimeError):
    """A slot's worker died (OOM-kill, ``os._exit``, crash) and the pool shut
    itself down.

    Raised instead of the opaque :class:`concurrent.futures.BrokenExecutor`
    a dead ``ProcessPoolExecutor`` produces: the message names the slot (and,
    when the failing call is a stream append, the coordinator re-raises with
    the shard id), and by the time the caller sees it the pool is already
    **closed** — every other slot has been shut down with its queued work
    cancelled — so a crash can never leave a half-poisoned pool accepting
    new submissions on the surviving slots.
    """

    def __init__(self, message: str, *, slot: Optional[int] = None) -> None:
        super().__init__(message)
        self.slot = slot


class ShardStreamSession:
    """One shard's live stream state, resident in its pinned worker.

    Wraps a :class:`StreamingMarketInstance` over the shard's drivers and a
    :class:`BatchedSimulator` consuming it incrementally.  ``append`` feeds
    one publish-ordered arrival batch (dispatching every window the watermark
    proves complete); ``finish`` flushes the final window and settles.
    """

    def __init__(
        self,
        shard_id: int,
        drivers: Sequence[Driver],
        cost_model: MarketCostModel,
        config: Optional[BatchConfig] = None,
        trace: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self._instance = StreamingMarketInstance(drivers, cost_model)
        self._simulator = BatchedSimulator(self._instance, config or BatchConfig())
        # Session-lifetime flight recorder: spans from every append (and the
        # nested candidate/Hungarian spans the simulator records) accumulate
        # here and ship back on the finish result's ``spans`` tuple.  The
        # recorder is installed thread-locally only for the duration of each
        # call, so concurrent sessions on thread-pool slots never cross-talk.
        self._recorder = obs_trace.TraceRecorder() if trace else None
        self._root_span = (
            self._recorder.begin(
                "shard_stream", shard=shard_id, pid=os.getpid()
            )
            if self._recorder is not None
            else obs_trace.DROPPED
        )
        previous = obs_trace.install_recorder(self._recorder)
        try:
            self._simulator.stream_begin()
        finally:
            obs_trace.install_recorder(previous)
        self._elapsed_s = 0.0
        self._task_count = 0

    @property
    def task_count(self) -> int:
        """How many tasks this shard's stream has accumulated so far."""
        return self._task_count

    def append(self, tasks: Sequence[Task]) -> int:
        """Feed one arrival batch; returns the shard's running task count."""
        previous = obs_trace.install_recorder(self._recorder)
        try:
            with obs_trace.span("append", batch_size=len(tasks)):
                with Stopwatch() as watch:
                    self._simulator.stream_feed(tasks)
        finally:
            obs_trace.install_recorder(previous)
        self._elapsed_s += watch.elapsed_s
        self._task_count += len(tasks)
        return self._task_count

    def finish(self) -> ShardStreamResult:
        """Flush the last window, settle every driver, report the result."""
        previous = obs_trace.install_recorder(self._recorder)
        try:
            with obs_trace.span("flush"):
                with Stopwatch() as watch:
                    outcome = self._simulator.stream_end()
        finally:
            obs_trace.install_recorder(previous)
        self._elapsed_s += watch.elapsed_s
        if self._recorder is not None:
            self._recorder.end(self._root_span)
        return ShardStreamResult(
            shard_id=self.shard_id,
            assignment=outcome.assignment(),
            driver_profits={
                record.driver_id: record.profit
                for record in outcome.records
                if record.task_indices
            },
            rejected_tasks=outcome.rejected_tasks,
            task_count=self._task_count,
            total_value=outcome.total_value,
            served_count=outcome.served_count,
            elapsed_s=self._elapsed_s,
            wait_total_s=outcome.total_wait_s,
            spans=self._recorder.export() if self._recorder is not None else (),
        )


# ----------------------------------------------------------------------
# worker-side protocol
# ----------------------------------------------------------------------
#: Sessions resident in *this* process, keyed by (stream token, shard id).
#: In a worker process the registry holds the shards pinned to that worker;
#: under the serial/thread policies it lives in the coordinator's process.
_SESSIONS: Dict[Tuple[int, int], ShardStreamSession] = {}

#: Coordinator-side token source; unique per coordinator process, which makes
#: (token, shard_id) unique inside every worker even when one pool serves
#: many consecutive streams.
_TOKENS = itertools.count(1)


def next_stream_token() -> int:
    """A process-unique token identifying one stream on a shared pool."""
    return next(_TOKENS)


def _pool_open(
    token: int,
    shard_id: int,
    drivers: Tuple[Driver, ...],
    cost_model: MarketCostModel,
    config: Optional[BatchConfig],
    trace: bool = False,
) -> int:
    _SESSIONS[(token, shard_id)] = ShardStreamSession(
        shard_id, drivers, cost_model, config, trace=trace
    )
    return shard_id


def _pool_append(token: int, shard_id: int, delta: ShardPayloadDelta) -> int:
    return _SESSIONS[(token, shard_id)].append(tasks_from_delta(delta))


def _pool_append_shm(token: int, shard_id: int, desc: DeltaDescriptor) -> int:
    """Shm-transport twin of :func:`_pool_append`: the batch's arrays are
    read from shared memory instead of the pickled call arguments.  Tasks are
    materialised inside this call (``tasks_from_delta`` builds plain objects),
    so no view outlives the segment's recycle window."""
    session = _SESSIONS[(token, shard_id)]
    # Install the session recorder around the rebuild so the attach span
    # (recorded inside ``delta_from_descriptor``) lands on this shard's trace.
    previous = obs_trace.install_recorder(session._recorder)
    try:
        tasks = tasks_from_delta(delta_from_descriptor(desc))
    finally:
        obs_trace.install_recorder(previous)
    return session.append(tasks)


def _pool_finish(token: int, shard_id: int) -> ShardStreamResult:
    return _SESSIONS.pop((token, shard_id)).finish()


def _pool_discard(token: int, shard_id: int) -> None:
    _SESSIONS.pop((token, shard_id), None)


def _pool_session_count() -> int:
    """How many stream sessions are resident in *this* process.

    A lifecycle probe (submit it to a slot to count that worker's resident
    sessions): abandoned-stream regression tests use it to assert that
    ``close()``/``__exit__`` really did discard worker-side state.
    """
    return len(_SESSIONS)


# ----------------------------------------------------------------------
# slot placement
# ----------------------------------------------------------------------
def lpt_slot_assignment(loads: Sequence[float], slot_count: int) -> List[int]:
    """Longest-processing-time-first assignment of work items to slots.

    Returns one slot index per item (aligned with ``loads``): items are
    taken in decreasing load order (ties broken by position, so the result
    is deterministic) and each goes to the currently least-loaded slot
    (ties broken by slot index).  The classic LPT list-scheduling rule —
    a 4/3-approximation of the optimal makespan — which packs skewed shard
    loads onto single-worker slots far better than round-robin: round-robin
    can put the two hottest shards on the same slot, LPT never does while a
    colder slot exists.

    Used by ``DistributedCoordinator.solve(pool=..., load_report=...)``;
    placement only changes *where* a shard runs, never its request or the
    merge order, so the merged solution is placement-independent.
    """
    if slot_count < 1:
        raise ValueError("slot_count must be >= 1")
    slot_loads = [0.0] * slot_count
    assignment = [0] * len(loads)
    order = sorted(range(len(loads)), key=lambda i: (-float(loads[i]), i))
    for item in order:
        slot = min(range(slot_count), key=lambda j: (slot_loads[j], j))
        assignment[item] = slot
        slot_loads[slot] += float(loads[item])
    return assignment


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class _ImmediateFuture:
    """Future-alike wrapping an already-computed result (serial policy)."""

    __slots__ = ("_result", "_exception")

    def __init__(self, result=None, exception: Optional[BaseException] = None) -> None:
        self._result = result
        self._exception = exception

    def done(self) -> bool:
        return True

    def exception(self) -> Optional[BaseException]:
        return self._exception

    def result(self):
        if self._exception is not None:
            raise self._exception
        return self._result


class _SlotFuture:
    """A slot executor's future, with worker death translated on the way out.

    Delegates to the wrapped :class:`concurrent.futures.Future`; when the
    result is a :class:`BrokenExecutor` (the worker process died mid-call),
    the pool is torn down and the caller gets a :class:`WorkerPoolBrokenError`
    naming the slot instead of the executor's context-free crash.
    """

    __slots__ = ("_pool", "_slot", "_future")

    def __init__(self, pool: "PersistentWorkerPool", slot: int, future) -> None:
        self._pool = pool
        self._slot = slot
        self._future = future

    @property
    def raw(self):
        """The underlying :class:`concurrent.futures.Future` (for
        ``asyncio.wrap_future`` interop; errors read through it are *not*
        translated — prefer :meth:`result`)."""
        return self._future

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        return self._future.cancel()

    def add_done_callback(self, fn) -> None:
        self._future.add_done_callback(lambda _f: fn(self))

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The call's exception, untranslated (observability only — use
        :meth:`result` to get worker deaths translated and the pool closed)."""
        return self._future.exception(timeout)

    def result(self, timeout: Optional[float] = None):
        try:
            return self._future.result(timeout)
        except BrokenExecutor as exc:
            raise self._pool._mark_broken(self._slot, exc) from exc


class PersistentWorkerPool:
    """A fixed set of slot executors that stay alive across streams.

    Parameters
    ----------
    executor:
        ``"serial"`` (inline execution, 1 slot), ``"thread"`` or
        ``"process"``.  Thread/process slots are **single-worker** executors:
        work submitted to one slot runs in one OS thread/process in
        submission order, which is the ordering + locality guarantee the
        shard sessions rely on.
    worker_count:
        Number of slots for the pooled policies (default: CPU count).
    transport:
        ``"pickle"`` (default) ships payloads/deltas as pickled call
        arguments; ``"shm"`` ships the array columns through shared-memory
        segments owned by the pool's :class:`~repro.distributed.transport.ShmShipper`
        and only descriptors cross the pipe.  Shared memory is engaged only
        where a pipe exists (the process policy); under serial/thread the
        setting is accepted and recorded but nothing is shipped at all, so
        both transports are trivially identical there.  Parity contract 16
        pins shm == pickle merges on the process policy.
    backend:
        Optional compute backend name (:mod:`repro.backends`) selected in
        every worker's initializer — per-worker under the process policy;
        under serial/thread the backend is process-global and is applied to
        *this* process at construction.

    Lifecycle
    ---------

    Slot executors are created lazily on first submit to a slot and stay
    alive until :meth:`close` — there is no per-stream or per-solve setup or
    teardown.  The pool is reusable across *kinds* of work, not just across
    streams: open as many consecutive streams on it as needed (each
    identified by :func:`next_stream_token`), interleave offline
    ``solve(pool=...)`` fan-outs on the same slots, and ``close()`` it once —
    that amortisation across re-solves is what
    ``benchmarks/bench_offline_pool.py`` and the streaming benchmarks
    measure.  ``close()`` is idempotent and terminal: a closed pool raises
    on submit rather than silently re-forking.

    Slot pinning
    ------------

    ``submit(slot, ...)`` reduces ``slot`` modulo :attr:`worker_count`, so a
    caller can use any stable integer (a shard id, a round-robin counter) as
    the pinning key.  Work pinned to the same slot runs in the same
    thread/process in submission order — the locality guarantee that lets a
    worker hold shard state across calls; work on different slots runs
    concurrently with no ordering relation.
    """

    def __init__(
        self,
        executor: str = "process",
        worker_count: Optional[int] = None,
        *,
        transport: str = "pickle",
        backend: Optional[str] = None,
    ) -> None:
        if executor not in POOL_POLICIES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {POOL_POLICIES}"
            )
        if transport not in TRANSPORTS:
            raise transport_error(transport)
        self.executor = executor
        self.transport = transport
        self.backend = backend
        if executor == "serial":
            self.worker_count = 1
        else:
            self.worker_count = max(1, worker_count or os.cpu_count() or 1)
        self._slots: List[Optional[Executor]] = [None] * self.worker_count
        self._closed = False
        self._broken: Optional[WorkerPoolBrokenError] = None
        self.stats = TransportStats(transport=transport)
        self._shipper: Optional[ShmShipper] = None
        self._log_queue = None
        self._log_listener = None
        logger.debug(
            "pool created: executor=%s worker_count=%d transport=%s backend=%s",
            executor,
            self.worker_count,
            transport,
            backend,
        )
        if backend is not None and executor != "process":
            # No worker initializer will run: the slots share this
            # interpreter, so select the backend here, process-globally.
            from .. import backends

            backends.set_backend(backend)

    @property
    def shm_active(self) -> bool:
        """Whether shipments on this pool actually go through shared memory
        (shm transport *and* a real pipe to cross)."""
        return self.transport == "shm" and self.executor == "process"

    @property
    def shipper(self) -> ShmShipper:
        """The pool's segment manager (created lazily; shm transport only)."""
        if not self.shm_active:
            raise RuntimeError("shipper is only available on shm-transport process pools")
        if self._shipper is None:
            self._shipper = ShmShipper(stats=self.stats)
        return self._shipper

    def _log_spec(self):
        """``(queue, level)`` relaying worker log records to this process.

        Created lazily with the first process slot, and only when the parent
        actually configured ``repro`` logging — otherwise workers get None
        and fall back to their own ``REPRO_LOG`` handling, and the pool pays
        nothing for the feature.
        """
        level = obs_logs.configured_level()
        if level is None:
            return None
        if self._log_queue is None:
            self._log_queue = multiprocessing.Queue()
            self._log_listener = obs_logs.start_record_relay(self._log_queue)
        return (self._log_queue, level)

    def _slot_executor(self, slot: int) -> Executor:
        pool = self._slots[slot]
        if pool is None:
            if self.executor == "thread":
                pool = ThreadPoolExecutor(max_workers=1)
            else:
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_slot_initializer,
                    initargs=(self.backend, self._log_spec()),
                )
            self._slots[slot] = pool
        return pool

    @property
    def broken(self) -> bool:
        """Whether a worker death has torn the pool down."""
        return self._broken is not None

    def _mark_broken(self, slot: int, cause: BaseException) -> WorkerPoolBrokenError:
        """Record a dead worker and tear the whole pool down.

        Every slot is shut down with its queued work cancelled, so the crash
        of one worker can never leave the pool half-poisoned — alive on some
        slots, broken on others.  Returns (does not raise) the diagnostic
        error so callers can chain it onto the executor's own exception.
        """
        if self._broken is None:
            logger.error(
                "worker slot %d/%d died mid-call (%s); closing the pool",
                slot,
                self.worker_count,
                type(cause).__name__,
            )
            self._broken = WorkerPoolBrokenError(
                f"worker slot {slot}/{self.worker_count} of this {self.executor!r} "
                f"pool died mid-call ({type(cause).__name__}: {cause}); the pool "
                "has been closed — open a fresh pool to continue",
                slot=slot,
            )
            self.close(cancel_pending=True)
        return self._broken

    def submit(self, slot: int, fn, /, *args):
        """Run ``fn(*args)`` on a slot (inline under the serial policy).

        Returns a future; calls submitted to the same slot execute in order,
        in the same thread/process.  If the slot's worker has died, raises
        :class:`WorkerPoolBrokenError` naming the slot (and closes the pool)
        instead of the executor's bare :class:`BrokenExecutor`.
        """
        if self._broken is not None:
            raise self._broken
        if self._closed:
            raise RuntimeError("pool is closed")
        slot %= self.worker_count
        if self.executor == "serial":
            try:
                return _ImmediateFuture(result=fn(*args))
            except BaseException as exc:  # surfaced via .result(), like a Future
                return _ImmediateFuture(exception=exc)
        try:
            future = self._slot_executor(slot).submit(fn, *args)
        except BrokenExecutor as exc:
            raise self._mark_broken(slot, exc) from exc
        return _SlotFuture(self, slot, future)

    def submit_append(self, slot: int, token: int, delta: ShardPayloadDelta):
        """Submit one stream-append over the pool's transport.

        On shm transport the delta's columns are copied into a segment and
        only the descriptor is pickled; the segment is recycled when the
        returned future completes (same slot, submission order — see the
        transport module's correctness model).  Any shipping failure falls
        back to the pickle path for that batch and is counted in
        ``stats.pickle_fallbacks``, so a degraded environment degrades
        throughput, never correctness.
        """
        from .transport import delta_wire_bytes

        if self.shm_active:
            try:
                desc = self.shipper.ship_delta(delta)
            except (OSError, RuntimeError, ValueError) as exc:
                logger.warning(
                    "shm shipment failed for shard %d, falling back to pickle: %s",
                    delta.shard_id, exc,
                )
                self.stats.record_pickle(
                    delta.shard_id, delta_wire_bytes(delta), fallback=True
                )
                return self.submit(slot, _pool_append, token, delta.shard_id, delta)
            future = self.submit(slot, _pool_append_shm, token, delta.shard_id, desc)
            future.add_done_callback(lambda _f: self._shipper.release(desc.segment))
            return future
        if self.executor == "process":
            self.stats.record_pickle(delta.shard_id, delta_wire_bytes(delta))
        return self.submit(slot, _pool_append, token, delta.shard_id, delta)

    def close(self, cancel_pending: bool = True) -> None:
        """Shut every slot executor down (idempotent).

        ``cancel_pending`` (default) drops work that is queued but not yet
        running, so teardown — a Ctrl-C, an error-path ``with`` exit, a
        broken-worker shutdown — returns as soon as the in-flight call
        finishes instead of draining the whole backlog first.  Pass
        ``cancel_pending=False`` to wait for every queued call (only sound
        when the caller has already collected all its futures).
        """
        self._closed = True
        slots, self._slots = self._slots, [None] * self.worker_count
        for pool in slots:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=cancel_pending)
        # After the workers are gone nothing can be reading the segments, so
        # unlink them all — every teardown path (context exit, SIGINT unwind,
        # broken-worker shutdown) funnels through here and leaves /dev/shm
        # clean.
        if self._shipper is not None:
            self._shipper.close()
        # Workers are gone, so the relay queue can't receive more records;
        # drain and stop the listener, then drop the queue's feeder thread.
        if self._log_listener is not None:
            self._log_listener.stop()
            self._log_listener = None
        if self._log_queue is not None:
            self._log_queue.close()
            self._log_queue.cancel_join_thread()
            self._log_queue = None
        logger.debug("pool closed: executor=%s", self.executor)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
