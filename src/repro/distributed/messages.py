"""Message types exchanged between the coordinator and shard workers.

The distributed mode in this library is simulated in-process, but the
coordinator/worker boundary is kept explicit: workers only ever see a
:class:`ShardWorkRequest` and answer with a :class:`ShardWorkResult`, both of
which are plain serialisable records.  This keeps the solve path honest about
what information actually crosses the wire in a real deployment (each city /
district solver needs only its own drivers and tasks, never the global
instance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps scipy off this path
    from ..offline.flow import ShardBounds


def _relative_gap(value: float, bound: float) -> float:
    """Relative gap, clamped >= 0 (same rule as ``repro.offline.flow``)."""
    return max(0.0, bound - value) / max(abs(bound), 1e-9)


@dataclass(frozen=True, slots=True)
class ShardWorkRequest:
    """Ask one worker to solve one shard."""

    shard_id: int
    driver_count: int
    task_count: int
    #: Which solver the worker should run ("greedy", "nearest", "maxMargin",
    #: "lp", "auto").
    solver_name: str
    #: Seed for the shard's stochastic tie-breaking (random/nearest dispatch).
    #: The coordinator derives it deterministically from its base seed and the
    #: shard id, so any executor — serial, thread pool or process pool —
    #: hands every shard the same seed and the merged solution is identical.
    seed: int = 0
    #: Relative-gap knob for the exact tier: ``solver_name="auto"`` keeps the
    #: greedy solution on shards whose gap against the Lagrangian bound is
    #: already below this threshold (ignored by the other solvers).
    gap_threshold: float = 0.02
    #: Ask the worker to record flight-recorder spans while solving and ship
    #: them back on :attr:`ShardWorkResult.spans`.  Solvers never read this —
    #: parity contract 19 (traced == untraced merges) is structural.
    trace: bool = False


@dataclass(frozen=True, slots=True)
class ShardWorkResult:
    """A worker's answer: the shard-local assignment and its value."""

    shard_id: int
    solver_name: str
    #: driver id -> shard-local task indices.
    assignment: Dict[str, Tuple[int, ...]]
    #: driver id -> profit of that driver's shard-local plan.
    driver_profits: Dict[str, float]
    total_value: float
    served_count: int
    elapsed_s: float
    #: Bound sandwich computed by the exact tier (``solver_name`` "lp"/"auto");
    #: ``None`` for the heuristic solvers.
    bounds: Optional["ShardBounds"] = None
    #: Flight-recorder spans collected worker-side while solving, as plain
    #: ``repro.obs.trace.SpanTuple`` tuples (pickle-safe; empty when the
    #: request did not ask for tracing).  The coordinator stitches these into
    #: its own span tree via ``TraceRecorder.adopt``.
    spans: Tuple = ()


@dataclass(frozen=True, slots=True)
class CoordinatorReport:
    """Summary the coordinator produces after merging every shard result."""

    shard_count: int
    total_value: float
    served_count: int
    wall_clock_s: float
    slowest_shard_s: float
    per_shard_values: Tuple[float, ...]

    @property
    def critical_path_speedup(self) -> float:
        """Idealised speed-up if shards ran fully in parallel: total worker
        time divided by the slowest shard's time."""
        total_worker_time = sum(self.per_shard_durations) if self.per_shard_durations else 0.0
        if self.slowest_shard_s <= 0:
            return 1.0
        return total_worker_time / self.slowest_shard_s

    #: Populated by the coordinator; kept separate from values for clarity.
    per_shard_durations: Tuple[float, ...] = ()
    #: Executor policy the coordinator ran with ("serial", "thread", "process").
    executor: str = "serial"
    #: Worker-pool width used for the fan-out (1 for the serial policy).
    worker_count: int = 1
    #: How many shards were degenerate (no tasks or no drivers) and were
    #: short-circuited by the coordinator without ever reaching a worker.
    empty_shard_count: int = 0
    #: Task load per shard, in shard order — the raw routed count, so a
    #: degenerate shard (e.g. tasks but no drivers) still reports its real
    #: load.  This is the offline half of the load round trip: feed it —
    #: via ``ShardLoadReport.from_prior`` — into a ``LoadAwarePartitioner``
    #: to pre-split the zones this solve proved hot before the next solve.
    per_shard_task_counts: Tuple[int, ...] = ()
    #: Transport the fan-out shipped payloads over ("pickle" or "shm").
    transport: str = "pickle"
    #: Bytes that actually crossed executor pipes for this solve (pickled
    #: payloads, or just descriptors on shm); 0 for serial/thread where no
    #: pipe exists.
    bytes_over_pipe: int = 0
    #: Array bytes shipped through shared-memory segments instead.
    shm_bytes: int = 0
    #: Shipments that reused an existing segment rather than allocating.
    segment_reuses: int = 0
    #: Shm shipments that fell back to pickling (degraded environment).
    pickle_fallbacks: int = 0
    #: Per-shard bound sandwiches in shard order, when the exact tier ran
    #: (``solver_name`` "lp"/"auto"); degenerate shards carry the zero record,
    #: heuristic solvers leave the tuple empty.
    per_shard_bounds: Tuple[Optional["ShardBounds"], ...] = ()
    #: Per-phase seconds spent in this solve, summed over the stitched span
    #: tree (coordinator + every worker) when tracing was enabled — pairs in
    #: ``repro.obs.trace.PHASE_NAMES`` order (candidates / hungarian / lp /
    #: transport / merge); empty when tracing was off.
    phase_breakdown: Tuple[Tuple[str, float], ...] = ()
    #: Spans recorded for this solve (0 when tracing was off).
    trace_span_count: int = 0

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """``phase_breakdown`` as a dict (empty when tracing was off)."""
        return dict(self.phase_breakdown)

    # ------------------------------------------------------------------
    # optimality-gap aggregates (exact tier only)
    # ------------------------------------------------------------------
    @property
    def bounds_reported(self) -> bool:
        """Whether the exact tier ran and every shard carries bounds."""
        return bool(self.per_shard_bounds) and all(
            b is not None for b in self.per_shard_bounds
        )

    @property
    def greedy_revenue(self) -> float:
        """Summed greedy objective value across shards (NaN without bounds).

        "Revenue" here is the objective the solvers optimise — drivers'
        profit (Eq. 4) or social welfare — matching the ROADMAP's
        "revenue with error bars" naming, not the fare total.
        """
        if not self.bounds_reported:
            return float("nan")
        return sum(b.greedy_value for b in self.per_shard_bounds)

    @property
    def lp_revenue(self) -> float:
        """Summed exact-tier objective value across shards (NaN without bounds)."""
        if not self.bounds_reported:
            return float("nan")
        return sum(b.lp_value for b in self.per_shard_bounds)

    @property
    def lagrangian_bound(self) -> float:
        """Summed per-shard Lagrangian bounds (NaN without bounds)."""
        if not self.bounds_reported:
            return float("nan")
        return sum(b.lagrangian_bound for b in self.per_shard_bounds)

    @property
    def upper_bound(self) -> float:
        """Summed per-shard certified bounds — each shard contributes its
        tightest (min of LP and Lagrangian), so the sum bounds the sharded
        optimum (NaN without bounds)."""
        if not self.bounds_reported:
            return float("nan")
        return sum(b.upper_bound for b in self.per_shard_bounds)

    @property
    def optimality_gap(self) -> float:
        """Relative gap of the shipped solution against the certified bound,
        clamped >= 0 (NaN without bounds)."""
        if not self.bounds_reported:
            return float("nan")
        return _relative_gap(self.lp_revenue, self.upper_bound)

    @property
    def greedy_gap(self) -> float:
        """Relative gap of the greedy incumbent against the certified bound —
        the scenario-level "error bar" (NaN without bounds)."""
        if not self.bounds_reported:
            return float("nan")
        return _relative_gap(self.greedy_revenue, self.upper_bound)


@dataclass(frozen=True, slots=True)
class ShardStreamResult:
    """A streaming worker's answer after its shard's stream is drained."""

    shard_id: int
    #: driver id -> shard-local task indices (drivers with work only).
    assignment: Dict[str, Tuple[int, ...]]
    #: driver id -> profit of that driver's simulated plan.
    driver_profits: Dict[str, float]
    #: Shard-local indices of orders the stream could not serve.
    rejected_tasks: Tuple[int, ...]
    task_count: int
    total_value: float
    served_count: int
    #: Worker-side time spent in this shard's appends + final flush.
    elapsed_s: float
    #: Sum of publish->pickup waits over the shard's served tasks (simulated
    #: time, not wall clock).  Computed worker-side from the same outcome as
    #: the assignment, so it is executor-independent like everything else.
    wait_total_s: float = 0.0
    #: Flight-recorder spans collected worker-side across the shard stream's
    #: whole life (open -> appends -> finish), as plain
    #: ``repro.obs.trace.SpanTuple`` tuples; empty when tracing was off.
    spans: Tuple = ()


@dataclass(frozen=True, slots=True)
class StreamReport:
    """Summary of one streamed solve on the persistent worker pool."""

    shard_count: int
    batch_count: int
    total_value: float
    served_count: int
    rejected_count: int
    wall_clock_s: float
    slowest_shard_s: float
    per_shard_task_counts: Tuple[int, ...]
    per_shard_durations: Tuple[float, ...]
    executor: str = "serial"
    worker_count: int = 1
    #: Skew-aware split/merge actions taken between windows.
    rebalance_count: int = 0
    #: Sum of publish->pickup waits over all served tasks (simulated time),
    #: merged from the per-shard totals in shard order.
    wait_total_s: float = 0.0
    #: Transport the stream's appends shipped over ("pickle" or "shm").
    transport: str = "pickle"
    #: Bytes that actually crossed executor pipes for this stream's appends
    #: (pickled deltas, or just descriptors on shm); 0 for serial/thread.
    bytes_over_pipe: int = 0
    #: Array bytes shipped through shared-memory segments instead.
    shm_bytes: int = 0
    #: Shipments that reused an existing segment rather than allocating.
    segment_reuses: int = 0
    #: Shm shipments that fell back to pickling (degraded environment).
    pickle_fallbacks: int = 0
    #: Per-phase seconds spent in this stream, summed over the stitched span
    #: tree (coordinator + every shard session) when tracing was enabled —
    #: pairs in ``repro.obs.trace.PHASE_NAMES`` order; empty when off.
    phase_breakdown: Tuple[Tuple[str, float], ...] = ()
    #: Spans recorded for this stream (0 when tracing was off).
    trace_span_count: int = 0

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """``phase_breakdown`` as a dict (empty when tracing was off)."""
        return dict(self.phase_breakdown)

    @property
    def critical_path_speedup(self) -> float:
        """Idealised speed-up if shards streamed fully in parallel: total
        worker time divided by the slowest shard's time."""
        total_worker_time = sum(self.per_shard_durations)
        if self.slowest_shard_s <= 0:
            return 1.0
        return total_worker_time / self.slowest_shard_s

    @property
    def mean_wait_s(self) -> float:
        """Mean publish->pickup wait of a served task (0 when nothing was
        served) — the latency counterpart of ``total_value``/``served_count``
        in per-scenario comparisons."""
        if self.served_count <= 0:
            return 0.0
        return self.wait_total_s / self.served_count


class Stopwatch:
    """A tiny context-manager stopwatch used by workers and the coordinator."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self.elapsed_s = time.perf_counter() - self._start
