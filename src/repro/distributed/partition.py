"""Spatial partitioning of a city-scale market.

The paper notes that the algorithms "have to be distributed — in real
scenarios, we can partition the map in city's scale, and then design
algorithms to deal with the tasks in each city", while warning that
partitioning a single city further into districts loses the cross-district
trips.  This module implements exactly that trade-off so it can be measured:
a market instance is split into zone shards, each shard is solved
independently, and the ablation benchmark quantifies how much solution
quality is sacrificed for the speed-up as the shard count grows.

Tasks are routed to the shard containing their pickup point; drivers are
routed to the shard containing their source.  Shards therefore have disjoint
task sets, so merging shard solutions can never assign a task twice.

Two partitioners produce the shards:

* :class:`SpatialPartitioner` — a blind, uniform ``rows x cols`` grid.  The
  right default when nothing is known about the demand.
* :class:`LoadAwarePartitioner` — seeded by a *prior* solve's per-shard load
  report (:class:`ShardLoadReport`), it pre-splits the zones a previous day
  proved hot and pre-merges the ones that proved cold, using exactly the
  split/merge decision rule (:func:`plan_rebalance_action` under a
  :class:`RebalancePolicy`) the streaming coordinator applies between
  windows.  Demand is sticky across re-solves — downtown stays downtown —
  so yesterday's skew is a good predictor of today's load balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geo import BoundingBox, GeoPoint
from ..geo.batch import coord_array
from ..market.driver import Driver
from ..market.instance import MarketInstance


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Identity and extent of one shard.

    ``region`` is a single representative box (for a multi-box shard, the
    hull of its boxes — reports and area accounting only).  ``boxes`` is
    the shard's exact box group when it has one beyond the region itself
    (merged shards from a :class:`LoadAwarePartitioner`); routing and load
    round trips must use ``boxes or (region,)``, never the hull, because a
    hull can overlap other shards' territory.
    """

    shard_id: int
    region: BoundingBox
    boxes: Tuple[BoundingBox, ...] = ()


@dataclass(frozen=True)
class MarketShard:
    """A shard: its spec, its sub-instance and the index mapping back to the
    parent instance (shard-local task index -> global task index)."""

    spec: ShardSpec
    instance: MarketInstance
    global_task_indices: Tuple[int, ...]
    global_driver_ids: Tuple[str, ...]

    @property
    def task_count(self) -> int:
        """Number of tasks routed into this shard (its per-solve load)."""
        return self.instance.task_count

    @property
    def driver_count(self) -> int:
        """Number of drivers whose source falls inside this shard."""
        return self.instance.driver_count


@dataclass(frozen=True)
class PartitionPlan:
    """The result of partitioning: all shards plus anything left unassigned."""

    shards: Tuple[MarketShard, ...]
    #: Global indices of tasks that fell outside every shard region (none when
    #: the grid covers the instance's bounding box).
    unassigned_tasks: Tuple[int, ...]

    @property
    def shard_count(self) -> int:
        """How many shards the plan produced (including degenerate ones)."""
        return len(self.shards)

    def shard_of_task(self, global_task_index: int) -> int:
        """Shard id serving a global task index (raises if unassigned)."""
        for shard in self.shards:
            if global_task_index in shard.global_task_indices:
                return shard.spec.shard_id
        raise KeyError(f"task {global_task_index} is not assigned to any shard")


def _plan_from_routing(
    instance: MarketInstance,
    specs: Sequence[ShardSpec],
    task_owner: np.ndarray,
    driver_owner: np.ndarray,
) -> PartitionPlan:
    """Assemble a :class:`PartitionPlan` from per-task / per-driver owner
    indices (the shard-building contract shared by every partitioner:
    disjoint task sets, drivers kept in fleet order, one sub-instance per
    spec)."""
    task_buckets: Dict[int, List[int]] = {spec.shard_id: [] for spec in specs}
    for index, owner in enumerate(task_owner):
        task_buckets[int(owner)].append(index)

    driver_buckets: Dict[int, List[Driver]] = {spec.shard_id: [] for spec in specs}
    for driver, owner in zip(instance.drivers, driver_owner):
        driver_buckets[int(owner)].append(driver)

    shards: List[MarketShard] = []
    for spec in specs:
        task_indices = task_buckets[spec.shard_id]
        drivers = driver_buckets[spec.shard_id]
        sub_instance = MarketInstance(
            drivers=tuple(drivers),
            tasks=tuple(instance.tasks[i] for i in task_indices),
            cost_model=instance.cost_model,
        )
        shards.append(
            MarketShard(
                spec=spec,
                instance=sub_instance,
                global_task_indices=tuple(task_indices),
                global_driver_ids=tuple(d.driver_id for d in drivers),
            )
        )
    return PartitionPlan(shards=tuple(shards), unassigned_tasks=())


class SpatialPartitioner:
    """Splits a market instance into a ``rows x cols`` grid of zone shards."""

    def __init__(self, region: BoundingBox, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.region = region
        self.rows = rows
        self.cols = cols

    @property
    def shard_count(self) -> int:
        """Number of grid cells (= shards) the partitioner produces."""
        return self.rows * self.cols

    def shard_index(self, point: GeoPoint) -> int:
        """The shard id of a point (row-major over the grid)."""
        row, col = self.region.cell_index(point, self.rows, self.cols)
        return row * self.cols + col

    def shard_indices(self, points: Iterable[GeoPoint]) -> np.ndarray:
        """Vectorised :meth:`shard_index` over a point collection."""
        coords = coord_array(list(points))
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        rows, cols = self.region.cell_indices(
            coords[:, 0], coords[:, 1], self.rows, self.cols
        )
        return rows * self.cols + cols

    def partition(self, instance: MarketInstance) -> PartitionPlan:
        """Split ``instance`` into shards."""
        regions = self.region.split(self.rows, self.cols)
        specs = [
            ShardSpec(shard_id=shard_id, region=regions[shard_id])
            for shard_id in range(self.shard_count)
        ]
        return _plan_from_routing(
            instance,
            specs,
            self.shard_indices(task.source for task in instance.tasks),
            self.shard_indices(driver.source for driver in instance.drivers),
        )


class ZonePartition:
    """Explicit shard regions: each shard owns a *set* of boxes.

    The uniform grid of :class:`SpatialPartitioner` is enough for a static
    partition, but the streaming coordinator's skew-aware rebalance produces
    non-uniform shards: splitting the hottest shard replaces one box with its
    two halves, merging cold shards pools their boxes into one shard.  A
    ``ZonePartition`` routes points over such box sets deterministically:

    * points are first clamped into the outer service region (mirroring the
      grid partitioner's clamp of out-of-box points);
    * containment is half-open (``south <= lat < north``) except on the outer
      region's own north/east edges, so as long as the boxes tile the region
      every point belongs to **exactly one** box — routing is independent of
      shard order, which is what makes a rebalanced stream reproducible as a
      from-start partition.
    """

    def __init__(
        self,
        region: BoundingBox,
        box_groups: Sequence[Sequence[BoundingBox]],
    ) -> None:
        if not box_groups or any(not group for group in box_groups):
            raise ValueError("every shard needs at least one box")
        self.region = region
        self.box_groups: Tuple[Tuple[BoundingBox, ...], ...] = tuple(
            tuple(group) for group in box_groups
        )

    @classmethod
    def from_grid(cls, region: BoundingBox, rows: int, cols: int) -> "ZonePartition":
        """One single-box shard per cell of a ``rows x cols`` grid."""
        return cls(region, [(box,) for box in region.split(rows, cols)])

    @property
    def shard_count(self) -> int:
        """Number of shards (box groups) the partition routes over."""
        return len(self.box_groups)

    def _box_mask(
        self, box: BoundingBox, lats: np.ndarray, lons: np.ndarray
    ) -> np.ndarray:
        lat_hi = (
            lats <= box.north if box.north >= self.region.north else lats < box.north
        )
        lon_hi = lons <= box.east if box.east >= self.region.east else lons < box.east
        return (lats >= box.south) & lat_hi & (lons >= box.west) & lon_hi

    def route(self, points: Iterable[GeoPoint]) -> np.ndarray:
        """The shard index of every point (clamped into the region first).

        Containment convention: a point belongs to a box when
        ``south <= lat < north`` and ``west <= lon < east`` — half-open on
        the north/east edges — *except* on the outer region's own north/east
        boundary, where the comparison closes (``<=``) so clamped points on
        the region's edge are still owned.  As long as the box groups tile
        the region, every point therefore lands in exactly one box and the
        result is independent of the order of the groups.
        """
        coords = coord_array(list(points))
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        lats = np.clip(coords[:, 0], self.region.south, self.region.north)
        lons = np.clip(coords[:, 1], self.region.west, self.region.east)
        out = np.full(coords.shape[0], -1, dtype=np.intp)
        for shard_index, group in enumerate(self.box_groups):
            unassigned = out < 0
            if not unassigned.any():
                break
            for box in group:
                hit = unassigned & self._box_mask(box, lats, lons)
                out[hit] = shard_index
                unassigned &= ~hit
        if (out < 0).any():
            # Float-boundary stragglers (boxes not exactly tiling the region):
            # deterministically hand each to the shard whose first box centre
            # is nearest.
            centers = np.array(
                [[g[0].center.lat, g[0].center.lon] for g in self.box_groups]
            )
            for i in np.nonzero(out < 0)[0]:
                d2 = (centers[:, 0] - lats[i]) ** 2 + (centers[:, 1] - lons[i]) ** 2
                out[i] = int(np.argmin(d2))
        return out

    def split_group(self, shard_index: int) -> Tuple[
        Tuple[BoundingBox, ...], Tuple[BoundingBox, ...]
    ]:
        """The two box groups a split of ``shard_index`` would produce
        (see :func:`split_box_group`)."""
        return split_box_group(self.box_groups[shard_index])


def split_box_group(
    group: Sequence[BoundingBox],
) -> Tuple[Tuple[BoundingBox, ...], Tuple[BoundingBox, ...]]:
    """The two box groups a split of ``group`` would produce.

    A single-box shard splits its box in half along the longer axis; a
    multi-box shard (a previous merge) splits its box list in half.  Shared
    by the streaming rebalancer (via :meth:`ZonePartition.split_group`) and
    the offline :class:`LoadAwarePartitioner`.
    """
    group = tuple(group)
    if len(group) > 1:
        half = len(group) // 2
        return group[:half], group[half:]
    box = group[0]
    if box.height_km() >= box.width_km():
        first, second = box.split(2, 1)
    else:
        first, second = box.split(1, 2)
    return (first,), (second,)


def translate_assignment(
    shard: MarketShard, local_assignment: Dict[str, Sequence[int]]
) -> Dict[str, Tuple[int, ...]]:
    """Convert a shard-local ``driver -> task indices`` assignment into global
    task indices of the parent instance."""
    translated: Dict[str, Tuple[int, ...]] = {}
    for driver_id, path in local_assignment.items():
        translated[driver_id] = tuple(shard.global_task_indices[m] for m in path)
    return translated


# ----------------------------------------------------------------------
# skew-aware split/merge machinery
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RebalancePolicy:
    """Skew-aware shard split/merge knobs.

    The *streaming* coordinator consults the policy every
    ``check_every_batches`` arrival batches; the *offline*
    :class:`LoadAwarePartitioner` applies the same rule iteratively to a
    prior solve's load report before a solve.  In both cases the decision
    (:func:`plan_rebalance_action`) is: if the hottest shard holds at least
    ``hot_factor`` times the mean task load (and at least
    ``min_split_tasks`` tasks), split it — one box shard into its two halves
    along the longer axis, a multi-box shard into its two half lists.
    Otherwise, if the two coldest shards are both under ``cold_factor``
    times the mean, merge them into one multi-box shard.  Splitting lifts
    the ``total/slowest`` critical-path cap toward the shard count; merging
    stops starving workers on empty districts.

    Rebalancing is deterministic but *replaces* the fixed partition, so it
    forfeits parity with the original grid; instead the streaming contract is
    that the rebalanced stream is bit-identical to a from-start stream over
    the final regions (``DistributedStreamResult.regions``), and the offline
    contract is that the refined partition is a pure function of the prior
    load report.
    """

    check_every_batches: int = 4
    hot_factor: float = 2.0
    cold_factor: float = 0.2
    min_split_tasks: int = 64
    max_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.check_every_batches < 1:
            raise ValueError("check_every_batches must be >= 1")
        if self.hot_factor <= 1.0:
            raise ValueError("hot_factor must be > 1")
        if self.cold_factor < 0.0:
            raise ValueError("cold_factor must be >= 0")


@dataclass(frozen=True, slots=True)
class RebalanceAction:
    """One split/merge decision produced by :func:`plan_rebalance_action`.

    ``kind`` is ``"split"`` (positions holds the single hot shard) or
    ``"merge"`` (positions holds the two cold shards, coldest first — callers
    concatenate their boxes in that order so the replayed partition is
    reproducible).
    """

    kind: str
    positions: Tuple[int, ...]


def plan_rebalance_action(
    counts: Sequence[float], policy: RebalancePolicy
) -> Optional[RebalanceAction]:
    """Decide the next split/merge over per-shard task loads, or ``None``.

    This is the single decision rule shared by the streaming rebalancer and
    the offline :class:`LoadAwarePartitioner`: deterministic (ties broken by
    shard position — lowest position wins for the hot shard, coldest-first
    ordering for the merge pair) and purely a function of ``counts`` and the
    policy, which is what makes both the rebalanced stream and the pre-split
    offline partition reproducible.
    """
    total = sum(counts)
    if total == 0 or len(counts) == 0:
        return None
    mean = total / len(counts)
    hot = max(range(len(counts)), key=lambda i: (counts[i], -i))
    can_split = policy.max_shards is None or len(counts) < policy.max_shards
    if (
        can_split
        and counts[hot] >= policy.hot_factor * mean
        and counts[hot] >= policy.min_split_tasks
    ):
        return RebalanceAction(kind="split", positions=(hot,))
    if len(counts) < 2:
        return None
    cold = sorted(range(len(counts)), key=lambda i: (counts[i], i))[:2]
    if all(counts[i] <= policy.cold_factor * mean for i in cold):
        return RebalanceAction(kind="merge", positions=tuple(cold))
    return None


def hull_of_boxes(boxes: Sequence[BoundingBox]) -> BoundingBox:
    """The tightest single box containing every box in ``boxes``.

    Used to give a merged multi-box shard a representative
    :attr:`ShardSpec.region` (reports and area accounting only — routing
    always uses the exact box group, never the hull).
    """
    if not boxes:
        raise ValueError("need at least one box")
    return BoundingBox(
        south=min(box.south for box in boxes),
        west=min(box.west for box in boxes),
        north=max(box.north for box in boxes),
        east=max(box.east for box in boxes),
    )


# ----------------------------------------------------------------------
# load-aware partitioning (offline path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardLoadReport:
    """Per-shard regions + task loads observed by a prior solve.

    The exchange format between one solve and the next partitioning
    decision: ``regions[i]`` is shard ``i``'s box group and
    ``task_counts[i]`` how many tasks it owned.  Build one with
    :meth:`from_prior` from either an offline
    :class:`~repro.distributed.coordinator.DistributedResult` (single-box
    grid shards) or a streamed
    :class:`~repro.distributed.coordinator.DistributedStreamResult` (whose
    possibly rebalanced ``regions`` already round-trip).
    """

    regions: Tuple[Tuple[BoundingBox, ...], ...]
    task_counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.regions) != len(self.task_counts):
            raise ValueError("regions and task_counts must align shard-for-shard")
        if not self.regions:
            raise ValueError("a load report needs at least one shard")

    @classmethod
    def from_prior(cls, prior) -> "ShardLoadReport":
        """Extract the report from a prior solve's result (duck-typed).

        Accepts a :class:`ShardLoadReport` (returned as-is), an offline
        ``DistributedResult`` or bare :class:`PartitionPlan` (regions come
        from the shard specs) or a streamed ``DistributedStreamResult``
        (regions come from the post-rebalance ``regions`` round trip).
        """
        if isinstance(prior, ShardLoadReport):
            return prior
        plan = getattr(prior, "plan", None) or (
            prior if isinstance(prior, PartitionPlan) else None
        )
        if plan is not None:
            # A merged shard's spec.region is only the hull of its boxes —
            # round-trip the exact box group so refined partitions survive
            # another report/refine cycle without overlapping territory.
            return cls(
                regions=tuple(
                    shard.spec.boxes or (shard.spec.region,) for shard in plan.shards
                ),
                task_counts=tuple(shard.task_count for shard in plan.shards),
            )
        return cls(
            regions=tuple(tuple(group) for group in prior.regions),
            task_counts=tuple(prior.report.per_shard_task_counts),
        )

    @property
    def max_over_mean(self) -> float:
        """Load-balance figure of merit: hottest shard load over the mean
        (1.0 is perfectly balanced; the critical-path cap scales with it)."""
        total = sum(self.task_counts)
        if total == 0:
            return 1.0
        return max(self.task_counts) / (total / len(self.task_counts))


class LoadAwarePartitioner:
    """Pre-split hot zones / pre-merge cold ones from a prior load report.

    Where :class:`SpatialPartitioner` cuts the city blind, this partitioner
    consumes the per-shard loads a *previous* solve observed
    (:class:`ShardLoadReport`) and refines that solve's regions **before**
    the next solve: iteratively apply :func:`plan_rebalance_action` under
    ``policy`` — split the hottest shard (estimating half the load per
    half), merge the coldest pair — until the rule goes quiet or ``rounds``
    is exhausted.  The refinement is a pure function of the report and the
    policy, so two partitioners built from the same prior produce identical
    shards (pinned by ``tests/distributed/test_offline_pool.py``).

    The refined partition plugs straight into
    :class:`~repro.distributed.coordinator.DistributedCoordinator` in place
    of a grid partitioner: :meth:`partition` serves the offline ``solve()``
    path, and :attr:`box_groups` serves ``open_stream``'s router, so one
    skew profile can steer both execution modes.
    """

    def __init__(
        self,
        region: BoundingBox,
        prior,
        policy: Optional[RebalancePolicy] = None,
        rounds: int = 8,
    ) -> None:
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        self.region = region
        self.policy = policy or RebalancePolicy()
        self.report = ShardLoadReport.from_prior(prior)
        self.zones = ZonePartition(
            region, self._refine(self.report, self.policy, rounds)
        )

    @staticmethod
    def _refine(
        report: ShardLoadReport, policy: RebalancePolicy, rounds: int
    ) -> List[Tuple[BoundingBox, ...]]:
        """Apply the split/merge rule to the report's regions ``rounds``
        times at most, mirroring the streaming rebalancer's bookkeeping:
        acted-on shards are removed and their replacements appended."""
        groups: List[Tuple[BoundingBox, ...]] = [tuple(g) for g in report.regions]
        loads: List[float] = [float(count) for count in report.task_counts]
        for _ in range(rounds):
            action = plan_rebalance_action(loads, policy)
            if action is None:
                break
            if action.kind == "split":
                hot = action.positions[0]
                left, right = split_box_group(groups[hot])
                load = loads[hot]
                del groups[hot], loads[hot]
                groups += [left, right]
                # Half-and-half is the only deterministic estimate available
                # without re-routing; the true split is measured next solve.
                loads += [load / 2.0, load / 2.0]
            else:
                first, second = action.positions  # coldest first
                merged_boxes = groups[first] + groups[second]
                merged_load = loads[first] + loads[second]
                for position in sorted(action.positions, reverse=True):
                    del groups[position], loads[position]
                groups.append(merged_boxes)
                loads.append(merged_load)
        return groups

    @property
    def box_groups(self) -> Tuple[Tuple[BoundingBox, ...], ...]:
        """The refined shard regions (consumed by ``open_stream``'s router)."""
        return self.zones.box_groups

    @property
    def shard_count(self) -> int:
        """Number of shards after refinement."""
        return self.zones.shard_count

    def partition(self, instance: MarketInstance) -> PartitionPlan:
        """Split ``instance`` over the refined zones.

        Same contract as :meth:`SpatialPartitioner.partition`: tasks and
        drivers are routed by source, shards own disjoint task sets, and a
        multi-box shard's ``spec.region`` is the hull of its boxes.
        """
        specs = [
            ShardSpec(
                shard_id=shard_id, region=hull_of_boxes(group), boxes=tuple(group)
            )
            for shard_id, group in enumerate(self.zones.box_groups)
        ]
        return _plan_from_routing(
            instance,
            specs,
            self.zones.route(task.source for task in instance.tasks),
            self.zones.route(driver.source for driver in instance.drivers),
        )
