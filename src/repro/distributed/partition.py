"""Spatial partitioning of a city-scale market.

The paper notes that the algorithms "have to be distributed — in real
scenarios, we can partition the map in city's scale, and then design
algorithms to deal with the tasks in each city", while warning that
partitioning a single city further into districts loses the cross-district
trips.  This module implements exactly that trade-off so it can be measured:
a market instance is split into zone shards, each shard is solved
independently, and the ablation benchmark quantifies how much solution
quality is sacrificed for the speed-up as the shard count grows.

Tasks are routed to the shard containing their pickup point; drivers are
routed to the shard containing their source.  Shards therefore have disjoint
task sets, so merging shard solutions can never assign a task twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..geo import BoundingBox, GeoPoint
from ..geo.batch import coord_array
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Identity and extent of one shard."""

    shard_id: int
    region: BoundingBox


@dataclass(frozen=True)
class MarketShard:
    """A shard: its spec, its sub-instance and the index mapping back to the
    parent instance (shard-local task index -> global task index)."""

    spec: ShardSpec
    instance: MarketInstance
    global_task_indices: Tuple[int, ...]
    global_driver_ids: Tuple[str, ...]

    @property
    def task_count(self) -> int:
        return self.instance.task_count

    @property
    def driver_count(self) -> int:
        return self.instance.driver_count


@dataclass(frozen=True)
class PartitionPlan:
    """The result of partitioning: all shards plus anything left unassigned."""

    shards: Tuple[MarketShard, ...]
    #: Global indices of tasks that fell outside every shard region (none when
    #: the grid covers the instance's bounding box).
    unassigned_tasks: Tuple[int, ...]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of_task(self, global_task_index: int) -> int:
        """Shard id serving a global task index (raises if unassigned)."""
        for shard in self.shards:
            if global_task_index in shard.global_task_indices:
                return shard.spec.shard_id
        raise KeyError(f"task {global_task_index} is not assigned to any shard")


class SpatialPartitioner:
    """Splits a market instance into a ``rows x cols`` grid of zone shards."""

    def __init__(self, region: BoundingBox, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.region = region
        self.rows = rows
        self.cols = cols

    @property
    def shard_count(self) -> int:
        return self.rows * self.cols

    def shard_index(self, point: GeoPoint) -> int:
        """The shard id of a point (row-major over the grid)."""
        row, col = self.region.cell_index(point, self.rows, self.cols)
        return row * self.cols + col

    def shard_indices(self, points: Iterable[GeoPoint]) -> np.ndarray:
        """Vectorised :meth:`shard_index` over a point collection."""
        coords = coord_array(list(points))
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        rows, cols = self.region.cell_indices(
            coords[:, 0], coords[:, 1], self.rows, self.cols
        )
        return rows * self.cols + cols

    def partition(self, instance: MarketInstance) -> PartitionPlan:
        """Split ``instance`` into shards."""
        regions = self.region.split(self.rows, self.cols)

        task_buckets: Dict[int, List[int]] = {i: [] for i in range(self.shard_count)}
        for index, shard_id in enumerate(
            self.shard_indices(task.source for task in instance.tasks)
        ):
            task_buckets[int(shard_id)].append(index)

        driver_buckets: Dict[int, List[Driver]] = {i: [] for i in range(self.shard_count)}
        for driver, shard_id in zip(
            instance.drivers,
            self.shard_indices(driver.source for driver in instance.drivers),
        ):
            driver_buckets[int(shard_id)].append(driver)

        shards: List[MarketShard] = []
        for shard_id in range(self.shard_count):
            task_indices = task_buckets[shard_id]
            drivers = driver_buckets[shard_id]
            tasks: List[Task] = [instance.tasks[i] for i in task_indices]
            sub_instance = MarketInstance(
                drivers=tuple(drivers),
                tasks=tuple(tasks),
                cost_model=instance.cost_model,
            )
            shards.append(
                MarketShard(
                    spec=ShardSpec(shard_id=shard_id, region=regions[shard_id]),
                    instance=sub_instance,
                    global_task_indices=tuple(task_indices),
                    global_driver_ids=tuple(d.driver_id for d in drivers),
                )
            )
        return PartitionPlan(shards=tuple(shards), unassigned_tasks=())


class ZonePartition:
    """Explicit shard regions: each shard owns a *set* of boxes.

    The uniform grid of :class:`SpatialPartitioner` is enough for a static
    partition, but the streaming coordinator's skew-aware rebalance produces
    non-uniform shards: splitting the hottest shard replaces one box with its
    two halves, merging cold shards pools their boxes into one shard.  A
    ``ZonePartition`` routes points over such box sets deterministically:

    * points are first clamped into the outer service region (mirroring the
      grid partitioner's clamp of out-of-box points);
    * containment is half-open (``south <= lat < north``) except on the outer
      region's own north/east edges, so as long as the boxes tile the region
      every point belongs to **exactly one** box — routing is independent of
      shard order, which is what makes a rebalanced stream reproducible as a
      from-start partition.
    """

    def __init__(
        self,
        region: BoundingBox,
        box_groups: Sequence[Sequence[BoundingBox]],
    ) -> None:
        if not box_groups or any(not group for group in box_groups):
            raise ValueError("every shard needs at least one box")
        self.region = region
        self.box_groups: Tuple[Tuple[BoundingBox, ...], ...] = tuple(
            tuple(group) for group in box_groups
        )

    @classmethod
    def from_grid(cls, region: BoundingBox, rows: int, cols: int) -> "ZonePartition":
        """One single-box shard per cell of a ``rows x cols`` grid."""
        return cls(region, [(box,) for box in region.split(rows, cols)])

    @property
    def shard_count(self) -> int:
        return len(self.box_groups)

    def _box_mask(
        self, box: BoundingBox, lats: np.ndarray, lons: np.ndarray
    ) -> np.ndarray:
        lat_hi = (
            lats <= box.north if box.north >= self.region.north else lats < box.north
        )
        lon_hi = lons <= box.east if box.east >= self.region.east else lons < box.east
        return (lats >= box.south) & lat_hi & (lons >= box.west) & lon_hi

    def route(self, points: Iterable[GeoPoint]) -> np.ndarray:
        """The shard index of every point (clamped into the region first)."""
        coords = coord_array(list(points))
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        lats = np.clip(coords[:, 0], self.region.south, self.region.north)
        lons = np.clip(coords[:, 1], self.region.west, self.region.east)
        out = np.full(coords.shape[0], -1, dtype=np.intp)
        for shard_index, group in enumerate(self.box_groups):
            unassigned = out < 0
            if not unassigned.any():
                break
            for box in group:
                hit = unassigned & self._box_mask(box, lats, lons)
                out[hit] = shard_index
                unassigned &= ~hit
        if (out < 0).any():
            # Float-boundary stragglers (boxes not exactly tiling the region):
            # deterministically hand each to the shard whose first box centre
            # is nearest.
            centers = np.array(
                [[g[0].center.lat, g[0].center.lon] for g in self.box_groups]
            )
            for i in np.nonzero(out < 0)[0]:
                d2 = (centers[:, 0] - lats[i]) ** 2 + (centers[:, 1] - lons[i]) ** 2
                out[i] = int(np.argmin(d2))
        return out

    def split_group(self, shard_index: int) -> Tuple[
        Tuple[BoundingBox, ...], Tuple[BoundingBox, ...]
    ]:
        """The two box groups a split of ``shard_index`` would produce.

        A single-box shard splits its box in half along the longer axis; a
        multi-box shard (a previous merge) splits its box list in half.
        """
        group = self.box_groups[shard_index]
        if len(group) > 1:
            half = len(group) // 2
            return group[:half], group[half:]
        box = group[0]
        if box.height_km() >= box.width_km():
            first, second = box.split(2, 1)
        else:
            first, second = box.split(1, 2)
        return (first,), (second,)


def translate_assignment(
    shard: MarketShard, local_assignment: Dict[str, Sequence[int]]
) -> Dict[str, Tuple[int, ...]]:
    """Convert a shard-local ``driver -> task indices`` assignment into global
    task indices of the parent instance."""
    translated: Dict[str, Tuple[int, ...]] = {}
    for driver_id, path in local_assignment.items():
        translated[driver_id] = tuple(shard.global_task_indices[m] for m in path)
    return translated
