"""Distributed (sharded) solving of city-scale markets."""

from .coordinator import (
    EXECUTOR_POLICIES,
    SOLVER_NAMES,
    DistributedCoordinator,
    DistributedResult,
    DistributedStreamResult,
    DistributedStreamSession,
    RebalancePolicy,
    solve_shard,
    solve_shard_payload,
)
from .messages import (
    CoordinatorReport,
    ShardStreamResult,
    ShardWorkRequest,
    ShardWorkResult,
    Stopwatch,
    StreamReport,
)
from .payload import (
    ShardPayload,
    ShardPayloadDelta,
    delta_from_tasks,
    instance_from_payload,
    payload_from_shard,
    tasks_from_delta,
)
from .partition import (
    MarketShard,
    PartitionPlan,
    ShardSpec,
    SpatialPartitioner,
    ZonePartition,
    translate_assignment,
)
from .pool import PersistentWorkerPool, ShardStreamSession

__all__ = [
    "SpatialPartitioner",
    "ZonePartition",
    "PartitionPlan",
    "MarketShard",
    "ShardSpec",
    "translate_assignment",
    "ShardWorkRequest",
    "ShardWorkResult",
    "ShardStreamResult",
    "StreamReport",
    "CoordinatorReport",
    "Stopwatch",
    "DistributedCoordinator",
    "DistributedResult",
    "DistributedStreamSession",
    "DistributedStreamResult",
    "RebalancePolicy",
    "PersistentWorkerPool",
    "ShardStreamSession",
    "solve_shard",
    "solve_shard_payload",
    "SOLVER_NAMES",
    "EXECUTOR_POLICIES",
    "ShardPayload",
    "ShardPayloadDelta",
    "payload_from_shard",
    "instance_from_payload",
    "delta_from_tasks",
    "tasks_from_delta",
]
