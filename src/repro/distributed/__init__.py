"""Distributed (sharded) solving of city-scale markets."""

from .coordinator import (
    SOLVER_NAMES,
    DistributedCoordinator,
    DistributedResult,
    solve_shard,
)
from .messages import CoordinatorReport, ShardWorkRequest, ShardWorkResult, Stopwatch
from .partition import (
    MarketShard,
    PartitionPlan,
    ShardSpec,
    SpatialPartitioner,
    translate_assignment,
)

__all__ = [
    "SpatialPartitioner",
    "PartitionPlan",
    "MarketShard",
    "ShardSpec",
    "translate_assignment",
    "ShardWorkRequest",
    "ShardWorkResult",
    "CoordinatorReport",
    "Stopwatch",
    "DistributedCoordinator",
    "DistributedResult",
    "solve_shard",
    "SOLVER_NAMES",
]
