"""Distributed (sharded) solving of city-scale markets."""

from .coordinator import (
    EXECUTOR_POLICIES,
    SOLVER_NAMES,
    DistributedCoordinator,
    DistributedResult,
    solve_shard,
    solve_shard_payload,
)
from .messages import CoordinatorReport, ShardWorkRequest, ShardWorkResult, Stopwatch
from .payload import ShardPayload, instance_from_payload, payload_from_shard
from .partition import (
    MarketShard,
    PartitionPlan,
    ShardSpec,
    SpatialPartitioner,
    translate_assignment,
)

__all__ = [
    "SpatialPartitioner",
    "PartitionPlan",
    "MarketShard",
    "ShardSpec",
    "translate_assignment",
    "ShardWorkRequest",
    "ShardWorkResult",
    "CoordinatorReport",
    "Stopwatch",
    "DistributedCoordinator",
    "DistributedResult",
    "solve_shard",
    "solve_shard_payload",
    "SOLVER_NAMES",
    "EXECUTOR_POLICIES",
    "ShardPayload",
    "payload_from_shard",
    "instance_from_payload",
]
