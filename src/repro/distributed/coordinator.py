"""Coordinator for distributed (sharded) solving.

The coordinator partitions the market with a
:class:`~repro.distributed.partition.SpatialPartitioner`, hands each shard to
a worker, and merges the shard-local assignments into one global
:class:`~repro.core.MarketSolution`.  Because the partitioner gives every
shard a disjoint task set, the merge needs no conflict resolution — what the
sharding costs instead is the cross-shard trips it can no longer match, and
that loss is exactly what the partitioning ablation benchmark measures.

Choosing an executor
--------------------

Shard solving is embarrassingly parallel, but the right executor depends on
where the time actually goes:

``serial`` (default)
    Solve shards in-process, one after another.  Zero overhead, fully
    deterministic, the right choice for small instances, for tests and for
    debugging — and the reference every other policy must reproduce
    bit-identically.

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` fan-out.  Threads share
    the interpreter, so pure-Python solver time stays GIL-bound; the win is
    limited to the NumPy kernels (leg matrices, candidate masks) that release
    the GIL.  Cheap to start, shares memory, good for a handful of shards
    whose cost is dominated by vectorised work.

``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.  Each shard
    is flattened into an array-backed :class:`~repro.distributed.payload.ShardPayload`
    (primal inputs only — never the object graph or cached task maps), the
    worker rebuilds the sub-instance and solves it with its own interpreter,
    so the whole solve — task-network construction, task maps, greedy /
    simulator — parallelises across cores.  This is the policy that makes
    city-scale instances scale with the machine; it pays a per-worker fork
    and a per-shard pickle, so it only wins when per-shard solve time
    dominates (hundreds of tasks per shard, or many shards).

Choosing a shard count
----------------------

More shards mean smaller per-shard solves and a better load balance across
workers, but every extra boundary loses the cross-shard trips the paper warns
about (the partitioning ablation quantifies the retention loss).  Practical
guidance: use the coarsest grid that yields at least one shard per worker
(e.g. ``4x2`` for 4-8 workers), check
:attr:`~repro.distributed.messages.CoordinatorReport.critical_path_speedup`
— if it is far below the shard count, the largest shard dominates and a finer
grid (or a better-balanced partition) is needed before more workers help.

Every executor consumes the same per-shard
:class:`~repro.distributed.messages.ShardWorkRequest` (including the
deterministically derived per-shard seed) and the merge consumes results in
shard order, so the merged solution is bit-identical across policies.

Streaming on a persistent pool
------------------------------

:meth:`DistributedCoordinator.solve_stream` (and the incremental
:meth:`DistributedCoordinator.open_stream` / ``append_batch`` / ``finish``
path) serves a *live* order stream instead of an offline re-solve: arrival
batches are routed to per-shard
:class:`~repro.market.streaming.StreamingMarketInstance` sessions kept alive
inside a :class:`~repro.distributed.pool.PersistentWorkerPool`, each shard
dispatching its windows with the batched Hungarian simulator while the
coordinator is already routing the next batch.  Only
:class:`~repro.distributed.payload.ShardPayloadDelta` arrays (the new task
columns) cross the process boundary per batch, and the pool outlives
individual streams, so process startup is amortised across re-solves and
ablation sweeps.

**Parity contract (stream == replay):** every worker session runs the exact
``BatchedSimulator.run_stream`` code path on a value-identical delta round
trip, so the merged streamed solution is bit-identical to a serial per-shard
``run_stream`` replay of the same batch schedule — across all three executor
policies.  The optional skew-aware rebalance (split the hottest shard, merge
cold ones between windows) deliberately trades that fixed partition for load
balance; its own contract is determinism: a rebalanced stream is bit-identical
to a from-start stream over the final (post-rebalance) regions.

Offline solves on the same pool
-------------------------------

The pool is not streaming-only: :meth:`DistributedCoordinator.solve` accepts
``pool=`` (or ``reuse_pool=True``) and dispatches its per-shard
``ShardWorkRequest``s onto the same slot executors instead of forking a fresh
``ProcessPoolExecutor`` per call.  Re-solve-heavy offline workloads — the
partitioning ablation, figure sweeps, repeated what-if solves — pay worker
startup once per pool instead of once per solve, with a bit-identical merge
(pool == fork, under every executor policy).  Pair it with a
:class:`~repro.distributed.partition.LoadAwarePartitioner` to feed one
solve's per-shard load report (``CoordinatorReport.per_shard_task_counts`` /
``DistributedStreamResult.regions``) back into the next solve's partition.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.objectives import Objective
from ..obs import trace as obs_trace
from ..core.solution import DriverPlan, MarketSolution
from ..geo import BoundingBox
from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task
from ..offline.flow import ShardBounds, solve_exact_tier
from ..offline.greedy import GreedySolver
from ..online.batch import BatchConfig, stream_schedule
from ..online.dispatchers import MaxMarginDispatcher, NearestDispatcher
from ..online.simulator import OnlineSimulator
from .messages import (
    CoordinatorReport,
    ShardStreamResult,
    ShardWorkRequest,
    ShardWorkResult,
    Stopwatch,
    StreamReport,
)
from .partition import (
    MarketShard,
    PartitionPlan,
    RebalancePolicy,
    ShardLoadReport,
    SpatialPartitioner,
    ZonePartition,
    plan_rebalance_action,
    translate_assignment,
)
from .payload import ShardPayload, delta_from_tasks, instance_from_payload, payload_from_shard
from .pool import (
    PersistentWorkerPool,
    WorkerPoolBrokenError,
    _pool_discard,
    _pool_finish,
    _pool_open,
    lpt_slot_assignment,
    next_stream_token,
)
from .transport import (
    TRANSPORTS,
    PayloadDescriptor,
    TransportStats,
    payload_from_descriptor,
    payload_wire_bytes,
    transport_error,
)

#: Shard solvers available to workers, by name.
SOLVER_NAMES = ("greedy", "nearest", "maxMargin", "lp", "auto")

#: The exact-tier solvers: shards come back with a :class:`ShardBounds`
#: sandwich (greedy incumbent, LP value, LP + Lagrangian bounds) attached.
EXACT_SOLVER_NAMES = ("lp", "auto")

#: Executor policies accepted by the coordinator.
EXECUTOR_POLICIES = ("serial", "thread", "process")

logger = logging.getLogger("repro.distributed.coordinator")


def _solve_instance(
    instance: MarketInstance, request: ShardWorkRequest
) -> Tuple[
    Dict[str, Tuple[int, ...]], Dict[str, float], float, int, Optional[ShardBounds]
]:
    """Run the requested solver on one (sub-)instance.

    Returns ``(assignment, driver_profits, total_value, served_count,
    bounds)`` with the assignment in shard-local task indices; ``bounds`` is
    the exact tier's :class:`ShardBounds` record ("lp"/"auto" solvers only,
    ``None`` otherwise).
    """
    if request.solver_name == "greedy":
        solution = GreedySolver().solve(instance).solution
        assignment = solution.assignment()
        driver_profits = {
            plan.driver_id: plan.profit for plan in solution.iter_nonempty_plans()
        }
        return (
            assignment,
            driver_profits,
            solution.total_value,
            solution.served_count,
            None,
        )
    if request.solver_name in EXACT_SOLVER_NAMES:
        solution, bounds = solve_exact_tier(
            instance,
            mode=request.solver_name,
            gap_threshold=request.gap_threshold,
        )
        assignment = solution.assignment()
        driver_profits = {
            plan.driver_id: plan.profit for plan in solution.iter_nonempty_plans()
        }
        return (
            assignment,
            driver_profits,
            solution.total_value,
            solution.served_count,
            bounds,
        )
    dispatcher = (
        NearestDispatcher(seed=request.seed)
        if request.solver_name == "nearest"
        else MaxMarginDispatcher()
    )
    outcome = OnlineSimulator(instance, dispatcher).run()
    assignment = outcome.assignment()
    driver_profits = {
        record.driver_id: record.profit
        for record in outcome.records
        if record.task_indices
    }
    return assignment, driver_profits, outcome.total_value, outcome.served_count, None


def _worker_recorder(request: ShardWorkRequest, shard_id: int):
    """A per-call flight recorder when the request asks for tracing.

    Returns ``(recorder, previous)`` where ``previous`` is whatever recorder
    the calling thread had installed (the coordinator's own, under the
    serial/thread policies) — the caller must restore it, so worker-side
    span collection never leaks into the coordinator's tree except through
    the explicit ``adopt`` at merge time.
    """
    if not request.trace:
        return None, None
    recorder = obs_trace.TraceRecorder()
    previous = obs_trace.install_recorder(recorder)
    recorder.begin(
        "shard_solve",
        shard=shard_id,
        solver=request.solver_name,
        pid=os.getpid(),
    )
    return recorder, previous


def solve_shard(shard: MarketShard, request: ShardWorkRequest) -> ShardWorkResult:
    """Run the requested solver on one shard (the in-process worker entry)."""
    if request.solver_name not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {request.solver_name!r}; expected one of {SOLVER_NAMES}")
    recorder, previous = _worker_recorder(request, shard.spec.shard_id)
    try:
        with Stopwatch() as watch:
            if shard.task_count == 0 or shard.driver_count == 0:
                assignment: Dict[str, Tuple[int, ...]] = {}
                driver_profits: Dict[str, float] = {}
                total_value = 0.0
                served = 0
                bounds = (
                    ShardBounds.zero()
                    if request.solver_name in EXACT_SOLVER_NAMES
                    else None
                )
            else:
                assignment, driver_profits, total_value, served, bounds = _solve_instance(
                    shard.instance, request
                )
    finally:
        if recorder is not None:
            obs_trace.install_recorder(previous)
    return ShardWorkResult(
        shard_id=shard.spec.shard_id,
        solver_name=request.solver_name,
        assignment=assignment,
        driver_profits=driver_profits,
        total_value=total_value,
        served_count=served,
        elapsed_s=watch.elapsed_s,
        bounds=bounds,
        spans=recorder.export() if recorder is not None else (),
    )


def solve_shard_payload(
    payload: ShardPayload,
    request: ShardWorkRequest,
    _recorder_state: Optional[tuple] = None,
) -> ShardWorkResult:
    """Process-pool worker entry: rebuild the sub-instance from its
    array-backed payload and solve it.

    Top-level (picklable by reference) on purpose; produces exactly the same
    result as :func:`solve_shard` on the shard the payload was built from.
    ``_recorder_state`` lets :func:`solve_shard_shm` hand over a recorder it
    already installed (so the shm attach span precedes the rebuild span in
    the same trace).
    """
    if request.solver_name not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {request.solver_name!r}; expected one of {SOLVER_NAMES}")
    if _recorder_state is not None:
        recorder, previous = _recorder_state
    else:
        recorder, previous = _worker_recorder(request, payload.shard_id)
    try:
        with Stopwatch() as watch:
            with obs_trace.span("rebuild"):
                instance = instance_from_payload(payload)
            assignment, driver_profits, total_value, served, bounds = _solve_instance(
                instance, request
            )
    finally:
        if recorder is not None:
            obs_trace.install_recorder(previous)
    return ShardWorkResult(
        shard_id=payload.shard_id,
        solver_name=request.solver_name,
        assignment=assignment,
        driver_profits=driver_profits,
        total_value=total_value,
        served_count=served,
        elapsed_s=watch.elapsed_s,
        bounds=bounds,
        spans=recorder.export() if recorder is not None else (),
    )


def solve_shard_shm(desc: PayloadDescriptor, request: ShardWorkRequest) -> ShardWorkResult:
    """Shm-transport twin of :func:`solve_shard_payload`: the payload's
    columns are read from the shared-memory segment the descriptor names
    instead of the pickled call arguments.

    ``instance_from_payload`` materialises plain driver/task objects before
    any solving happens, so no view over the segment outlives this call and
    the coordinator is free to recycle the segment once the future resolves.
    """
    recorder, previous = _worker_recorder(request, desc.shard_id)
    try:
        # Attach span records on the worker recorder installed just above.
        payload = payload_from_descriptor(desc)
    except BaseException:
        if recorder is not None:
            obs_trace.install_recorder(previous)
        raise
    return solve_shard_payload(payload, request, _recorder_state=(recorder, previous))


def _submit_payload(
    pool: PersistentWorkerPool, slot: int, payload: ShardPayload, request: ShardWorkRequest
):
    """Submit one offline shard solve over the pool's transport.

    Mirrors ``PersistentWorkerPool.submit_append``: on shm transport only a
    descriptor is pickled and the segment is recycled when the future
    completes; any shipping failure falls back to the pickled payload for
    that shard (counted in ``stats.pickle_fallbacks``).
    """
    if pool.shm_active:
        try:
            desc = pool.shipper.ship_payload(payload)
        except (OSError, RuntimeError, ValueError) as exc:
            logger.warning(
                "shm shipment failed for shard %d, falling back to pickle: %s",
                payload.shard_id, exc,
            )
            pool.stats.record_pickle(
                payload.shard_id, payload_wire_bytes(payload), fallback=True
            )
            return pool.submit(slot, solve_shard_payload, payload, request)
        future = pool.submit(slot, solve_shard_shm, desc, request)
        future.add_done_callback(lambda _f: pool.shipper.release(desc.segment))
        return future
    if pool.executor == "process":
        pool.stats.record_pickle(payload.shard_id, payload_wire_bytes(payload))
    return pool.submit(slot, solve_shard_payload, payload, request)


def _empty_shard_result(shard: MarketShard, request: ShardWorkRequest) -> ShardWorkResult:
    """The (trivial) result of a degenerate shard, synthesised in-line by the
    coordinator so no future is ever submitted for it."""
    return ShardWorkResult(
        shard_id=shard.spec.shard_id,
        solver_name=request.solver_name,
        assignment={},
        driver_profits={},
        total_value=0.0,
        served_count=0,
        elapsed_s=0.0,
        bounds=(
            ShardBounds.zero()
            if request.solver_name in EXACT_SOLVER_NAMES
            else None
        ),
    )


@dataclass(frozen=True)
class DistributedResult:
    """The merged global solution plus the coordinator's report."""

    solution: MarketSolution
    report: CoordinatorReport
    plan: PartitionPlan


@dataclass
class _StreamShard:
    """Coordinator-side bookkeeping for one live shard."""

    shard_id: int
    boxes: Tuple[BoundingBox, ...]
    drivers: Tuple[Driver, ...]
    #: Worker slot the shard is pinned to (-1 for driverless shards, which
    #: never open a session — their orders are rejected coordinator-side).
    slot: int
    #: Shard-local task index -> global task index, in append order.
    global_indices: List[int] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class PendingAppend:
    """One in-flight worker-side append, returned by
    :meth:`DistributedStreamSession.append_batch`.

    The ``future`` is a future-alike (``done()`` / ``result()``); awaiting it
    — directly, or via :meth:`DistributedStreamSession.wait_pending` from an
    event loop — observes the moment the shard's worker has consumed the
    delta and dispatched every window the watermark closed.  This is the
    awaitable hook the async dispatch service builds its append-latency and
    backpressure accounting on.
    """

    shard_id: int
    future: object

    def done(self) -> bool:
        done = getattr(self.future, "done", None)
        return True if done is None else bool(done())


@dataclass(frozen=True)
class DistributedStreamResult:
    """The merged streamed solution plus the stream report."""

    solution: MarketSolution
    report: StreamReport
    #: Global indices of orders no shard could serve.
    rejected_tasks: Tuple[int, ...]
    #: Final shard regions (post-rebalance); feed back into ``open_stream``'s
    #: ``regions=`` to reuse a rebalanced partition, or to pin determinism.
    regions: Tuple[Tuple[BoundingBox, ...], ...]


class DistributedStreamSession:
    """One live stream over per-shard sessions on a persistent pool.

    Created by :meth:`DistributedCoordinator.open_stream`.  Call
    :meth:`append_batch` for every publish-ordered arrival batch, then
    :meth:`finish` to drain the shards and merge.  Appends are asynchronous
    under the pooled policies: the coordinator keeps routing and building
    deltas while workers run their Hungarian windows.

    Lifecycle
    ---------

    The session is a context manager, and ``with`` is the recommended way to
    hold one: the worker-side :class:`~repro.distributed.pool.ShardStreamSession`
    state lives inside a **persistent** pool, so a stream that is opened and
    then abandoned — an exception between appends, an interrupted caller, a
    service shutting down — would otherwise leak its sessions into every
    later stream on the same warm workers.  ``__exit__`` calls :meth:`close`,
    which discards the worker-resident sessions without merging; after a
    successful :meth:`finish` it is a no-op (the workers already popped
    their sessions while draining).  ``close`` is idempotent and is also
    safe on a pool that has died or been closed underneath the stream.
    """

    def __init__(
        self,
        fleet: Sequence[Driver],
        cost_model: MarketCostModel,
        config: BatchConfig,
        pool: PersistentWorkerPool,
        router: ZonePartition,
        rebalance: Optional[RebalancePolicy] = None,
    ) -> None:
        self._fleet: Tuple[Driver, ...] = tuple(fleet)
        self._fleet_pos: Dict[str, int] = {
            driver.driver_id: i for i, driver in enumerate(self._fleet)
        }
        if len(self._fleet_pos) != len(self._fleet):
            raise ValueError("driver ids must be unique")
        self._cost_model = cost_model
        self._config = config
        self._pool = pool
        self._router = router
        self._rebalance = rebalance
        self._token = next_stream_token()
        self._start = time.perf_counter()
        # Wire-traffic baseline: the pool's stats are cumulative over its
        # lifetime, so the report diffs against the counts at open.
        self._stats_mark = self._stats_snapshot()
        # Flight recorder: the stream's lifetime span lives on whatever
        # recorder the opening thread has active; worker sessions collect
        # their own spans (the ``trace`` flag rides ``_pool_open``) and the
        # merge adopts them under this root.
        self._recorder = obs_trace.active_recorder()
        self._trace_mark = (
            self._recorder.mark() if self._recorder is not None else 0
        )
        self._root_span = (
            self._recorder.begin(
                "stream", executor=pool.executor, transport=pool.transport
            )
            if self._recorder is not None
            else obs_trace.DROPPED
        )

        self._tasks: List[Task] = []  # global task list, in arrival order
        self._task_shard: List[int] = []  # global index -> owning shard id
        self._batch_ranges: List[Tuple[int, int]] = []  # per batch: [start, end)
        self._inflight: List[PendingAppend] = []
        self._rebalances = 0
        self._finished = False
        self._closed = False
        self._next_shard_id = 0
        self._slot_counter = 0

        self._shards: List[_StreamShard] = []
        assignments = router.route(driver.source for driver in self._fleet)
        for shard_index, group in enumerate(router.box_groups):
            drivers = tuple(
                driver
                for driver, assigned in zip(self._fleet, assignments)
                if int(assigned) == shard_index
            )
            self._shards.append(self._new_shard(group, drivers))

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _submit(self, shard_id: int, slot: int, fn, *args) -> PendingAppend:
        """Submit one worker call, tagging the returned future with its shard
        so failures can name the shard — a dead worker surfaces as a
        :class:`WorkerPoolBrokenError` naming both the shard and the slot."""
        try:
            future = self._pool.submit(slot, fn, *args)
        except WorkerPoolBrokenError as exc:
            raise self._shard_broken(shard_id, exc) from exc
        return PendingAppend(shard_id=shard_id, future=future)

    def _stats_snapshot(self) -> Tuple[int, int, int, int]:
        stats = self._pool.stats
        return (
            stats.bytes_over_pipe,
            stats.shm_bytes,
            stats.segment_reuses,
            stats.pickle_fallbacks,
        )

    def _shard_broken(
        self, shard_id: int, exc: WorkerPoolBrokenError
    ) -> WorkerPoolBrokenError:
        """Annotate a pool-level worker death with the shard it hit and mark
        the stream unusable (the pool is already closed by this point)."""
        self._finished = True
        self._closed = True
        self._inflight = []
        return WorkerPoolBrokenError(
            f"stream lost shard {shard_id}: {exc}", slot=exc.slot
        )

    def _new_shard(
        self, boxes: Tuple[BoundingBox, ...], drivers: Tuple[Driver, ...]
    ) -> _StreamShard:
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        if drivers:
            slot = self._slot_counter % self._pool.worker_count
            self._slot_counter += 1
            self._inflight.append(
                self._submit(
                    shard_id, slot, _pool_open, self._token, shard_id, drivers,
                    self._cost_model, self._config,
                    self._recorder is not None,
                )
            )
        else:
            slot = -1
        return _StreamShard(shard_id=shard_id, boxes=tuple(boxes), drivers=drivers, slot=slot)

    @property
    def shard_regions(self) -> Tuple[Tuple[BoundingBox, ...], ...]:
        """Current shard regions (changes when the rebalancer acts)."""
        return tuple(shard.boxes for shard in self._shards)

    @property
    def batch_count(self) -> int:
        return len(self._batch_ranges)

    @property
    def shard_task_counts(self) -> Tuple[int, ...]:
        return tuple(len(shard.global_indices) for shard in self._shards)

    @property
    def closed(self) -> bool:
        """Whether the stream can no longer accept appends (finished, closed
        or torn down after a failure)."""
        return self._finished or self._closed

    def pending_counts(self) -> Dict[int, int]:
        """Not-yet-completed worker appends per shard id.

        The live window-queue depth of each shard: how many deltas its pinned
        worker has accepted but not finished dispatching.  The dispatch
        service's backpressure triggers on the max over shards; under the
        serial policy appends complete inline, so every count is 0.
        """
        counts: Dict[int, int] = {}
        for pending in self._inflight:
            if not pending.done():
                counts[pending.shard_id] = counts.get(pending.shard_id, 0) + 1
        return counts

    async def wait_pending(self) -> None:
        """Await every in-flight worker append without blocking the event
        loop (the awaitable-windows hook: an asyncio caller can overlap its
        own work — routing the next batch, serving health probes — with the
        workers' window solves, then await the barrier).

        Failures propagate exactly as from :meth:`append_batch`'s eager
        check: the stream is torn down (worker sessions discarded) and the
        original error is re-raised, with worker deaths named per shard.
        """
        import asyncio
        from concurrent.futures import Future as _CFuture

        inflight, self._inflight = self._inflight, []
        try:
            for pending in inflight:
                future = pending.future
                raw = getattr(future, "raw", future)
                if isinstance(raw, _CFuture) and not raw.done():
                    try:
                        await asyncio.wrap_future(raw)
                    except Exception:
                        pass  # re-read below so worker death is translated
                # Collect through the wrapper so worker death is translated.
                try:
                    future.result()
                except WorkerPoolBrokenError as exc:
                    raise self._shard_broken(pending.shard_id, exc) from exc
        except BaseException:
            self.close()
            raise

    def _raise_failed(self) -> None:
        """Surface any already-failed async append/open without blocking,
        pruning completed futures so the in-flight list stays bounded by the
        work actually outstanding."""
        pending: List[PendingAppend] = []
        try:
            for entry in self._inflight:
                if entry.done():
                    try:
                        entry.future.result()
                    except WorkerPoolBrokenError as exc:
                        raise self._shard_broken(entry.shard_id, exc) from exc
                else:
                    pending.append(entry)
        except BaseException:
            self.close()
            raise
        self._inflight = pending

    def close(self) -> None:
        """Discard the worker-resident shard sessions without merging.

        The abandoned-stream teardown: idempotent, safe after :meth:`finish`
        (by then the workers have already popped their sessions) and safe on
        a pool that has been closed or broken underneath the stream.  Every
        error path — and any ``with`` exit — must land here, or a persistent
        pool accumulates dead sessions for its whole lifetime.
        """
        if self._closed or self._finished:
            self._closed = True
            self._finished = True
            self._inflight = []
            return
        self._closed = True
        self._finished = True
        self._inflight = []
        if self._recorder is not None:
            # Abandoned stream: close the lifetime span so the trace stays
            # well-formed (no-op when finish already ended it).
            self._recorder.end(self._root_span)
        for shard in self._shards:
            if shard.drivers:
                try:
                    self._pool.submit(
                        shard.slot, _pool_discard, self._token, shard.shard_id
                    )
                except BaseException:
                    # A closed/broken pool has no sessions left to discard.
                    pass

    def __enter__(self) -> "DistributedStreamSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def append_batch(self, tasks: Iterable[Task]) -> Tuple[PendingAppend, ...]:
        """Route one publish-ordered arrival batch to its shards.

        Under the pooled policies this returns as soon as the per-shard
        deltas are queued; the workers' window dispatches overlap with the
        next batch's routing.  Returns this batch's in-flight worker appends
        (one :class:`PendingAppend` per shard the batch touched) — await or
        poll them to observe per-shard append completion; ignoring the
        return value keeps the historical fire-and-forget behaviour.
        """
        if self.closed:
            raise RuntimeError("stream already finished")
        batch = tuple(tasks)
        if not batch:
            return ()
        self._raise_failed()
        start = len(self._tasks)
        before = len(self._inflight)
        routed = self._route_and_dispatch(batch, start)
        shipped = tuple(self._inflight[before:])
        self._tasks.extend(batch)
        self._task_shard.extend(routed)
        self._batch_ranges.append((start, start + len(batch)))
        self._maybe_rebalance()
        return shipped

    def _route_and_dispatch(self, batch: Tuple[Task, ...], start: int) -> List[int]:
        """Route a batch over the current shards, ship the per-shard deltas,
        and return the owning shard id per task."""
        positions = self._router.route(task.source for task in batch)
        owners: List[int] = []
        groups: Dict[int, List[Tuple[int, Task]]] = {}
        for offset, (task, position) in enumerate(zip(batch, positions)):
            shard = self._shards[int(position)]
            owners.append(shard.shard_id)
            groups.setdefault(int(position), []).append((start + offset, task))
        for position, members in groups.items():
            self._dispatch_to_shard(self._shards[position], members)
        return owners

    def _dispatch_to_shard(
        self, shard: _StreamShard, members: List[Tuple[int, Task]]
    ) -> None:
        shard.global_indices.extend(g for g, _task in members)
        if not shard.drivers:
            return
        delta = delta_from_tasks(shard.shard_id, [task for _g, task in members])
        # The pool picks the wire format: shm transport ships the delta's
        # columns through a shared segment and pickles only the descriptor.
        try:
            future = self._pool.submit_append(shard.slot, self._token, delta)
        except WorkerPoolBrokenError as exc:
            raise self._shard_broken(shard.shard_id, exc) from exc
        self._inflight.append(PendingAppend(shard_id=shard.shard_id, future=future))

    # ------------------------------------------------------------------
    # skew-aware rebalance
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> None:
        policy = self._rebalance
        if policy is None or self.batch_count % policy.check_every_batches != 0:
            return
        action = plan_rebalance_action(self.shard_task_counts, policy)
        if action is None:
            return
        if action.kind == "split":
            hot = action.positions[0]
            self._reshard([hot], list(self._router.split_group(hot)))
        else:
            # positions come coldest-first; boxes concatenate in that order.
            merged = tuple(
                box for position in action.positions for box in self._shards[position].boxes
            )
            self._reshard(sorted(action.positions), [merged])
        self._rebalances += 1

    def _reshard(
        self,
        removed_positions: List[int],
        new_groups: List[Tuple[BoundingBox, ...]],
    ) -> None:
        """Replace the shards at ``removed_positions`` by fresh shards over
        ``new_groups``, replaying the removed shards' order history.

        The replay feeds the new sessions the same publish-ordered batch
        schedule the stream itself saw, so the result is bit-identical to a
        stream that used the new partition from the start (unaffected shards
        never notice).
        """
        removed = [self._shards[p] for p in removed_positions]
        removed_ids = {shard.shard_id for shard in removed}
        for shard in removed:
            if shard.drivers:
                self._inflight.append(
                    self._submit(shard.shard_id, shard.slot, _pool_discard, self._token, shard.shard_id)
                )

        # Re-route the affected drivers (kept in fleet order, exactly as a
        # from-start partition would meet them).
        affected_drivers = sorted(
            (driver for shard in removed for driver in shard.drivers),
            key=lambda driver: self._fleet_pos[driver.driver_id],
        )
        sub_router = ZonePartition(self._router.region, new_groups)
        driver_groups: List[List[Driver]] = [[] for _ in new_groups]
        if affected_drivers:
            for driver, assigned in zip(
                affected_drivers, sub_router.route(d.source for d in affected_drivers)
            ):
                driver_groups[int(assigned)].append(driver)

        keep = [
            shard
            for position, shard in enumerate(self._shards)
            if position not in set(removed_positions)
        ]
        fresh = [
            self._new_shard(tuple(group), tuple(drivers))
            for group, drivers in zip(new_groups, driver_groups)
        ]
        self._shards = keep + fresh
        self._router = ZonePartition(
            self._router.region, [shard.boxes for shard in self._shards]
        )

        # Replay the removed shards' history batch by batch into the fresh
        # sessions (same order, same batch boundaries as the original stream).
        for start, end in self._batch_ranges:
            members = [
                (g, self._tasks[g])
                for g in range(start, end)
                if self._task_shard[g] in removed_ids
            ]
            if not members:
                continue
            fresh_groups: Dict[int, List[Tuple[int, Task]]] = {}
            for (g, task), assigned in zip(
                members, sub_router.route(task.source for _g, task in members)
            ):
                fresh_groups.setdefault(int(assigned), []).append((g, task))
            for assigned, group_members in fresh_groups.items():
                shard = fresh[assigned]
                for g, _task in group_members:
                    self._task_shard[g] = shard.shard_id
                self._dispatch_to_shard(shard, group_members)

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def finish(self) -> DistributedStreamResult:
        """Drain every shard, settle the drivers and merge the results."""
        if self.closed:
            raise RuntimeError("stream already finished")
        try:
            for pending in self._inflight:
                try:
                    pending.future.result()
                except WorkerPoolBrokenError as exc:
                    raise self._shard_broken(pending.shard_id, exc) from exc
            self._inflight = []

            results: Dict[int, Optional[ShardStreamResult]] = {}
            futures = []
            for shard in self._shards:
                if shard.drivers:
                    futures.append(
                        (shard, self._submit(shard.shard_id, shard.slot, _pool_finish, self._token, shard.shard_id))
                    )
                else:
                    results[shard.shard_id] = None
            for shard, pending in futures:
                try:
                    results[shard.shard_id] = pending.future.result()
                except WorkerPoolBrokenError as exc:
                    raise self._shard_broken(shard.shard_id, exc) from exc
        except BaseException:
            # Leave no orphaned sessions behind in the (persistent) workers.
            self.close()
            raise
        self._finished = True

        # Stitch worker-side span trees under the stream's root before the
        # merge span opens, so per-shard subtrees sit beside (not inside) it.
        if self._recorder is not None:
            for shard in self._shards:
                result = results[shard.shard_id]
                if result is not None and result.spans:
                    self._recorder.adopt(
                        result.spans, parent_id=self._root_span, slot=shard.slot
                    )

        merge_span = (
            self._recorder.begin("merge", parent_id=self._root_span)
            if self._recorder is not None
            else obs_trace.DROPPED
        )
        merged_assignment: Dict[str, Tuple[int, ...]] = {}
        merged_profits: Dict[str, float] = {}
        rejected: set = set()
        durations: List[float] = []
        wait_total_s = 0.0
        for shard in self._shards:
            result = results[shard.shard_id]
            if result is None:
                # Driverless shard: every publishable order it owns is lost.
                rejected.update(
                    g for g in shard.global_indices if self._tasks[g].is_publishable
                )
                durations.append(0.0)
                continue
            for driver_id, local_path in result.assignment.items():
                merged_assignment[driver_id] = tuple(
                    shard.global_indices[m] for m in local_path
                )
            merged_profits.update(result.driver_profits)
            rejected.update(shard.global_indices[m] for m in result.rejected_tasks)
            durations.append(result.elapsed_s)
            wait_total_s += result.wait_total_s

        instance = MarketInstance(
            drivers=self._fleet, tasks=tuple(self._tasks), cost_model=self._cost_model
        )
        plans = tuple(
            DriverPlan(
                driver_id=driver.driver_id,
                task_indices=merged_assignment.get(driver.driver_id, ()),
                profit=merged_profits.get(driver.driver_id, 0.0),
            )
            for driver in self._fleet
        )
        solution = MarketSolution(
            instance=instance, plans=plans, objective=Objective.DRIVERS_PROFIT
        )
        phase_breakdown: Tuple[Tuple[str, float], ...] = ()
        trace_span_count = 0
        if self._recorder is not None:
            self._recorder.end(merge_span)
            self._recorder.end(self._root_span)
            stream_spans = self._recorder.spans_since(self._trace_mark)
            phase_breakdown = obs_trace.phase_totals(stream_spans)
            trace_span_count = len(stream_spans)
        now_stats = self._stats_snapshot()
        report = StreamReport(
            shard_count=len(self._shards),
            batch_count=self.batch_count,
            total_value=solution.total_value,
            served_count=solution.served_count,
            rejected_count=len(rejected),
            wall_clock_s=time.perf_counter() - self._start,
            slowest_shard_s=max(durations) if durations else 0.0,
            per_shard_task_counts=self.shard_task_counts,
            per_shard_durations=tuple(durations),
            executor=self._pool.executor,
            worker_count=self._pool.worker_count,
            rebalance_count=self._rebalances,
            wait_total_s=wait_total_s,
            transport=self._pool.transport,
            bytes_over_pipe=now_stats[0] - self._stats_mark[0],
            shm_bytes=now_stats[1] - self._stats_mark[1],
            segment_reuses=now_stats[2] - self._stats_mark[2],
            pickle_fallbacks=now_stats[3] - self._stats_mark[3],
            phase_breakdown=phase_breakdown,
            trace_span_count=trace_span_count,
        )
        logger.debug(
            "stream finished: shards=%d batches=%d served=%d rejected=%d",
            report.shard_count,
            report.batch_count,
            report.served_count,
            report.rejected_count,
        )
        return DistributedStreamResult(
            solution=solution,
            report=report,
            rejected_tasks=tuple(sorted(rejected)),
            regions=self.shard_regions,
        )


class DistributedCoordinator:
    """Partition, dispatch to workers, merge.

    Parameters
    ----------
    partitioner:
        The spatial partitioner producing disjoint-task shards.
    solver_name:
        Shard solver: ``"greedy"``, ``"nearest"``, ``"maxMargin"``, or the
        exact tier — ``"lp"`` (per-shard arc-flow LP, certified or repaired,
        see :mod:`repro.offline.flow`) and ``"auto"`` (LP only on shards
        whose greedy solution is not already within ``gap_threshold`` of the
        Lagrangian bound).  The exact tier attaches a per-shard
        :class:`~repro.offline.flow.ShardBounds` sandwich to every result,
        surfaced as ``CoordinatorReport.per_shard_bounds`` and the
        ``optimality_gap`` aggregates.
    executor:
        Fan-out policy: ``"serial"``, ``"thread"`` or ``"process"`` (see the
        module docstring for how to choose).  Defaults to ``"serial"`` unless
        the legacy ``parallel=True`` flag selects ``"thread"``.
    parallel:
        Deprecated alias kept for backwards compatibility: ``parallel=True``
        is the old thread-pool mode and is equivalent to
        ``executor="thread"``.
    max_workers:
        Pool width for the thread/process policies (``None`` lets the pool
        pick its default).
    base_seed:
        Base of the deterministic per-shard seeds (shard ``k`` receives
        ``base_seed + k``), so stochastic shard solvers are reproducible and
        executor-independent.
    transport:
        Wire format for the coordinator's own persistent pool:
        ``"pickle"`` (default) or ``"shm"`` (zero-copy shared-memory
        shipments; engaged on the process policy, where a pipe exists).
        Parity contract 16 pins shm == pickle merges.
    backend:
        Optional compute backend (:mod:`repro.backends`) selected in every
        pool worker; merged solutions are backend-independent (contract 16).
    gap_threshold:
        Relative-gap knob for ``solver_name="auto"``: shards whose greedy
        value is within this fraction of the Lagrangian bound skip the LP
        ("greedy is good enough").  Ignored by the other solvers.
    """

    def __init__(
        self,
        partitioner: SpatialPartitioner,
        solver_name: str = "greedy",
        parallel: bool = False,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        base_seed: int = 0,
        transport: str = "pickle",
        backend: Optional[str] = None,
        gap_threshold: float = 0.02,
    ) -> None:
        if solver_name not in SOLVER_NAMES:
            raise ValueError(f"unknown solver {solver_name!r}; expected one of {SOLVER_NAMES}")
        if executor is None:
            executor = "thread" if parallel else "serial"
        if executor not in EXECUTOR_POLICIES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_POLICIES}"
            )
        if transport not in TRANSPORTS:
            raise transport_error(transport)
        self.partitioner = partitioner
        self.solver_name = solver_name
        self.executor = executor
        self.max_workers = max_workers
        self.base_seed = base_seed
        self.transport = transport
        self.backend = backend
        self.gap_threshold = gap_threshold
        self._stream_pool: Optional[PersistentWorkerPool] = None

    @property
    def parallel(self) -> bool:
        """Legacy flag: whether a pooled executor is configured."""
        return self.executor != "serial"

    # ------------------------------------------------------------------
    # streaming on the persistent pool
    # ------------------------------------------------------------------
    def stream_pool(self) -> PersistentWorkerPool:
        """The coordinator's persistent worker pool (created lazily, kept
        alive across streams *and* pooled offline solves, so re-solves and
        sweeps amortise its startup)."""
        stale = self._stream_pool is not None and (
            self._stream_pool.executor != self.executor
            or self._stream_pool.transport != self.transport
            or self._stream_pool.backend != self.backend
        )
        if self._stream_pool is None or stale:
            if self._stream_pool is not None:
                self._stream_pool.close()
            self._stream_pool = PersistentWorkerPool(
                executor=self.executor,
                worker_count=self.max_workers,
                transport=self.transport,
                backend=self.backend,
            )
        return self._stream_pool

    @property
    def current_pool(self) -> Optional[PersistentWorkerPool]:
        """The persistent pool if one exists, without creating it — for
        observers (health endpoints) that must not resurrect a closed pool."""
        return self._stream_pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent; a new stream reopens it)."""
        if self._stream_pool is not None:
            self._stream_pool.close()
            self._stream_pool = None

    def __enter__(self) -> "DistributedCoordinator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def open_stream(
        self,
        drivers: Iterable[Driver],
        cost_model: Optional[MarketCostModel] = None,
        *,
        config: Optional[BatchConfig] = None,
        regions: Optional[Sequence[Sequence[BoundingBox]]] = None,
        rebalance: Optional[RebalancePolicy] = None,
        pool: Optional[PersistentWorkerPool] = None,
    ) -> DistributedStreamSession:
        """Open a live stream: per-shard streaming sessions on the pool.

        Drivers are routed to shards by source over the partitioner's
        regions (its ``box_groups`` when it exposes them — e.g. a
        ``LoadAwarePartitioner`` — else its uniform grid), or the explicit
        ``regions``, e.g. a previous stream's post-rebalance
        :attr:`DistributedStreamResult.regions`.  Feed publish-ordered
        arrival batches with ``append_batch`` and merge with ``finish``.

        ``pool`` overrides the coordinator's own :meth:`stream_pool` with an
        externally owned :class:`PersistentWorkerPool` — the caller keeps
        ownership (the coordinator's ``close()`` never touches it), which is
        how one warm pool is shared across many coordinators in a sweep.
        """
        region = self.partitioner.region
        if regions is None:
            regions = getattr(self.partitioner, "box_groups", None)
        if regions is None:
            router = ZonePartition.from_grid(
                region, self.partitioner.rows, self.partitioner.cols
            )
        else:
            router = ZonePartition(region, regions)
        logger.debug(
            "opening stream: shards=%d executor=%s transport=%s",
            len(router.box_groups),
            self.executor,
            self.transport,
        )
        return DistributedStreamSession(
            fleet=drivers,
            cost_model=cost_model or MarketCostModel(),
            config=config or BatchConfig(),
            pool=pool if pool is not None else self.stream_pool(),
            router=router,
            rebalance=rebalance,
        )

    def solve_stream(
        self,
        instance: MarketInstance,
        arrival_batches: Optional[Iterable[Sequence[Task]]] = None,
        *,
        config: Optional[BatchConfig] = None,
        regions: Optional[Sequence[Sequence[BoundingBox]]] = None,
        rebalance: Optional[RebalancePolicy] = None,
        pool: Optional[PersistentWorkerPool] = None,
    ) -> DistributedStreamResult:
        """Stream ``instance``'s orders through the sharded pool and merge.

        ``arrival_batches`` defaults to the instance's own tasks — *all* of
        them, including non-publishable ones — grouped into publish windows
        (:func:`~repro.online.batch.stream_schedule`), which makes
        ``solve_stream(instance)`` the sharded twin of
        ``BatchedSimulator.run`` (same task population, so metrics share
        denominators) and bit-identical to a serial per-shard ``run_stream``
        replay of the same schedule.  The merged solution's instance holds
        the tasks in arrival (publish) order.
        """
        chosen_config = config or BatchConfig()
        if arrival_batches is None:
            arrival_batches = stream_schedule(instance.tasks, chosen_config.window_s)
        # The ``with`` guarantees worker-side sessions are discarded when any
        # append or the merge fails — a failed solve must not leak state into
        # the persistent pool's workers.
        with self.open_stream(
            instance.drivers,
            instance.cost_model,
            config=chosen_config,
            regions=regions,
            rebalance=rebalance,
            pool=pool,
        ) as session:
            for batch in arrival_batches:
                session.append_batch(batch)
            return session.finish()

    def solve(
        self,
        instance: MarketInstance,
        *,
        pool: Optional[PersistentWorkerPool] = None,
        reuse_pool: bool = False,
        load_report: Optional[ShardLoadReport] = None,
    ) -> DistributedResult:
        """Solve ``instance`` shard by shard and merge the results.

        By default every call forks its own short-lived executor (the PR 2
        behaviour).  Two reuse modes route the shard requests onto persistent
        slot executors instead, so repeated offline solves — figure sweeps,
        ablations — stop paying worker startup per call:

        ``pool=``
            An externally owned :class:`PersistentWorkerPool`.  Shards are
            dispatched round-robin onto its slots (the process policy ships
            the same array-backed payloads the fork path ships); the caller
            keeps ownership and ``close()``s it after the whole sweep.
        ``reuse_pool=True``
            Shorthand for ``pool=self.stream_pool()``: the coordinator's own
            lazily created pool, shared with the streaming path and kept
            warm until :meth:`close`.

        ``load_report`` (pooled dispatch only) switches the shard->slot
        placement from round-robin to longest-processing-time-first over
        the loads a *prior* solve observed (anything
        :meth:`ShardLoadReport.from_prior` accepts — a report, a prior
        ``DistributedResult``/stream result, or a bare plan).  When the
        report's shard count no longer matches the current partition, the
        current shards' own task counts stand in.  Packing the hottest
        shards onto separate single-worker slots first caps the slowest
        slot far below what round-robin risks on skewed cities.

        **Parity contract (pool == fork, placement-independent):** pooled
        dispatch runs the exact :func:`solve_shard` /
        :func:`solve_shard_payload` worker entries on the same per-shard
        requests and merges in the same shard order — placement only moves
        shards between slots — so the merged solution is bit-identical to
        the fork path under every executor policy and any placement
        (pinned by ``tests/distributed/test_offline_pool.py`` and
        ``tests/distributed/test_placement.py``).
        """
        start = time.perf_counter()
        if reuse_pool and pool is None:
            pool = self.stream_pool()
        recorder = obs_trace.active_recorder()
        trace_mark = recorder.mark() if recorder is not None else 0
        root_span = (
            recorder.begin(
                "solve", executor=self.executor, solver=self.solver_name
            )
            if recorder is not None
            else obs_trace.DROPPED
        )
        # Wire accounting: pooled solves diff the pool's cumulative counters;
        # the fork path gets a scratch stats object filled by ``_solve_live``.
        fork_stats = TransportStats()
        if pool is not None:
            stats_mark = (
                pool.stats.bytes_over_pipe,
                pool.stats.shm_bytes,
                pool.stats.segment_reuses,
                pool.stats.pickle_fallbacks,
            )
        with obs_trace.span("partition"):
            plan = self.partitioner.partition(instance)
        requests = [
            ShardWorkRequest(
                shard_id=shard.spec.shard_id,
                driver_count=shard.driver_count,
                task_count=shard.task_count,
                solver_name=self.solver_name,
                seed=self.base_seed + shard.spec.shard_id,
                gap_threshold=self.gap_threshold,
                trace=recorder is not None,
            )
            for shard in plan.shards
        ]

        # Degenerate shards (no tasks or no drivers) are short-circuited
        # in-line: they never reach an executor, but they keep their slot in
        # the per-shard report series so merged reports still count them.
        results: List[Optional[ShardWorkResult]] = [None] * len(plan.shards)
        live: List[int] = []
        for position, (shard, request) in enumerate(zip(plan.shards, requests)):
            if shard.task_count == 0 or shard.driver_count == 0:
                results[position] = _empty_shard_result(shard, request)
            else:
                live.append(position)

        if pool is not None:
            worker_count = max(1, min(pool.worker_count, len(live))) if live else 1
            executor_label = pool.executor
        else:
            worker_count = self._resolve_worker_count(len(live))
            executor_label = self.executor
        for position, result in zip(
            live,
            self._solve_live(plan, requests, live, worker_count, pool, load_report, fork_stats),
        ):
            results[position] = result
        solved = [result for result in results if result is not None]

        # Stitch worker-side span trees under this solve's root span.
        if recorder is not None:
            for result in solved:
                if result.spans:
                    recorder.adopt(result.spans, parent_id=root_span)

        with obs_trace.span("merge"):
            merged: Dict[str, Tuple[int, ...]] = {}
            merged_profits: Dict[str, float] = {}
            for shard, result in zip(plan.shards, solved):
                merged.update(translate_assignment(shard, result.assignment))
                merged_profits.update(result.driver_profits)
            solution = self._merge_solution(instance, merged, merged_profits)

        phase_breakdown: Tuple[Tuple[str, float], ...] = ()
        trace_span_count = 0
        if recorder is not None:
            recorder.end(root_span)
            solve_spans = recorder.spans_since(trace_mark)
            phase_breakdown = obs_trace.phase_totals(solve_spans)
            trace_span_count = len(solve_spans)
        wall_clock = time.perf_counter() - start
        durations = tuple(r.elapsed_s for r in solved)
        if pool is not None:
            transport_label = pool.transport
            bytes_over_pipe = pool.stats.bytes_over_pipe - stats_mark[0]
            shm_bytes = pool.stats.shm_bytes - stats_mark[1]
            segment_reuses = pool.stats.segment_reuses - stats_mark[2]
            pickle_fallbacks = pool.stats.pickle_fallbacks - stats_mark[3]
        else:
            transport_label = fork_stats.transport
            bytes_over_pipe = fork_stats.bytes_over_pipe
            shm_bytes = fork_stats.shm_bytes
            segment_reuses = fork_stats.segment_reuses
            pickle_fallbacks = fork_stats.pickle_fallbacks
        report = CoordinatorReport(
            shard_count=plan.shard_count,
            total_value=solution.total_value,
            served_count=solution.served_count,
            wall_clock_s=wall_clock,
            slowest_shard_s=max(durations) if durations else 0.0,
            per_shard_values=tuple(r.total_value for r in solved),
            per_shard_durations=durations,
            executor=executor_label,
            worker_count=worker_count,
            empty_shard_count=len(plan.shards) - len(live),
            per_shard_task_counts=tuple(shard.task_count for shard in plan.shards),
            transport=transport_label,
            bytes_over_pipe=bytes_over_pipe,
            shm_bytes=shm_bytes,
            segment_reuses=segment_reuses,
            pickle_fallbacks=pickle_fallbacks,
            per_shard_bounds=(
                tuple(r.bounds for r in solved)
                if self.solver_name in EXACT_SOLVER_NAMES
                else ()
            ),
            phase_breakdown=phase_breakdown,
            trace_span_count=trace_span_count,
        )
        logger.debug(
            "solve merged: shards=%d served=%d value=%.3f executor=%s",
            report.shard_count,
            report.served_count,
            report.total_value,
            report.executor,
        )
        return DistributedResult(solution=solution, report=report, plan=plan)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _resolve_worker_count(self, live_count: int) -> int:
        """The actual pool width the fan-out runs with (mirrors the
        executors' own ``max_workers`` defaults), capped by the live shards."""
        if self.executor == "serial" or live_count <= 1:
            return 1
        if self.max_workers is not None:
            pool_width = self.max_workers
        elif self.executor == "thread":
            pool_width = min(32, (os.cpu_count() or 1) + 4)  # ThreadPoolExecutor default
        else:
            pool_width = os.cpu_count() or 1  # ProcessPoolExecutor default
        return max(1, min(pool_width, live_count))

    def _placement_slots(
        self,
        plan: PartitionPlan,
        live: List[int],
        slot_count: int,
        load_report: Optional[ShardLoadReport],
    ) -> List[int]:
        """One pool slot per live shard.

        Round-robin in shard order by default (the historical behaviour);
        with a prior load report, longest-processing-time-first over the
        reported loads.  The report's loads are only trusted when its
        regions match the current partition shard-for-shard — a report from
        a different grid (or a rebalanced stream) falls back to the current
        shards' own task counts rather than attributing loads to the wrong
        shards.
        """
        if load_report is None:
            return list(range(len(live)))
        report = ShardLoadReport.from_prior(load_report)
        plan_regions = tuple(
            shard.spec.boxes or (shard.spec.region,) for shard in plan.shards
        )
        if report.regions == plan_regions:
            loads = [float(report.task_counts[position]) for position in live]
        else:
            loads = [float(plan.shards[position].task_count) for position in live]
        return lpt_slot_assignment(loads, max(1, min(slot_count, len(live))))

    def _solve_live(
        self,
        plan: PartitionPlan,
        requests: List[ShardWorkRequest],
        live: List[int],
        worker_count: int,
        pool: Optional[PersistentWorkerPool] = None,
        load_report: Optional[ShardLoadReport] = None,
        fork_stats: Optional[TransportStats] = None,
    ) -> List[ShardWorkResult]:
        """Solve the non-degenerate shards under the configured policy,
        returning results in ``live`` order.

        With a persistent ``pool``, shard requests go onto its (already
        warm) slot executors — round-robin, or packed by
        :meth:`_placement_slots` when a prior load report is supplied — and
        the pool's own policy decides the wire format: the process policy
        ships payloads, exactly like the fork path.  Without one,
        short-lived pools are created with the already-resolved
        ``worker_count``, so the width the report claims is the width that
        actually ran.
        """
        shards = [plan.shards[position] for position in live]
        reqs = [requests[position] for position in live]
        if pool is not None:
            slots = self._placement_slots(plan, live, pool.worker_count, load_report)
            if pool.executor == "process":
                futures = [
                    _submit_payload(pool, slot, payload_from_shard(shard), req)
                    for slot, shard, req in zip(slots, shards, reqs)
                ]
            else:
                futures = [
                    pool.submit(slot, solve_shard, shard, req)
                    for slot, shard, req in zip(slots, shards, reqs)
                ]
            return [future.result() for future in futures]
        if self.executor == "serial" or len(live) <= 1:
            return [solve_shard(shard, req) for shard, req in zip(shards, reqs)]
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=worker_count) as pool_:
                return list(pool_.map(solve_shard, shards, reqs))
        payloads = [payload_from_shard(shard) for shard in shards]
        if fork_stats is not None:
            for payload in payloads:
                fork_stats.record_pickle(payload.shard_id, payload_wire_bytes(payload))
        with ProcessPoolExecutor(max_workers=worker_count) as pool_:
            return list(pool_.map(solve_shard_payload, payloads, reqs))

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge_solution(
        self,
        instance: MarketInstance,
        merged: Dict[str, Tuple[int, ...]],
        merged_profits: Dict[str, float],
    ) -> MarketSolution:
        """Assemble the global solution from the shard results.

        For the greedy and exact-tier shard solvers the plans are valid
        task-map paths and the solution is rebuilt (and revalidated) through
        the standard constructor.  The online shard solvers may chain tasks
        that the deadline-based task map rules out (a driver who finishes
        early can legally reach them), so their plans carry the profits
        computed by the simulator instead of being re-derived from the task
        map.
        """
        if self.solver_name == "greedy" or self.solver_name in EXACT_SOLVER_NAMES:
            return MarketSolution.from_assignment(instance, merged, Objective.DRIVERS_PROFIT)
        plans = tuple(
            DriverPlan(
                driver_id=driver.driver_id,
                task_indices=tuple(merged.get(driver.driver_id, ())),
                profit=merged_profits.get(driver.driver_id, 0.0),
            )
            for driver in instance.drivers
        )
        return MarketSolution(instance=instance, plans=plans, objective=Objective.DRIVERS_PROFIT)
