"""Coordinator for distributed (sharded) solving.

The coordinator partitions the market with a
:class:`~repro.distributed.partition.SpatialPartitioner`, hands each shard to
a worker (in-process, optionally on a thread pool to model parallel city /
district solvers), and merges the shard-local assignments into one global
:class:`~repro.core.MarketSolution`.  Because the partitioner gives every
shard a disjoint task set, the merge needs no conflict resolution — what the
sharding costs instead is the cross-shard trips it can no longer match, and
that loss is exactly what the partitioning ablation benchmark measures.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.objectives import Objective
from ..core.solution import MarketSolution
from ..market.instance import MarketInstance
from ..offline.greedy import GreedySolver
from ..online.dispatchers import MaxMarginDispatcher, NearestDispatcher
from ..online.simulator import OnlineSimulator
from .messages import CoordinatorReport, ShardWorkRequest, ShardWorkResult, Stopwatch
from .partition import MarketShard, PartitionPlan, SpatialPartitioner, translate_assignment

#: Shard solvers available to workers, by name.
SOLVER_NAMES = ("greedy", "nearest", "maxMargin")


def solve_shard(shard: MarketShard, request: ShardWorkRequest) -> ShardWorkResult:
    """Run the requested solver on one shard (the worker's entry point)."""
    if request.solver_name not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {request.solver_name!r}; expected one of {SOLVER_NAMES}")
    with Stopwatch() as watch:
        if shard.task_count == 0 or shard.driver_count == 0:
            assignment: Dict[str, Tuple[int, ...]] = {}
            driver_profits: Dict[str, float] = {}
            total_value = 0.0
            served = 0
        elif request.solver_name == "greedy":
            solution = GreedySolver().solve(shard.instance).solution
            assignment = solution.assignment()
            driver_profits = {
                plan.driver_id: plan.profit for plan in solution.iter_nonempty_plans()
            }
            total_value = solution.total_value
            served = solution.served_count
        else:
            dispatcher = (
                NearestDispatcher() if request.solver_name == "nearest" else MaxMarginDispatcher()
            )
            outcome = OnlineSimulator(shard.instance, dispatcher).run()
            assignment = outcome.assignment()
            driver_profits = {
                record.driver_id: record.profit
                for record in outcome.records
                if record.task_indices
            }
            total_value = outcome.total_value
            served = outcome.served_count
    return ShardWorkResult(
        shard_id=shard.spec.shard_id,
        solver_name=request.solver_name,
        assignment=assignment,
        driver_profits=driver_profits,
        total_value=total_value,
        served_count=served,
        elapsed_s=watch.elapsed_s,
    )


@dataclass(frozen=True)
class DistributedResult:
    """The merged global solution plus the coordinator's report."""

    solution: MarketSolution
    report: CoordinatorReport
    plan: PartitionPlan


class DistributedCoordinator:
    """Partition, dispatch to workers, merge."""

    def __init__(
        self,
        partitioner: SpatialPartitioner,
        solver_name: str = "greedy",
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        if solver_name not in SOLVER_NAMES:
            raise ValueError(f"unknown solver {solver_name!r}; expected one of {SOLVER_NAMES}")
        self.partitioner = partitioner
        self.solver_name = solver_name
        self.parallel = parallel
        self.max_workers = max_workers

    def solve(self, instance: MarketInstance) -> DistributedResult:
        """Solve ``instance`` shard by shard and merge the results."""
        start = time.perf_counter()
        plan = self.partitioner.partition(instance)
        requests = [
            ShardWorkRequest(
                shard_id=shard.spec.shard_id,
                driver_count=shard.driver_count,
                task_count=shard.task_count,
                solver_name=self.solver_name,
            )
            for shard in plan.shards
        ]

        if self.parallel and len(plan.shards) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(pool.map(solve_shard, plan.shards, requests))
        else:
            results = [solve_shard(shard, req) for shard, req in zip(plan.shards, requests)]

        merged: Dict[str, Tuple[int, ...]] = {}
        merged_profits: Dict[str, float] = {}
        for shard, result in zip(plan.shards, results):
            merged.update(translate_assignment(shard, result.assignment))
            merged_profits.update(result.driver_profits)

        solution = self._merge_solution(instance, merged, merged_profits)
        wall_clock = time.perf_counter() - start
        durations = tuple(r.elapsed_s for r in results)
        report = CoordinatorReport(
            shard_count=plan.shard_count,
            total_value=solution.total_value,
            served_count=solution.served_count,
            wall_clock_s=wall_clock,
            slowest_shard_s=max(durations) if durations else 0.0,
            per_shard_values=tuple(r.total_value for r in results),
            per_shard_durations=durations,
        )
        return DistributedResult(solution=solution, report=report, plan=plan)

    def _merge_solution(
        self,
        instance: MarketInstance,
        merged: Dict[str, Tuple[int, ...]],
        merged_profits: Dict[str, float],
    ) -> MarketSolution:
        """Assemble the global solution from the shard results.

        For the greedy shard solver the plans are valid task-map paths and the
        solution is rebuilt (and revalidated) through the standard
        constructor.  The online shard solvers may chain tasks that the
        deadline-based task map rules out (a driver who finishes early can
        legally reach them), so their plans carry the profits computed by the
        simulator instead of being re-derived from the task map.
        """
        if self.solver_name == "greedy":
            return MarketSolution.from_assignment(instance, merged, Objective.DRIVERS_PROFIT)
        from ..core.solution import DriverPlan

        plans = tuple(
            DriverPlan(
                driver_id=driver.driver_id,
                task_indices=tuple(merged.get(driver.driver_id, ())),
                profit=merged_profits.get(driver.driver_id, 0.0),
            )
            for driver in instance.drivers
        )
        return MarketSolution(instance=instance, plans=plans, objective=Objective.DRIVERS_PROFIT)
