"""Coordinator for distributed (sharded) solving.

The coordinator partitions the market with a
:class:`~repro.distributed.partition.SpatialPartitioner`, hands each shard to
a worker, and merges the shard-local assignments into one global
:class:`~repro.core.MarketSolution`.  Because the partitioner gives every
shard a disjoint task set, the merge needs no conflict resolution — what the
sharding costs instead is the cross-shard trips it can no longer match, and
that loss is exactly what the partitioning ablation benchmark measures.

Choosing an executor
--------------------

Shard solving is embarrassingly parallel, but the right executor depends on
where the time actually goes:

``serial`` (default)
    Solve shards in-process, one after another.  Zero overhead, fully
    deterministic, the right choice for small instances, for tests and for
    debugging — and the reference every other policy must reproduce
    bit-identically.

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` fan-out.  Threads share
    the interpreter, so pure-Python solver time stays GIL-bound; the win is
    limited to the NumPy kernels (leg matrices, candidate masks) that release
    the GIL.  Cheap to start, shares memory, good for a handful of shards
    whose cost is dominated by vectorised work.

``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.  Each shard
    is flattened into an array-backed :class:`~repro.distributed.payload.ShardPayload`
    (primal inputs only — never the object graph or cached task maps), the
    worker rebuilds the sub-instance and solves it with its own interpreter,
    so the whole solve — task-network construction, task maps, greedy /
    simulator — parallelises across cores.  This is the policy that makes
    city-scale instances scale with the machine; it pays a per-worker fork
    and a per-shard pickle, so it only wins when per-shard solve time
    dominates (hundreds of tasks per shard, or many shards).

Choosing a shard count
----------------------

More shards mean smaller per-shard solves and a better load balance across
workers, but every extra boundary loses the cross-shard trips the paper warns
about (the partitioning ablation quantifies the retention loss).  Practical
guidance: use the coarsest grid that yields at least one shard per worker
(e.g. ``4x2`` for 4-8 workers), check
:attr:`~repro.distributed.messages.CoordinatorReport.critical_path_speedup`
— if it is far below the shard count, the largest shard dominates and a finer
grid (or a better-balanced partition) is needed before more workers help.

Every executor consumes the same per-shard
:class:`~repro.distributed.messages.ShardWorkRequest` (including the
deterministically derived per-shard seed) and the merge consumes results in
shard order, so the merged solution is bit-identical across policies.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.objectives import Objective
from ..core.solution import MarketSolution
from ..market.instance import MarketInstance
from ..offline.greedy import GreedySolver
from ..online.dispatchers import MaxMarginDispatcher, NearestDispatcher
from ..online.simulator import OnlineSimulator
from .messages import CoordinatorReport, ShardWorkRequest, ShardWorkResult, Stopwatch
from .partition import MarketShard, PartitionPlan, SpatialPartitioner, translate_assignment
from .payload import ShardPayload, instance_from_payload, payload_from_shard

#: Shard solvers available to workers, by name.
SOLVER_NAMES = ("greedy", "nearest", "maxMargin")

#: Executor policies accepted by the coordinator.
EXECUTOR_POLICIES = ("serial", "thread", "process")


def _solve_instance(
    instance: MarketInstance, request: ShardWorkRequest
) -> Tuple[Dict[str, Tuple[int, ...]], Dict[str, float], float, int]:
    """Run the requested solver on one (sub-)instance.

    Returns ``(assignment, driver_profits, total_value, served_count)`` with
    the assignment in shard-local task indices.
    """
    if request.solver_name == "greedy":
        solution = GreedySolver().solve(instance).solution
        assignment = solution.assignment()
        driver_profits = {
            plan.driver_id: plan.profit for plan in solution.iter_nonempty_plans()
        }
        return assignment, driver_profits, solution.total_value, solution.served_count
    dispatcher = (
        NearestDispatcher(seed=request.seed)
        if request.solver_name == "nearest"
        else MaxMarginDispatcher()
    )
    outcome = OnlineSimulator(instance, dispatcher).run()
    assignment = outcome.assignment()
    driver_profits = {
        record.driver_id: record.profit
        for record in outcome.records
        if record.task_indices
    }
    return assignment, driver_profits, outcome.total_value, outcome.served_count


def solve_shard(shard: MarketShard, request: ShardWorkRequest) -> ShardWorkResult:
    """Run the requested solver on one shard (the in-process worker entry)."""
    if request.solver_name not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {request.solver_name!r}; expected one of {SOLVER_NAMES}")
    with Stopwatch() as watch:
        if shard.task_count == 0 or shard.driver_count == 0:
            assignment: Dict[str, Tuple[int, ...]] = {}
            driver_profits: Dict[str, float] = {}
            total_value = 0.0
            served = 0
        else:
            assignment, driver_profits, total_value, served = _solve_instance(
                shard.instance, request
            )
    return ShardWorkResult(
        shard_id=shard.spec.shard_id,
        solver_name=request.solver_name,
        assignment=assignment,
        driver_profits=driver_profits,
        total_value=total_value,
        served_count=served,
        elapsed_s=watch.elapsed_s,
    )


def solve_shard_payload(payload: ShardPayload, request: ShardWorkRequest) -> ShardWorkResult:
    """Process-pool worker entry: rebuild the sub-instance from its
    array-backed payload and solve it.

    Top-level (picklable by reference) on purpose; produces exactly the same
    result as :func:`solve_shard` on the shard the payload was built from.
    """
    if request.solver_name not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {request.solver_name!r}; expected one of {SOLVER_NAMES}")
    with Stopwatch() as watch:
        assignment, driver_profits, total_value, served = _solve_instance(
            instance_from_payload(payload), request
        )
    return ShardWorkResult(
        shard_id=payload.shard_id,
        solver_name=request.solver_name,
        assignment=assignment,
        driver_profits=driver_profits,
        total_value=total_value,
        served_count=served,
        elapsed_s=watch.elapsed_s,
    )


def _empty_shard_result(shard: MarketShard, request: ShardWorkRequest) -> ShardWorkResult:
    """The (trivial) result of a degenerate shard, synthesised in-line by the
    coordinator so no future is ever submitted for it."""
    return ShardWorkResult(
        shard_id=shard.spec.shard_id,
        solver_name=request.solver_name,
        assignment={},
        driver_profits={},
        total_value=0.0,
        served_count=0,
        elapsed_s=0.0,
    )


@dataclass(frozen=True)
class DistributedResult:
    """The merged global solution plus the coordinator's report."""

    solution: MarketSolution
    report: CoordinatorReport
    plan: PartitionPlan


class DistributedCoordinator:
    """Partition, dispatch to workers, merge.

    Parameters
    ----------
    partitioner:
        The spatial partitioner producing disjoint-task shards.
    solver_name:
        Shard solver: ``"greedy"``, ``"nearest"`` or ``"maxMargin"``.
    executor:
        Fan-out policy: ``"serial"``, ``"thread"`` or ``"process"`` (see the
        module docstring for how to choose).  Defaults to ``"serial"`` unless
        the legacy ``parallel=True`` flag selects ``"thread"``.
    parallel:
        Deprecated alias kept for backwards compatibility: ``parallel=True``
        is the old thread-pool mode and is equivalent to
        ``executor="thread"``.
    max_workers:
        Pool width for the thread/process policies (``None`` lets the pool
        pick its default).
    base_seed:
        Base of the deterministic per-shard seeds (shard ``k`` receives
        ``base_seed + k``), so stochastic shard solvers are reproducible and
        executor-independent.
    """

    def __init__(
        self,
        partitioner: SpatialPartitioner,
        solver_name: str = "greedy",
        parallel: bool = False,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        base_seed: int = 0,
    ) -> None:
        if solver_name not in SOLVER_NAMES:
            raise ValueError(f"unknown solver {solver_name!r}; expected one of {SOLVER_NAMES}")
        if executor is None:
            executor = "thread" if parallel else "serial"
        if executor not in EXECUTOR_POLICIES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_POLICIES}"
            )
        self.partitioner = partitioner
        self.solver_name = solver_name
        self.executor = executor
        self.max_workers = max_workers
        self.base_seed = base_seed

    @property
    def parallel(self) -> bool:
        """Legacy flag: whether a pooled executor is configured."""
        return self.executor != "serial"

    def solve(self, instance: MarketInstance) -> DistributedResult:
        """Solve ``instance`` shard by shard and merge the results."""
        start = time.perf_counter()
        plan = self.partitioner.partition(instance)
        requests = [
            ShardWorkRequest(
                shard_id=shard.spec.shard_id,
                driver_count=shard.driver_count,
                task_count=shard.task_count,
                solver_name=self.solver_name,
                seed=self.base_seed + shard.spec.shard_id,
            )
            for shard in plan.shards
        ]

        # Degenerate shards (no tasks or no drivers) are short-circuited
        # in-line: they never reach an executor, but they keep their slot in
        # the per-shard report series so merged reports still count them.
        results: List[Optional[ShardWorkResult]] = [None] * len(plan.shards)
        live: List[int] = []
        for position, (shard, request) in enumerate(zip(plan.shards, requests)):
            if shard.task_count == 0 or shard.driver_count == 0:
                results[position] = _empty_shard_result(shard, request)
            else:
                live.append(position)

        worker_count = self._resolve_worker_count(len(live))
        for position, result in zip(live, self._solve_live(plan, requests, live, worker_count)):
            results[position] = result
        solved = [result for result in results if result is not None]

        merged: Dict[str, Tuple[int, ...]] = {}
        merged_profits: Dict[str, float] = {}
        for shard, result in zip(plan.shards, solved):
            merged.update(translate_assignment(shard, result.assignment))
            merged_profits.update(result.driver_profits)

        solution = self._merge_solution(instance, merged, merged_profits)
        wall_clock = time.perf_counter() - start
        durations = tuple(r.elapsed_s for r in solved)
        report = CoordinatorReport(
            shard_count=plan.shard_count,
            total_value=solution.total_value,
            served_count=solution.served_count,
            wall_clock_s=wall_clock,
            slowest_shard_s=max(durations) if durations else 0.0,
            per_shard_values=tuple(r.total_value for r in solved),
            per_shard_durations=durations,
            executor=self.executor,
            worker_count=worker_count,
            empty_shard_count=len(plan.shards) - len(live),
        )
        return DistributedResult(solution=solution, report=report, plan=plan)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _resolve_worker_count(self, live_count: int) -> int:
        """The actual pool width the fan-out runs with (mirrors the
        executors' own ``max_workers`` defaults), capped by the live shards."""
        if self.executor == "serial" or live_count <= 1:
            return 1
        if self.max_workers is not None:
            pool_width = self.max_workers
        elif self.executor == "thread":
            pool_width = min(32, (os.cpu_count() or 1) + 4)  # ThreadPoolExecutor default
        else:
            pool_width = os.cpu_count() or 1  # ProcessPoolExecutor default
        return max(1, min(pool_width, live_count))

    def _solve_live(
        self,
        plan: PartitionPlan,
        requests: List[ShardWorkRequest],
        live: List[int],
        worker_count: int,
    ) -> List[ShardWorkResult]:
        """Solve the non-degenerate shards under the configured policy,
        returning results in ``live`` order.

        The pools are created with the already-resolved ``worker_count``, so
        the width the report claims is the width that actually ran.
        """
        shards = [plan.shards[position] for position in live]
        reqs = [requests[position] for position in live]
        if self.executor == "serial" or len(live) <= 1:
            return [solve_shard(shard, req) for shard, req in zip(shards, reqs)]
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=worker_count) as pool:
                return list(pool.map(solve_shard, shards, reqs))
        payloads = [payload_from_shard(shard) for shard in shards]
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            return list(pool.map(solve_shard_payload, payloads, reqs))

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge_solution(
        self,
        instance: MarketInstance,
        merged: Dict[str, Tuple[int, ...]],
        merged_profits: Dict[str, float],
    ) -> MarketSolution:
        """Assemble the global solution from the shard results.

        For the greedy shard solver the plans are valid task-map paths and the
        solution is rebuilt (and revalidated) through the standard
        constructor.  The online shard solvers may chain tasks that the
        deadline-based task map rules out (a driver who finishes early can
        legally reach them), so their plans carry the profits computed by the
        simulator instead of being re-derived from the task map.
        """
        if self.solver_name == "greedy":
            return MarketSolution.from_assignment(instance, merged, Objective.DRIVERS_PROFIT)
        from ..core.solution import DriverPlan

        plans = tuple(
            DriverPlan(
                driver_id=driver.driver_id,
                task_indices=tuple(merged.get(driver.driver_id, ())),
                profit=merged_profits.get(driver.driver_id, 0.0),
            )
            for driver in instance.drivers
        )
        return MarketSolution(instance=instance, plans=plans, objective=Objective.DRIVERS_PROFIT)
