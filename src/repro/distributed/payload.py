"""Array-backed shard payloads for the process-pool executor.

A :class:`~repro.distributed.partition.MarketShard` carries a full
:class:`~repro.market.instance.MarketInstance` object graph — drivers, tasks
and (possibly) the lazily cached task network and per-driver task maps.
Pickling that graph into a worker process would ship megabytes of derived
state the worker is going to rebuild anyway, so the process executor ships a
:class:`ShardPayload` instead: the *primal* inputs of the shard flattened
into a handful of NumPy arrays plus the (tiny) cost-model configuration.

The round trip is exact: coordinates, timestamps and prices are stored as
``float64`` (the same representation the entities hold), so the instance a
worker rebuilds with :func:`instance_from_payload` is value-identical to the
shard's own sub-instance and every deterministic solver produces bit-identical
results on either side of the pickle boundary.

Parity contracts
----------------

* **Primal inputs only.**  Payloads carry driver/task coordinates, windows,
  deadlines and prices plus the cost-model configuration — never object
  graphs, task networks or per-driver task maps.  Workers rebuild all
  derived state themselves, so the wire format can never smuggle stale
  caches across the process boundary.
* **Bit-identical round trip.**  ``instance_from_payload(payload_from_shard(s))``
  is value-identical to ``s.instance``, and merged coordinator solutions are
  bit-identical across the serial / thread / process executors.
* **Deltas == full rebuild.**  For the streaming path, a
  :class:`ShardPayloadDelta` ships *only the new task columns* of one arrival
  batch.  Reconstructing the batches of a stream with
  :func:`tasks_from_delta` and appending them in order yields exactly the
  task tuple a full :class:`ShardPayload` rebuild would produce (pinned by a
  hypothesis test in ``tests/distributed/test_payload.py``), which is what
  keeps the pooled stream==replay merge bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task
from ..geo import GeoPoint
from .partition import MarketShard


def _coerce_arrays(obj, fields: Tuple[str, ...]) -> None:
    """Normalise a payload's array fields to C-contiguous ``float64`` in place.

    The transport layer (pickle and shared-memory alike) assumes it can ship
    each column as one flat buffer of known dtype; a transposed view or a
    ``float32`` array sneaking in would either silently copy at ship time or
    corrupt the fixed wire layout.  Coercing once, at construction, makes the
    invariant structural — and is free in the common case, because
    ``np.ascontiguousarray`` returns the input unchanged when it already
    complies (which also keeps the shm receive path zero-copy)."""
    for name in fields:
        value = getattr(obj, name)
        object.__setattr__(obj, name, np.ascontiguousarray(value, dtype=np.float64))


@dataclass(frozen=True)
class ShardPayload:
    """One shard's primal inputs, flattened for cheap pickling.

    ``driver_coords`` holds ``(src_lat, src_lon, dst_lat, dst_lon)`` per
    driver; ``task_coords`` the same per task.  ``task_times`` holds
    ``(publish_ts, start_deadline_ts, end_deadline_ts)``.  Optional task
    fields (willingness to pay, recorded trip distance) use ``NaN`` as the
    "not supplied" sentinel, which is unambiguous because both are validated
    non-negative on construction.
    """

    shard_id: int
    driver_ids: Tuple[str, ...]
    driver_coords: np.ndarray  # (N, 4)
    driver_windows: np.ndarray  # (N, 2): start_ts, end_ts
    task_ids: Tuple[str, ...]
    task_coords: np.ndarray  # (M, 4)
    task_times: np.ndarray  # (M, 3): publish, start deadline, end deadline
    task_prices: np.ndarray  # (M,)
    task_wtps: np.ndarray  # (M,), NaN where the task had no WTP
    task_distances: np.ndarray  # (M,), NaN where no trace distance was known
    cost_model: MarketCostModel

    #: Array fields, in wire order (shared with the shm transport layout).
    ARRAY_FIELDS = (
        "driver_coords",
        "driver_windows",
        "task_coords",
        "task_times",
        "task_prices",
        "task_wtps",
        "task_distances",
    )

    def __post_init__(self) -> None:
        _coerce_arrays(self, self.ARRAY_FIELDS)

    @property
    def driver_count(self) -> int:
        return len(self.driver_ids)

    @property
    def task_count(self) -> int:
        return len(self.task_ids)


def _flatten_tasks(tasks: Sequence[Task]) -> Tuple[np.ndarray, ...]:
    """Flatten tasks into the ``(coords, times, prices, wtps, distances)``
    arrays shared by :class:`ShardPayload` and :class:`ShardPayloadDelta`."""
    m = len(tasks)
    task_coords = np.empty((m, 4), dtype=float)
    task_times = np.empty((m, 3), dtype=float)
    task_prices = np.empty(m, dtype=float)
    task_wtps = np.full(m, np.nan, dtype=float)
    task_distances = np.full(m, np.nan, dtype=float)
    for j, task in enumerate(tasks):
        task_coords[j] = (
            task.source.lat,
            task.source.lon,
            task.destination.lat,
            task.destination.lon,
        )
        task_times[j] = (task.publish_ts, task.start_deadline_ts, task.end_deadline_ts)
        task_prices[j] = task.price
        if task.wtp is not None:
            task_wtps[j] = task.wtp
        if task.distance_km is not None:
            task_distances[j] = task.distance_km
    return task_coords, task_times, task_prices, task_wtps, task_distances


def _rebuild_tasks(
    task_ids: Tuple[str, ...],
    task_coords: np.ndarray,
    task_times: np.ndarray,
    task_prices: np.ndarray,
    task_wtps: np.ndarray,
    task_distances: np.ndarray,
) -> Tuple[Task, ...]:
    """The exact inverse of :func:`_flatten_tasks` (value-identical tasks)."""
    return tuple(
        Task(
            task_id=task_id,
            publish_ts=float(times[0]),
            source=GeoPoint(float(coords[0]), float(coords[1])),
            destination=GeoPoint(float(coords[2]), float(coords[3])),
            start_deadline_ts=float(times[1]),
            end_deadline_ts=float(times[2]),
            price=float(price),
            wtp=None if np.isnan(wtp) else float(wtp),
            distance_km=None if np.isnan(distance) else float(distance),
        )
        for task_id, coords, times, price, wtp, distance in zip(
            task_ids, task_coords, task_times, task_prices, task_wtps, task_distances
        )
    )


@dataclass(frozen=True)
class ShardPayloadDelta:
    """One arrival batch's *new task columns*, flattened for cheap pickling.

    The streaming coordinator ships one delta per (shard, batch) instead of
    re-sending the shard's whole payload: only the new tasks cross the
    process boundary, so the per-batch wire cost is ``O(B)`` regardless of
    how many tasks the shard has accumulated.  Field conventions are
    identical to :class:`ShardPayload` (``NaN`` sentinels for optional
    fields), and :func:`tasks_from_delta` restores value-identical tasks.
    """

    shard_id: int
    task_ids: Tuple[str, ...]
    task_coords: np.ndarray  # (B, 4)
    task_times: np.ndarray  # (B, 3): publish, start deadline, end deadline
    task_prices: np.ndarray  # (B,)
    task_wtps: np.ndarray  # (B,), NaN where the task had no WTP
    task_distances: np.ndarray  # (B,), NaN where no trace distance was known

    #: Array fields, in wire order (shared with the shm transport layout).
    ARRAY_FIELDS = (
        "task_coords",
        "task_times",
        "task_prices",
        "task_wtps",
        "task_distances",
    )

    def __post_init__(self) -> None:
        _coerce_arrays(self, self.ARRAY_FIELDS)

    @property
    def task_count(self) -> int:
        return len(self.task_ids)


def delta_from_tasks(shard_id: int, tasks: Sequence[Task]) -> ShardPayloadDelta:
    """Flatten one arrival batch into a :class:`ShardPayloadDelta`."""
    task_coords, task_times, task_prices, task_wtps, task_distances = _flatten_tasks(tasks)
    return ShardPayloadDelta(
        shard_id=shard_id,
        task_ids=tuple(t.task_id for t in tasks),
        task_coords=task_coords,
        task_times=task_times,
        task_prices=task_prices,
        task_wtps=task_wtps,
        task_distances=task_distances,
    )


def tasks_from_delta(delta: ShardPayloadDelta) -> Tuple[Task, ...]:
    """Rebuild the arrival batch (value-identical to the original tasks)."""
    return _rebuild_tasks(
        delta.task_ids,
        delta.task_coords,
        delta.task_times,
        delta.task_prices,
        delta.task_wtps,
        delta.task_distances,
    )


def payload_from_shard(shard: MarketShard) -> ShardPayload:
    """Flatten a shard's sub-instance into a :class:`ShardPayload`."""
    instance = shard.instance
    n = instance.driver_count

    driver_coords = np.empty((n, 4), dtype=float)
    driver_windows = np.empty((n, 2), dtype=float)
    for i, driver in enumerate(instance.drivers):
        driver_coords[i] = (
            driver.source.lat,
            driver.source.lon,
            driver.destination.lat,
            driver.destination.lon,
        )
        driver_windows[i] = (driver.start_ts, driver.end_ts)

    task_coords, task_times, task_prices, task_wtps, task_distances = _flatten_tasks(
        instance.tasks
    )

    return ShardPayload(
        shard_id=shard.spec.shard_id,
        driver_ids=tuple(d.driver_id for d in instance.drivers),
        driver_coords=driver_coords,
        driver_windows=driver_windows,
        task_ids=tuple(t.task_id for t in instance.tasks),
        task_coords=task_coords,
        task_times=task_times,
        task_prices=task_prices,
        task_wtps=task_wtps,
        task_distances=task_distances,
        cost_model=instance.cost_model,
    )


def instance_from_payload(payload: ShardPayload) -> MarketInstance:
    """Rebuild the shard's sub-instance (value-identical to the original)."""
    drivers = tuple(
        Driver(
            driver_id=driver_id,
            source=GeoPoint(float(coords[0]), float(coords[1])),
            destination=GeoPoint(float(coords[2]), float(coords[3])),
            start_ts=float(window[0]),
            end_ts=float(window[1]),
        )
        for driver_id, coords, window in zip(
            payload.driver_ids, payload.driver_coords, payload.driver_windows
        )
    )
    tasks = _rebuild_tasks(
        payload.task_ids,
        payload.task_coords,
        payload.task_times,
        payload.task_prices,
        payload.task_wtps,
        payload.task_distances,
    )
    return MarketInstance(drivers=drivers, tasks=tasks, cost_model=payload.cost_model)
