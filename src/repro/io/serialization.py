"""JSON serialization of market instances, solutions and outcomes.

Experiments are cheaper to debug and share when the exact instance that
produced a number can be written to disk and reloaded bit-for-bit.  The
format is plain JSON with an explicit ``format`` / ``version`` header:

* drivers and tasks serialise all of their model attributes;
* the travel model serialises its estimator type, circuity, speed and cost;
* solutions/outcomes serialise the assignment, per-driver profits and the
  producing algorithm, referencing tasks by index within the instance.

Round-tripping an instance rebuilds the task maps lazily as usual, so a
loaded instance behaves exactly like a freshly constructed one.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from ..core.objectives import Objective
from ..core.solution import DriverPlan, MarketSolution
from ..geo import (
    EquirectangularEstimator,
    GeoPoint,
    HaversineEstimator,
    ManhattanEstimator,
    TravelModel,
)
from ..market.cost import MarketCostModel
from ..market.driver import Driver
from ..market.instance import MarketInstance
from ..market.task import Task
from ..online.outcome import OnlineDriverRecord, OnlineOutcome

FORMAT_NAME = "repro-market"
FORMAT_VERSION = 1

_ESTIMATOR_NAMES = {
    HaversineEstimator: "haversine",
    EquirectangularEstimator: "equirectangular",
    ManhattanEstimator: "manhattan",
}


class SerializationError(ValueError):
    """Raised when a document cannot be decoded."""


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def point_to_dict(point: GeoPoint) -> Dict[str, float]:
    return {"lat": point.lat, "lon": point.lon}


def point_from_dict(data: Mapping[str, Any]) -> GeoPoint:
    try:
        return GeoPoint(float(data["lat"]), float(data["lon"]))
    except KeyError as exc:
        raise SerializationError(f"point is missing field {exc}") from exc


def driver_to_dict(driver: Driver) -> Dict[str, Any]:
    return {
        "driver_id": driver.driver_id,
        "source": point_to_dict(driver.source),
        "destination": point_to_dict(driver.destination),
        "start_ts": driver.start_ts,
        "end_ts": driver.end_ts,
    }


def driver_from_dict(data: Mapping[str, Any]) -> Driver:
    try:
        return Driver(
            driver_id=str(data["driver_id"]),
            source=point_from_dict(data["source"]),
            destination=point_from_dict(data["destination"]),
            start_ts=float(data["start_ts"]),
            end_ts=float(data["end_ts"]),
        )
    except KeyError as exc:
        raise SerializationError(f"driver is missing field {exc}") from exc


def task_to_dict(task: Task) -> Dict[str, Any]:
    return {
        "task_id": task.task_id,
        "publish_ts": task.publish_ts,
        "source": point_to_dict(task.source),
        "destination": point_to_dict(task.destination),
        "start_deadline_ts": task.start_deadline_ts,
        "end_deadline_ts": task.end_deadline_ts,
        "price": task.price,
        "wtp": task.wtp,
        "distance_km": task.distance_km,
    }


def task_from_dict(data: Mapping[str, Any]) -> Task:
    try:
        return Task(
            task_id=str(data["task_id"]),
            publish_ts=float(data["publish_ts"]),
            source=point_from_dict(data["source"]),
            destination=point_from_dict(data["destination"]),
            start_deadline_ts=float(data["start_deadline_ts"]),
            end_deadline_ts=float(data["end_deadline_ts"]),
            price=float(data["price"]),
            wtp=None if data.get("wtp") is None else float(data["wtp"]),
            distance_km=None if data.get("distance_km") is None else float(data["distance_km"]),
        )
    except KeyError as exc:
        raise SerializationError(f"task is missing field {exc}") from exc


def travel_model_to_dict(model: TravelModel) -> Dict[str, Any]:
    estimator_name = _ESTIMATOR_NAMES.get(type(model.estimator))
    if estimator_name is None:
        raise SerializationError(
            f"cannot serialise custom distance estimator {type(model.estimator).__name__}"
        )
    return {
        "estimator": estimator_name,
        "circuity": float(getattr(model.estimator, "circuity", 1.0)),
        "speed_kmh": model.speed_kmh,
        "cost_per_km": model.cost_per_km,
    }


def travel_model_from_dict(data: Mapping[str, Any]) -> TravelModel:
    name = data.get("estimator", "haversine")
    circuity = float(data.get("circuity", 1.3))
    if name == "haversine":
        estimator = HaversineEstimator(circuity=circuity)
    elif name == "equirectangular":
        estimator = EquirectangularEstimator(circuity=circuity)
    elif name == "manhattan":
        estimator = ManhattanEstimator()
    else:
        raise SerializationError(f"unknown estimator {name!r}")
    return TravelModel(
        estimator,
        speed_kmh=float(data.get("speed_kmh", 30.0)),
        cost_per_km=float(data.get("cost_per_km", 0.12)),
    )


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: MarketInstance) -> Dict[str, Any]:
    """Serialise a market instance to a JSON-compatible dictionary."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "travel_model": travel_model_to_dict(instance.cost_model.travel_model),
        "drivers": [driver_to_dict(d) for d in instance.drivers],
        "tasks": [task_to_dict(t) for t in instance.tasks],
    }


def instance_from_dict(data: Mapping[str, Any]) -> MarketInstance:
    """Rebuild a market instance from :func:`instance_to_dict` output."""
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"not a {FORMAT_NAME} document")
    if int(data.get("version", -1)) != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {data.get('version')!r}")
    travel_model = travel_model_from_dict(data.get("travel_model", {}))
    drivers = [driver_from_dict(d) for d in data.get("drivers", [])]
    tasks = [task_from_dict(t) for t in data.get("tasks", [])]
    return MarketInstance.create(
        drivers=drivers, tasks=tasks, cost_model=MarketCostModel(travel_model)
    )


def save_instance(instance: MarketInstance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2), encoding="utf-8")


def load_instance(path: Union[str, Path]) -> MarketInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# solutions / outcomes
# ----------------------------------------------------------------------
def solution_to_dict(solution: MarketSolution, algorithm: str = "unknown") -> Dict[str, Any]:
    """Serialise an (offline) solution's assignment and per-driver profits."""
    return {
        "format": f"{FORMAT_NAME}-solution",
        "version": FORMAT_VERSION,
        "algorithm": algorithm,
        "objective": solution.objective.value,
        "plans": [
            {
                "driver_id": plan.driver_id,
                "task_indices": list(plan.task_indices),
                "profit": plan.profit,
            }
            for plan in solution.plans
        ],
    }


def solution_from_dict(data: Mapping[str, Any], instance: MarketInstance) -> MarketSolution:
    """Rebuild a solution against an already-loaded instance."""
    if data.get("format") != f"{FORMAT_NAME}-solution":
        raise SerializationError("not a solution document")
    objective = Objective(data.get("objective", Objective.DRIVERS_PROFIT.value))
    plans = tuple(
        DriverPlan(
            driver_id=str(entry["driver_id"]),
            task_indices=tuple(int(m) for m in entry["task_indices"]),
            profit=float(entry["profit"]),
        )
        for entry in data.get("plans", [])
    )
    return MarketSolution(instance=instance, plans=plans, objective=objective)


def outcome_to_dict(outcome: OnlineOutcome) -> Dict[str, Any]:
    """Serialise an online outcome (assignment, profits, rejections)."""
    return {
        "format": f"{FORMAT_NAME}-outcome",
        "version": FORMAT_VERSION,
        "dispatcher": outcome.dispatcher_name,
        "records": [
            {
                "driver_id": record.driver_id,
                "task_indices": list(record.task_indices),
                "profit": record.profit,
                # Untracked commits carry NaN in memory; ship null so the
                # document stays valid strict JSON.
                "arrival_times": [
                    None if math.isnan(ts) else ts for ts in record.arrival_times
                ],
            }
            for record in outcome.records
        ],
        "rejected_tasks": list(outcome.rejected_tasks),
    }


def outcome_from_dict(data: Mapping[str, Any], instance: MarketInstance) -> OnlineOutcome:
    """Rebuild an online outcome against an already-loaded instance."""
    if data.get("format") != f"{FORMAT_NAME}-outcome":
        raise SerializationError("not an outcome document")
    records = tuple(
        OnlineDriverRecord(
            driver_id=str(entry["driver_id"]),
            task_indices=tuple(int(m) for m in entry["task_indices"]),
            profit=float(entry["profit"]),
            # Documents written before wait tracking have no arrival_times;
            # default to untracked rather than failing the load.
            arrival_times=tuple(
                math.nan if ts is None else float(ts)
                for ts in entry.get("arrival_times", ())
            ),
        )
        for entry in data.get("records", [])
    )
    return OnlineOutcome(
        instance=instance,
        records=records,
        rejected_tasks=tuple(int(m) for m in data.get("rejected_tasks", [])),
        dispatcher_name=str(data.get("dispatcher", "unknown")),
    )


def save_solution(
    solution: MarketSolution, path: Union[str, Path], algorithm: str = "unknown"
) -> None:
    Path(path).write_text(
        json.dumps(solution_to_dict(solution, algorithm=algorithm), indent=2), encoding="utf-8"
    )


def load_solution(path: Union[str, Path], instance: MarketInstance) -> MarketSolution:
    return solution_from_dict(json.loads(Path(path).read_text(encoding="utf-8")), instance)
