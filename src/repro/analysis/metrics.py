"""Market-level metrics shared by the experiments.

Both :class:`repro.core.MarketSolution` (offline algorithms) and
:class:`repro.online.OnlineOutcome` (online heuristics) expose the same
metric vocabulary through ``summary()``; this module adds the cross-cutting
aggregations the evaluation section of the paper plots — most importantly the
market-density sweeps of Figs. 6-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Protocol, Sequence


class SolutionLike(Protocol):
    """Anything that quantifies an assignment of tasks to drivers."""

    @property
    def total_value(self) -> float: ...

    @property
    def total_revenue(self) -> float: ...

    @property
    def served_count(self) -> int: ...

    @property
    def serve_rate(self) -> float: ...

    def revenue_per_driver(self) -> float: ...

    def tasks_per_driver(self) -> float: ...

    def summary(self) -> Dict[str, float]: ...


@dataclass(frozen=True, slots=True)
class MarketMetrics:
    """The per-run metrics plotted in Figs. 6-9."""

    algorithm: str
    driver_count: int
    task_count: int
    total_value: float
    total_revenue: float
    served_count: int
    serve_rate: float
    revenue_per_driver: float
    tasks_per_driver: float

    @classmethod
    def from_solution(
        cls,
        algorithm: str,
        driver_count: int,
        task_count: int,
        solution: SolutionLike,
    ) -> "MarketMetrics":
        return cls(
            algorithm=algorithm,
            driver_count=driver_count,
            task_count=task_count,
            total_value=solution.total_value,
            total_revenue=solution.total_revenue,
            served_count=solution.served_count,
            serve_rate=solution.serve_rate,
            revenue_per_driver=solution.revenue_per_driver(),
            tasks_per_driver=solution.tasks_per_driver(),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "driver_count": self.driver_count,
            "task_count": self.task_count,
            "total_value": self.total_value,
            "total_revenue": self.total_revenue,
            "served_count": self.served_count,
            "serve_rate": self.serve_rate,
            "revenue_per_driver": self.revenue_per_driver,
            "tasks_per_driver": self.tasks_per_driver,
        }


@dataclass(frozen=True)
class SweepSeries:
    """One plotted curve: a metric as a function of the driver count."""

    algorithm: str
    metric: str
    driver_counts: tuple[int, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.driver_counts) != len(self.values):
            raise ValueError("driver_counts and values must have equal length")

    def is_non_decreasing(self, tolerance: float = 1e-9) -> bool:
        return all(
            later >= earlier - tolerance
            for earlier, later in zip(self.values, self.values[1:])
        )

    def is_non_increasing(self, tolerance: float = 1e-9) -> bool:
        return all(
            later <= earlier + tolerance
            for earlier, later in zip(self.values, self.values[1:])
        )

    def trend(self) -> float:
        """Last value minus first value — positive for a growing curve."""
        if not self.values:
            return 0.0
        return self.values[-1] - self.values[0]


def series_from_metrics(
    metrics: Sequence[MarketMetrics], algorithm: str, metric: str
) -> SweepSeries:
    """Extract one curve from a list of sweep measurements."""
    rows = sorted(
        (m for m in metrics if m.algorithm == algorithm), key=lambda m: m.driver_count
    )
    if not rows:
        raise ValueError(f"no measurements for algorithm {algorithm!r}")
    values = []
    for row in rows:
        record = row.as_dict()
        if metric not in record:
            raise KeyError(f"unknown metric {metric!r}")
        values.append(float(record[metric]))
    return SweepSeries(
        algorithm=algorithm,
        metric=metric,
        driver_counts=tuple(r.driver_count for r in rows),
        values=tuple(values),
    )


def algorithms_in(metrics: Iterable[MarketMetrics]) -> List[str]:
    """Distinct algorithm names, preserving first-seen order."""
    seen: List[str] = []
    for m in metrics:
        if m.algorithm not in seen:
            seen.append(m.algorithm)
    return seen
