"""Performance ratios against the theoretical upper bound (Fig. 5).

Section VI-B of the paper: "We use the offline relaxation results from Z*_f
as the theoretical upper bound ... The performance ratio is Z*_f divided by
the drivers' total profits achieved by the algorithms we design."  For small
instances the exact optimum ``Z*`` can be used instead.

Note the paper's ratio is *bound / achieved* (so it is >= 1 and smaller is
better).  :class:`PerformanceRatio` stores both that value and its inverse
(achieved / bound, in ``[0, 1]``), because the inverse is what the
approximation guarantee ``1/(D+1)`` speaks about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.objectives import Objective
from ..market.instance import MarketInstance
from ..offline.exact import exact_optimum
from ..offline.lagrangian import lagrangian_bound
from ..offline.relaxation import lp_relaxation_bound


class BoundKind(enum.Enum):
    """Which upper bound the ratio is computed against."""

    #: The LP relaxation ``Z*_f`` (the paper's default).
    LP_RELAXATION = "lp_relaxation"
    #: The exact optimum ``Z*`` from the MILP solver (small instances).
    EXACT = "exact"
    #: The Lagrangian bound (scalable alternative for large instances).
    LAGRANGIAN = "lagrangian"


@dataclass(frozen=True, slots=True)
class PerformanceRatio:
    """An achieved objective value compared against an upper bound."""

    algorithm: str
    achieved: float
    upper_bound: float
    bound_kind: BoundKind

    @property
    def ratio(self) -> float:
        """The paper's ratio: upper bound / achieved (>= 1, smaller is better).

        Infinite when the algorithm achieved nothing but the bound is
        positive; defined as 1 when both are (numerically) zero.
        """
        if abs(self.upper_bound) < 1e-12 and abs(self.achieved) < 1e-12:
            return 1.0
        if self.achieved <= 0:
            return float("inf")
        return self.upper_bound / self.achieved

    @property
    def efficiency(self) -> float:
        """achieved / upper bound, clipped to [0, 1] for floating-point noise."""
        if self.upper_bound <= 0:
            return 1.0 if self.achieved <= 0 else float("inf")
        return max(0.0, min(1.0, self.achieved / self.upper_bound))


def compute_upper_bound(
    instance: MarketInstance,
    bound_kind: BoundKind = BoundKind.LP_RELAXATION,
    objective: Objective = Objective.DRIVERS_PROFIT,
    lagrangian_iterations: int = 30,
) -> float:
    """Compute the requested upper bound for an instance."""
    if bound_kind is BoundKind.LP_RELAXATION:
        return lp_relaxation_bound(instance, objective=objective).upper_bound
    if bound_kind is BoundKind.EXACT:
        return exact_optimum(instance, objective=objective).optimum
    if bound_kind is BoundKind.LAGRANGIAN:
        return lagrangian_bound(
            instance, objective=objective, iterations=lagrangian_iterations
        ).upper_bound
    raise ValueError(f"unsupported bound kind {bound_kind!r}")


def performance_ratios(
    achieved_by_algorithm: Dict[str, float],
    upper_bound: float,
    bound_kind: BoundKind = BoundKind.LP_RELAXATION,
) -> Dict[str, PerformanceRatio]:
    """Wrap a set of achieved values against one shared upper bound."""
    return {
        name: PerformanceRatio(
            algorithm=name, achieved=value, upper_bound=upper_bound, bound_kind=bound_kind
        )
        for name, value in achieved_by_algorithm.items()
    }
