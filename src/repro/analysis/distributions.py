"""Empirical distribution analysis for the trace (Figs. 3 and 4).

The paper plots the travel-time and travel-distance distributions of the
Porto trace and observes that both "exhibit the shape following the power law
distribution".  This module produces the histograms / survival functions
behind those figures and quantifies the heavy-tailedness so that the Fig. 3/4
benchmarks can assert on the *shape* rather than eyeball a plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..trace.powerlaw import fit_power_law_mle, tail_heaviness
from ..trace.records import TripRecord


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of one empirical marginal (durations or distances)."""

    name: str
    count: int
    mean: float
    median: float
    p90: float
    p99: float
    maximum: float
    #: MLE power-law exponent of the upper tail.
    tail_exponent: float
    #: p99 / median — a scale-free heaviness score.
    heaviness: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
            "tail_exponent": self.tail_exponent,
            "heaviness": self.heaviness,
        }


def summarize_samples(name: str, samples: Sequence[float], tail_quantile: float = 0.5) -> DistributionSummary:
    """Summarise a collection of positive samples.

    ``tail_quantile`` sets where the power-law tail fit starts (the paper's
    figures are dominated by the upper tail, and fitting from the median is
    the conventional robust choice).
    """
    values = np.asarray([s for s in samples if s > 0], dtype=float)
    if values.size == 0:
        raise ValueError(f"{name}: no positive samples")
    x_min = float(np.quantile(values, tail_quantile))
    fit = fit_power_law_mle(values, x_min=x_min)
    return DistributionSummary(
        name=name,
        count=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        p99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
        tail_exponent=fit.alpha,
        heaviness=tail_heaviness(values),
    )


def travel_time_summary(trips: Sequence[TripRecord]) -> DistributionSummary:
    """Fig. 3 — the trip-duration (minutes) distribution."""
    return summarize_samples("travel_time_min", [t.duration_min for t in trips])


def travel_distance_summary(trips: Sequence[TripRecord]) -> DistributionSummary:
    """Fig. 4 — the trip-distance (km) distribution."""
    return summarize_samples("travel_distance_km", [t.distance_km for t in trips])


def histogram(
    samples: Sequence[float], bins: int = 30, log_bins: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram counts and bin edges (optionally logarithmic bins), the raw
    material of the Fig. 3/4 bar plots."""
    values = np.asarray([s for s in samples if s > 0], dtype=float)
    if values.size == 0:
        raise ValueError("no positive samples")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if log_bins:
        edges = np.logspace(np.log10(values.min()), np.log10(values.max()), bins + 1)
    else:
        edges = np.linspace(values.min(), values.max(), bins + 1)
    counts, edges = np.histogram(values, bins=edges)
    return counts, edges


def ascii_histogram(samples: Sequence[float], bins: int = 20, width: int = 50) -> str:
    """A terminal-friendly rendering of the distribution (used by examples)."""
    counts, edges = histogram(samples, bins=bins)
    peak = counts.max() if counts.size else 1
    lines: List[str] = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(f"{lo:10.1f} - {hi:10.1f} | {bar} {count}")
    return "\n".join(lines)
