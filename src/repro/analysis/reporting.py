"""Plain-text reporting of experiment results.

The benchmark harnesses print the same rows/series the paper's figures show;
these helpers render aligned text tables so the output is readable in a
terminal and diffable in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_line(list(headers)), render_line(["-" * w for w in widths])]
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    float_format: str = "{:.3f}",
) -> str:
    """Render "one row per x value, one column per algorithm" — the layout of
    every figure in the paper's evaluation."""
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            if len(values) != len(x_values):
                raise ValueError(f"series {name!r} length does not match x values")
            row.append(float(values[i]))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def format_metric_dict(metrics: Mapping[str, float], float_format: str = "{:.3f}") -> str:
    """Render a flat metric dictionary as ``name: value`` lines."""
    lines = []
    for key, value in metrics.items():
        if isinstance(value, float):
            lines.append(f"{key}: {float_format.format(value)}")
        else:
            lines.append(f"{key}: {value}")
    return "\n".join(lines)
