"""Analysis: metrics, performance ratios, distribution summaries, reporting."""

from .driver_stats import (
    DriverWorkload,
    FleetStats,
    driver_workload,
    fleet_stats,
    gini_coefficient,
)
from .distributions import (
    DistributionSummary,
    ascii_histogram,
    histogram,
    summarize_samples,
    travel_distance_summary,
    travel_time_summary,
)
from .metrics import MarketMetrics, SweepSeries, algorithms_in, series_from_metrics
from .ratio import BoundKind, PerformanceRatio, compute_upper_bound, performance_ratios
from .reporting import format_metric_dict, format_series_table, format_table

__all__ = [
    "DriverWorkload",
    "FleetStats",
    "driver_workload",
    "fleet_stats",
    "gini_coefficient",
    "MarketMetrics",
    "SweepSeries",
    "series_from_metrics",
    "algorithms_in",
    "BoundKind",
    "PerformanceRatio",
    "compute_upper_bound",
    "performance_ratios",
    "DistributionSummary",
    "summarize_samples",
    "travel_time_summary",
    "travel_distance_summary",
    "histogram",
    "ascii_histogram",
    "format_table",
    "format_series_table",
    "format_metric_dict",
]
