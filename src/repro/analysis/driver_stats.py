"""Driver-level statistics of an assignment.

Beyond the market-level metrics the paper plots (Figs. 6-9), platform
operators care about how the work and the income are *distributed* across the
fleet: how many drivers got any work at all, how unequal the incomes are
(Gini coefficient), how much of the driven distance is empty repositioning,
and how busy the working time actually is.  These statistics apply uniformly
to offline solutions and online outcomes because both expose the same
``driver_id -> task list`` assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..market.instance import MarketInstance


@dataclass(frozen=True, slots=True)
class DriverWorkload:
    """Per-driver accounting of one assignment."""

    driver_id: str
    task_count: int
    revenue: float
    #: Distance driven with a customer on board.
    service_km: float
    #: Empty distance: to the first pickup, between drop-offs and pickups, and
    #: from the last drop-off home (minus the commute the driver would have
    #: driven anyway is *not* subtracted here — this is raw odometer reading).
    empty_km: float
    #: Time spent serving customers, as a fraction of the working window.
    utilization: float

    @property
    def total_km(self) -> float:
        return self.service_km + self.empty_km

    @property
    def empty_ratio(self) -> float:
        """Fraction of driven kilometres without a customer (deadheading)."""
        if self.total_km <= 0:
            return 0.0
        return self.empty_km / self.total_km


@dataclass(frozen=True)
class FleetStats:
    """Fleet-wide distributional statistics of an assignment."""

    workloads: Tuple[DriverWorkload, ...]
    gini_revenue: float
    active_fraction: float
    mean_utilization: float
    mean_empty_ratio: float
    total_service_km: float
    total_empty_km: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "drivers": float(len(self.workloads)),
            "active_fraction": self.active_fraction,
            "gini_revenue": self.gini_revenue,
            "mean_utilization": self.mean_utilization,
            "mean_empty_ratio": self.mean_empty_ratio,
            "total_service_km": self.total_service_km,
            "total_empty_km": self.total_empty_km,
        }

    def workload_for(self, driver_id: str) -> DriverWorkload:
        for workload in self.workloads:
            if workload.driver_id == driver_id:
                return workload
        raise KeyError(f"no workload for driver {driver_id!r}")


def gini_coefficient(values: Sequence[float]) -> float:
    """The Gini coefficient of a non-negative sample (0 = equal, 1 = maximal).

    Uses the standard mean-absolute-difference formulation; an empty or
    all-zero sample has coefficient 0 by convention.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0
    if (data < 0).any():
        raise ValueError("Gini coefficient requires non-negative values")
    total = data.sum()
    if total <= 0:
        return 0.0
    data = np.sort(data)
    index = np.arange(1, data.size + 1)
    return float((2.0 * (index * data).sum() - (data.size + 1) * total) / (data.size * total))


def driver_workload(
    instance: MarketInstance, driver_id: str, task_indices: Sequence[int]
) -> DriverWorkload:
    """Compute one driver's workload for an assigned task list.

    The legs are priced with the instance's cost model from the actual
    pickup/drop-off coordinates, so the function works for any task sequence
    (including online chains that are not task-map arcs).
    """
    driver = instance.task_map(driver_id).driver
    cost_model = instance.cost_model
    travel_model = cost_model.travel_model
    network = instance.task_network

    revenue = 0.0
    service_km = 0.0
    empty_km = 0.0
    busy_s = 0.0
    location = driver.source
    for m in task_indices:
        task = instance.tasks[m]
        approach_km = travel_model.distance_km(location, task.source)
        empty_km += approach_km
        service_km += cost_model.task_distance_km(task)
        busy_s += float(network.durations_s[m]) + travel_model.time_for_distance_s(approach_km)
        revenue += task.price
        location = task.destination
    if task_indices:
        home_km = travel_model.distance_km(location, driver.destination)
        empty_km += home_km
        busy_s += travel_model.time_for_distance_s(home_km)

    window = max(1e-9, driver.working_duration_s)
    return DriverWorkload(
        driver_id=driver_id,
        task_count=len(task_indices),
        revenue=revenue,
        service_km=service_km,
        empty_km=empty_km,
        utilization=min(1.0, busy_s / window),
    )


def fleet_stats(
    instance: MarketInstance, assignment: Mapping[str, Sequence[int]]
) -> FleetStats:
    """Fleet-wide statistics for a ``driver_id -> task list`` assignment.

    Drivers absent from the mapping are included as idle (zero workload), so
    the active fraction and the Gini coefficient describe the whole fleet.
    """
    workloads: List[DriverWorkload] = []
    for driver in instance.drivers:
        workloads.append(
            driver_workload(instance, driver.driver_id, assignment.get(driver.driver_id, ()))
        )
    revenues = [w.revenue for w in workloads]
    active = [w for w in workloads if w.task_count > 0]
    return FleetStats(
        workloads=tuple(workloads),
        gini_revenue=gini_coefficient(revenues),
        active_fraction=(len(active) / len(workloads)) if workloads else 0.0,
        mean_utilization=(
            float(np.mean([w.utilization for w in active])) if active else 0.0
        ),
        mean_empty_ratio=(
            float(np.mean([w.empty_ratio for w in active])) if active else 0.0
        ),
        total_service_km=float(sum(w.service_km for w in workloads)),
        total_empty_km=float(sum(w.empty_km for w in workloads)),
    )
