"""Ablation experiments on the framework's design choices.

Two ablations beyond the paper's own figures:

* **Surge multiplier** — the paper argues (Section VI-C) that surge pricing
  is a lever for controlling market congestion.  This ablation sweeps the
  static multiplier of Eq. (15) and reports how drivers' profit, the serve
  rate and revenue per driver respond.
* **Spatial partitioning** — the introduction argues that the market cannot
  be partitioned below city scale without losing cross-district trips.  This
  ablation shards the same instance into 1x1, 2x2, 3x3, ... zone grids and
  reports how much objective value is lost and how much wall-clock is gained.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import format_table
from ..distributed.coordinator import DistributedCoordinator
from ..distributed.partition import SpatialPartitioner
from ..distributed.pool import PersistentWorkerPool
from ..market.instance import MarketInstance, tasks_from_trips
from ..offline.greedy import greedy_assignment
from ..trace.drivers import WorkingModel
from .config import ExperimentConfig, ExperimentScale, Workload, build_workload


# ----------------------------------------------------------------------
# surge-multiplier ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SurgePoint:
    """Metrics at one surge-multiplier setting."""

    multiplier: float
    total_profit: float
    serve_rate: float
    revenue_per_driver: float


@dataclass(frozen=True)
class SurgeAblationResult:
    points: Tuple[SurgePoint, ...]

    def render(self) -> str:
        rows = [
            [p.multiplier, p.total_profit, p.serve_rate, p.revenue_per_driver]
            for p in self.points
        ]
        return "Surge-multiplier ablation (greedy assignment)\n" + format_table(
            ["alpha", "total_profit", "serve_rate", "revenue_per_driver"], rows
        )


def run_surge_ablation(
    multipliers: Sequence[float] = (1.0, 1.2, 1.5, 2.0, 2.5),
    driver_count: Optional[int] = None,
    config: Optional[ExperimentConfig] = None,
) -> SurgeAblationResult:
    """Re-price the same day of trips at different surge multipliers and solve
    each market with the greedy algorithm."""
    cfg = config or ExperimentConfig()
    workload = build_workload(cfg)
    count = driver_count if driver_count is not None else cfg.scale.driver_counts[-1]
    base = workload.instance_with_drivers(count)

    points: List[SurgePoint] = []
    for alpha in multipliers:
        if alpha <= 0:
            raise ValueError("surge multipliers must be positive")
        repriced_cfg = ExperimentConfig(
            scale=cfg.scale,
            working_model=cfg.working_model,
            bounding_box=cfg.bounding_box,
            surge_multiplier=alpha,
            trace_seed=cfg.trace_seed,
            driver_seed=cfg.driver_seed,
        )
        tasks = tasks_from_trips(workload.trips, pricing=repriced_cfg.pricing_policy())
        instance = base.with_tasks(tasks)
        solution = greedy_assignment(instance)
        points.append(
            SurgePoint(
                multiplier=alpha,
                total_profit=solution.total_value,
                serve_rate=solution.serve_rate,
                revenue_per_driver=solution.revenue_per_driver(),
            )
        )
    return SurgeAblationResult(points=tuple(points))


# ----------------------------------------------------------------------
# spatial-partitioning ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PartitionPoint:
    """Metrics at one shard-grid setting."""

    shard_grid: Tuple[int, int]
    shard_count: int
    total_profit: float
    served_count: int
    wall_clock_s: float
    value_retention: float


@dataclass(frozen=True)
class PartitionAblationResult:
    baseline_profit: float
    points: Tuple[PartitionPoint, ...]
    #: ``"greedy"`` (offline re-solve per shard) or ``"stream"`` (live
    #: windowed dispatch through the persistent shard pool).
    mode: str = "greedy"

    def render(self) -> str:
        rows = [
            [
                f"{p.shard_grid[0]}x{p.shard_grid[1]}",
                p.shard_count,
                p.total_profit,
                p.served_count,
                p.wall_clock_s,
                p.value_retention,
            ]
            for p in self.points
        ]
        baseline_label = (
            "unsharded greedy" if self.mode == "greedy" else "unsharded batched stream"
        )
        return (
            f"Partitioning ablation ({self.mode} mode, baseline {baseline_label} "
            f"profit = {self.baseline_profit:.2f})\n"
            + format_table(
                ["grid", "shards", "profit", "served", "wall_clock_s", "retention"], rows
            )
        )


def run_partition_ablation(
    grids: Sequence[Tuple[int, int]] = ((1, 1), (2, 2), (3, 3), (4, 4)),
    driver_count: Optional[int] = None,
    config: Optional[ExperimentConfig] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    stream: bool = False,
    window_s: float = 60.0,
    pool: Optional[PersistentWorkerPool] = None,
) -> PartitionAblationResult:
    """Solve the same market with increasingly fine spatial shards.

    ``executor`` selects the coordinator's fan-out policy (``"serial"``,
    ``"thread"`` or ``"process"``); the merged solutions are identical across
    policies, only ``wall_clock_s`` changes.  With ``stream=True`` each grid
    point consumes the day as a *live* order stream through per-shard
    streaming sessions on the persistent worker pool (``solve_stream``)
    instead of an offline greedy re-solve — the streaming twin of the same
    sharding trade-off, with ``window_s`` dispatch windows.

    Every grid point — offline *and* streamed — runs on **one** warm
    :class:`~repro.distributed.pool.PersistentWorkerPool` held across the
    whole sweep, so worker startup is paid once per ablation rather than
    once per grid.  Pass ``pool=`` to share an even longer-lived pool (the
    CLI's ``experiment`` command does, across every figure it runs); the
    ablation only closes a pool it created itself.
    """
    cfg = config or ExperimentConfig()
    workload = build_workload(cfg)
    count = driver_count if driver_count is not None else cfg.scale.driver_counts[-1]
    instance = workload.instance_with_drivers(count)

    if stream:
        from ..online.batch import BatchConfig, run_batched

        batch_config = BatchConfig(window_s=window_s)
        baseline = run_batched(instance, config=batch_config).total_value
    else:
        batch_config = None
        baseline = greedy_assignment(instance).total_value

    owns_pool = pool is None
    if owns_pool:
        pool = PersistentWorkerPool(executor=executor, worker_count=max_workers)
    points: List[PartitionPoint] = []
    try:
        for rows, cols in grids:
            coordinator = DistributedCoordinator(
                SpatialPartitioner(cfg.bounding_box, rows, cols),
                solver_name="greedy",
                executor=executor,
                max_workers=max_workers,
            )
            start = time.perf_counter()
            if stream:
                streamed = coordinator.solve_stream(
                    instance, config=batch_config, pool=pool
                )
                solution = streamed.solution
            else:
                solution = coordinator.solve(instance, pool=pool).solution
            elapsed = time.perf_counter() - start
            retention = solution.total_value / baseline if baseline > 0 else 1.0
            points.append(
                PartitionPoint(
                    shard_grid=(rows, cols),
                    shard_count=rows * cols,
                    total_profit=solution.total_value,
                    served_count=solution.served_count,
                    wall_clock_s=elapsed,
                    value_retention=retention,
                )
            )
    finally:
        if owns_pool:
            pool.close()
    return PartitionAblationResult(
        baseline_profit=baseline,
        points=tuple(points),
        mode="stream" if stream else "greedy",
    )
