"""Shared configuration and workload construction for the experiments.

Every figure of the paper's evaluation (Section VI) runs on the same
workload recipe: trips from one day of the Porto trace become tasks (priced
by the simplified surge fare of Eq. 15), driver travel plans are Monte-Carlo
generated in either the "hitchhiking" or the "home-work-home" working model,
and the driver count is swept while the task set stays fixed.  This module
centralises that recipe so that the per-figure experiment modules and the
benchmark harnesses stay small and consistent.

Two scales are provided:

* :data:`PAPER_SCALE` — the paper's own numbers (1000 tasks, 20-300 drivers).
* :data:`DEFAULT_SCALE` — a laptop-friendly reduction (250 tasks, 20-140
  drivers) that keeps every qualitative shape but runs the whole suite,
  including the LP bounds, in seconds to minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..geo import PORTO, BoundingBox
from ..market.instance import MarketInstance, tasks_from_trips
from ..pricing import FareSchedule, LinearPricing, PricingPolicy
from ..trace.cleaning import CleaningConfig, clean_trips, first_n_by_time
from ..trace.drivers import DriverGenerationConfig, DriverScheduleGenerator, WorkingModel
from ..trace.records import TripRecord
from ..trace.synthetic import PortoLikeTraceGenerator, TraceConfig


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """How big the swept workload is."""

    task_count: int
    driver_counts: Tuple[int, ...]
    trips_generated: int

    def __post_init__(self) -> None:
        if self.task_count < 1:
            raise ValueError("task_count must be >= 1")
        if not self.driver_counts:
            raise ValueError("driver_counts must not be empty")
        if any(c < 1 for c in self.driver_counts):
            raise ValueError("driver counts must be >= 1")
        if self.trips_generated < self.task_count:
            raise ValueError("trips_generated must be at least task_count")

    @property
    def max_drivers(self) -> int:
        return max(self.driver_counts)


#: The paper's own scale: 1000 tasks from one day, drivers swept 20 -> 300
#: (a 2% - 30% driver/task ratio).
PAPER_SCALE = ExperimentScale(
    task_count=1000,
    driver_counts=(20, 60, 100, 140, 180, 220, 260, 300),
    trips_generated=5000,
)

#: Reduced scale used by the default benchmark harness; the driver/task ratio
#: sweeps the same 2% - 30% range as the paper.
DEFAULT_SCALE = ExperimentScale(
    task_count=250,
    driver_counts=(5, 15, 30, 45, 60, 75),
    trips_generated=2500,
)

#: Tiny scale for unit/integration tests.
TINY_SCALE = ExperimentScale(
    task_count=40,
    driver_counts=(2, 6, 12),
    trips_generated=400,
)


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Full description of one experiment workload."""

    scale: ExperimentScale = DEFAULT_SCALE
    working_model: WorkingModel = WorkingModel.HITCHHIKING
    bounding_box: BoundingBox = PORTO
    surge_multiplier: float = 1.2
    trace_seed: int = 2017
    driver_seed: int = 7

    def pricing_policy(self) -> PricingPolicy:
        """Eq. (15) with the configured (static) surge multiplier."""
        return LinearPricing(schedule=FareSchedule(), alpha=self.surge_multiplier)


@dataclass(frozen=True)
class Workload:
    """A built workload: the day's trips, the priced tasks and the driver pool."""

    config: ExperimentConfig
    trips: Tuple[TripRecord, ...]
    base_instance: MarketInstance
    driver_pool: Tuple

    def instance_with_drivers(self, driver_count: int) -> MarketInstance:
        """The sweep instance for a given driver count (a prefix of the pool,
        so larger markets strictly contain smaller ones)."""
        if driver_count < 1 or driver_count > len(self.driver_pool):
            raise ValueError(
                f"driver_count must be in [1, {len(self.driver_pool)}], got {driver_count}"
            )
        # Materialise the shared task network on the base instance first so
        # every sweep point reuses it instead of rebuilding the O(M^2) arcs.
        self.base_instance.task_network
        return self.base_instance.with_drivers(self.driver_pool[:driver_count])

    @property
    def task_count(self) -> int:
        return self.base_instance.task_count


def build_day_trips(config: ExperimentConfig) -> List[TripRecord]:
    """Generate and clean one synthetic day of trips for ``config``."""
    generator = PortoLikeTraceGenerator(
        TraceConfig(bounding_box=config.bounding_box, seed=config.trace_seed)
    )
    raw = generator.generate_day(0, trip_count=config.scale.trips_generated)
    cleaned, _report = clean_trips(raw, CleaningConfig(bounding_box=config.bounding_box))
    return first_n_by_time(cleaned, config.scale.task_count)


def build_workload(config: Optional[ExperimentConfig] = None) -> Workload:
    """Build the standard sweep workload for a configuration."""
    cfg = config or ExperimentConfig()
    trips = build_day_trips(cfg)
    tasks = tasks_from_trips(trips, pricing=cfg.pricing_policy())
    driver_generator = DriverScheduleGenerator(
        DriverGenerationConfig(
            bounding_box=cfg.bounding_box,
            working_model=cfg.working_model,
            seed=cfg.driver_seed,
        )
    )
    driver_pool = tuple(
        driver_generator.generate_from_trips(trips, count=cfg.scale.max_drivers)
    )
    base_instance = MarketInstance.create(drivers=driver_pool, tasks=tasks)
    return Workload(
        config=cfg,
        trips=tuple(trips),
        base_instance=base_instance,
        driver_pool=driver_pool,
    )
