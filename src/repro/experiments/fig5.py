"""Figure 5 — performance ratios of the three algorithms vs. the upper bound.

For each driver count the three algorithms run on the same instance, their
drivers'-total-profit is compared against the LP-relaxation upper bound
``Z*_f`` (or, optionally, the exact optimum or the Lagrangian bound), and the
ratio series are reported for both working models:

* left plot  — the "hitchhiking" model (random driver source/destination);
* right plot — the "home-work-home" model (source == destination).

The expected shape, per the paper: Greedy achieves the best (lowest) ratio,
maxMargin is second, Nearest is worst, and the hitchhiking model achieves
better ratios than home-work-home.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.ratio import BoundKind, PerformanceRatio, compute_upper_bound
from ..analysis.reporting import format_series_table
from ..trace.drivers import WorkingModel
from .algorithms import ALGORITHM_NAMES, standard_algorithms
from .config import ExperimentConfig, ExperimentScale, Workload, build_workload


@dataclass(frozen=True)
class Fig5Point:
    """All measurements for one driver count."""

    driver_count: int
    upper_bound: float
    achieved: Dict[str, float]
    ratios: Dict[str, float]
    efficiencies: Dict[str, float]


@dataclass(frozen=True)
class Fig5Result:
    """One curve bundle (one working model, i.e. one half of Fig. 5)."""

    working_model: WorkingModel
    bound_kind: BoundKind
    points: Tuple[Fig5Point, ...]

    @property
    def driver_counts(self) -> Tuple[int, ...]:
        return tuple(p.driver_count for p in self.points)

    def ratio_series(self, algorithm: str) -> Tuple[float, ...]:
        return tuple(p.ratios[algorithm] for p in self.points)

    def efficiency_series(self, algorithm: str) -> Tuple[float, ...]:
        return tuple(p.efficiencies[algorithm] for p in self.points)

    def mean_efficiency(self, algorithm: str) -> float:
        values = self.efficiency_series(algorithm)
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        series = {name: self.ratio_series(name) for name in ALGORITHM_NAMES}
        table = format_series_table("drivers", list(self.driver_counts), series)
        return (
            f"Fig. 5 ({self.working_model.value} model, bound = {self.bound_kind.value}); "
            "performance ratio = upper bound / achieved profit (lower is better)\n" + table
        )


def run_fig5(
    working_model: WorkingModel = WorkingModel.HITCHHIKING,
    scale: Optional[ExperimentScale] = None,
    bound_kind: BoundKind = BoundKind.LP_RELAXATION,
    config: Optional[ExperimentConfig] = None,
    workload: Optional[Workload] = None,
) -> Fig5Result:
    """Run one half of Fig. 5.

    Either pass a pre-built ``workload`` (its config wins) or let this build
    one from ``config`` / ``scale`` / ``working_model``.
    """
    if workload is None:
        cfg = config or ExperimentConfig(
            scale=scale if scale is not None else ExperimentConfig().scale,
            working_model=working_model,
        )
        workload = build_workload(cfg)
    else:
        cfg = workload.config
    points: List[Fig5Point] = []
    for driver_count in cfg.scale.driver_counts:
        instance = workload.instance_with_drivers(driver_count)
        bound = compute_upper_bound(instance, bound_kind=bound_kind)
        achieved: Dict[str, float] = {}
        for spec in standard_algorithms():
            achieved[spec.name] = spec.run(instance).total_value
        ratios = {
            name: PerformanceRatio(name, value, bound, bound_kind).ratio
            for name, value in achieved.items()
        }
        efficiencies = {
            name: PerformanceRatio(name, value, bound, bound_kind).efficiency
            for name, value in achieved.items()
        }
        points.append(
            Fig5Point(
                driver_count=driver_count,
                upper_bound=bound,
                achieved=achieved,
                ratios=ratios,
                efficiencies=efficiencies,
            )
        )
    return Fig5Result(
        working_model=cfg.working_model, bound_kind=bound_kind, points=tuple(points)
    )


def run_fig5_both_models(
    scale: Optional[ExperimentScale] = None,
    bound_kind: BoundKind = BoundKind.LP_RELAXATION,
) -> Dict[str, Fig5Result]:
    """Both halves of Fig. 5 (hitchhiking and home-work-home)."""
    return {
        WorkingModel.HITCHHIKING.value: run_fig5(
            WorkingModel.HITCHHIKING, scale=scale, bound_kind=bound_kind
        ),
        WorkingModel.HOME_WORK_HOME.value: run_fig5(
            WorkingModel.HOME_WORK_HOME, scale=scale, bound_kind=bound_kind
        ),
    }
