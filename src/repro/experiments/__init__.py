"""Experiments reproducing every table and figure of the paper's evaluation."""

from .algorithms import (
    ALGORITHM_NAMES,
    GREEDY,
    MAX_MARGIN,
    NEAREST,
    AlgorithmSpec,
    run_all,
    standard_algorithms,
)
from .config import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    TINY_SCALE,
    ExperimentConfig,
    ExperimentScale,
    Workload,
    build_day_trips,
    build_workload,
)
from .fig3_4 import DistributionExperimentResult, run_distribution_experiment
from .fig5 import Fig5Point, Fig5Result, run_fig5, run_fig5_both_models
from .fig6_9 import FIGURE_METRICS, MarketInsightResult, run_market_insight_sweep
from .ablation import (
    PartitionAblationResult,
    SurgeAblationResult,
    run_partition_ablation,
    run_surge_ablation,
)
from .runner import FullRunResult, run_everything

__all__ = [
    "ALGORITHM_NAMES",
    "GREEDY",
    "MAX_MARGIN",
    "NEAREST",
    "AlgorithmSpec",
    "standard_algorithms",
    "run_all",
    "ExperimentScale",
    "ExperimentConfig",
    "Workload",
    "build_workload",
    "build_day_trips",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "TINY_SCALE",
    "DistributionExperimentResult",
    "run_distribution_experiment",
    "Fig5Point",
    "Fig5Result",
    "run_fig5",
    "run_fig5_both_models",
    "FIGURE_METRICS",
    "MarketInsightResult",
    "run_market_insight_sweep",
    "SurgeAblationResult",
    "run_surge_ablation",
    "PartitionAblationResult",
    "run_partition_ablation",
    "FullRunResult",
    "run_everything",
]
