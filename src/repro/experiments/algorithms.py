"""The algorithm roster used by every experiment.

The evaluation compares three algorithms throughout (Figs. 5-9): the offline
greedy (Algorithm 1), the online maximum-marginal-value heuristic
(Algorithm 4) and the online nearest-driver heuristic (Algorithm 3).  This
module gives them their canonical names and a single ``run`` entry point that
returns objects sharing the common metric vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from ..core.solution import MarketSolution
from ..market.instance import MarketInstance
from ..offline.greedy import greedy_assignment
from ..online.dispatchers import MaxMarginDispatcher, NearestDispatcher
from ..online.outcome import OnlineOutcome
from ..online.simulator import OnlineSimulator

AlgorithmResult = Union[MarketSolution, OnlineOutcome]

#: Canonical algorithm names used in every table and figure.
GREEDY = "Greedy"
MAX_MARGIN = "maxMargin"
NEAREST = "Nearest"

ALGORITHM_NAMES: Tuple[str, ...] = (GREEDY, MAX_MARGIN, NEAREST)


@dataclass(frozen=True, slots=True)
class AlgorithmSpec:
    """Name plus the callable that runs the algorithm on an instance."""

    name: str
    run: Callable[[MarketInstance], AlgorithmResult]


def _run_greedy(instance: MarketInstance) -> MarketSolution:
    return greedy_assignment(instance)


def _run_max_margin(instance: MarketInstance) -> OnlineOutcome:
    return OnlineSimulator(instance, MaxMarginDispatcher()).run()


def _run_nearest(instance: MarketInstance) -> OnlineOutcome:
    return OnlineSimulator(instance, NearestDispatcher(seed=13)).run()


def standard_algorithms() -> Tuple[AlgorithmSpec, ...]:
    """The three algorithms the paper plots, in plot order."""
    return (
        AlgorithmSpec(GREEDY, _run_greedy),
        AlgorithmSpec(MAX_MARGIN, _run_max_margin),
        AlgorithmSpec(NEAREST, _run_nearest),
    )


def run_all(instance: MarketInstance) -> Dict[str, AlgorithmResult]:
    """Run every standard algorithm on the same instance."""
    return {spec.name: spec.run(instance) for spec in standard_algorithms()}
