"""Figures 6-9 — market-density insights.

The paper sweeps the driver count on the "hitchhiking" workload and plots,
for each algorithm:

* Fig. 6 — total revenue generated in the market (grows with density);
* Fig. 7 — probability that a pending order is served (grows with density);
* Fig. 8 — average revenue per driver (declines: congestion);
* Fig. 9 — average tasks served per driver (declines: congestion).

One sweep produces all four figures; the per-figure benchmarks just select a
different metric column from the same result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.metrics import MarketMetrics, SweepSeries, series_from_metrics
from ..analysis.reporting import format_series_table
from ..trace.drivers import WorkingModel
from .algorithms import ALGORITHM_NAMES, standard_algorithms
from .config import ExperimentConfig, ExperimentScale, Workload, build_workload

#: metric column -> figure number in the paper.
FIGURE_METRICS: Dict[str, str] = {
    "total_revenue": "Fig. 6",
    "serve_rate": "Fig. 7",
    "revenue_per_driver": "Fig. 8",
    "tasks_per_driver": "Fig. 9",
}


@dataclass(frozen=True)
class MarketInsightResult:
    """All measurements of the Figs. 6-9 sweep."""

    working_model: WorkingModel
    driver_counts: Tuple[int, ...]
    measurements: Tuple[MarketMetrics, ...]

    def series(self, algorithm: str, metric: str) -> SweepSeries:
        return series_from_metrics(list(self.measurements), algorithm, metric)

    def figure_series(self, metric: str) -> Dict[str, Tuple[float, ...]]:
        """One curve per algorithm for a given metric column."""
        return {
            name: self.series(name, metric).values for name in ALGORITHM_NAMES
        }

    def render(self, metric: str) -> str:
        figure = FIGURE_METRICS.get(metric, metric)
        table = format_series_table(
            "drivers", list(self.driver_counts), self.figure_series(metric)
        )
        return f"{figure} - {metric} vs. number of drivers ({self.working_model.value})\n{table}"

    def render_all(self) -> str:
        return "\n\n".join(self.render(metric) for metric in FIGURE_METRICS)


def run_market_insight_sweep(
    scale: Optional[ExperimentScale] = None,
    working_model: WorkingModel = WorkingModel.HITCHHIKING,
    config: Optional[ExperimentConfig] = None,
    workload: Optional[Workload] = None,
) -> MarketInsightResult:
    """Run the Figs. 6-9 driver-count sweep."""
    if workload is None:
        cfg = config or ExperimentConfig(
            scale=scale if scale is not None else ExperimentConfig().scale,
            working_model=working_model,
        )
        workload = build_workload(cfg)
    else:
        cfg = workload.config

    measurements: List[MarketMetrics] = []
    for driver_count in cfg.scale.driver_counts:
        instance = workload.instance_with_drivers(driver_count)
        for spec in standard_algorithms():
            result = spec.run(instance)
            measurements.append(
                MarketMetrics.from_solution(
                    algorithm=spec.name,
                    driver_count=driver_count,
                    task_count=instance.task_count,
                    solution=result,
                )
            )
    return MarketInsightResult(
        working_model=cfg.working_model,
        driver_counts=tuple(cfg.scale.driver_counts),
        measurements=tuple(measurements),
    )
