"""One-call runner that regenerates every table and figure of the paper.

``python -m repro.experiments.runner`` (or :func:`run_everything`) executes
the Fig. 3/4 distribution analysis, both halves of Fig. 5, the Figs. 6-9
market-insight sweep and the two ablations, printing each as a text table.
The benchmark harnesses in ``benchmarks/`` call the same experiment modules
one figure at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..analysis.ratio import BoundKind
from ..distributed.pool import PersistentWorkerPool
from ..scenarios.suite import ScenarioSuiteResult, run_scenario_suite
from ..trace.drivers import WorkingModel
from .ablation import PartitionAblationResult, SurgeAblationResult, run_partition_ablation, run_surge_ablation
from .config import DEFAULT_SCALE, ExperimentConfig, ExperimentScale
from .fig3_4 import DistributionExperimentResult, run_distribution_experiment
from .fig5 import Fig5Result, run_fig5
from .fig6_9 import MarketInsightResult, run_market_insight_sweep


@dataclass(frozen=True)
class FullRunResult:
    """Everything the runner produced, ready to render or inspect."""

    distributions: DistributionExperimentResult
    fig5_hitchhiking: Fig5Result
    fig5_home_work_home: Fig5Result
    market_insights: MarketInsightResult
    surge_ablation: SurgeAblationResult
    partition_ablation: PartitionAblationResult
    #: Scenario-suite comparison, present when the run was asked for one
    #: (``run_everything(scenarios=...)``).
    scenario_suite: Optional[ScenarioSuiteResult] = None

    def render(self) -> str:
        sections = [
            self.distributions.render(),
            self.fig5_hitchhiking.render(),
            self.fig5_home_work_home.render(),
            self.market_insights.render_all(),
            self.surge_ablation.render(),
            self.partition_ablation.render(),
        ]
        if self.scenario_suite is not None:
            sections.append(self.scenario_suite.render())
        divider = "\n" + "=" * 72 + "\n"
        return divider.join(sections)


def run_everything(
    scale: Optional[ExperimentScale] = None,
    bound_kind: BoundKind = BoundKind.LP_RELAXATION,
    partition_executor: str = "serial",
    stream: bool = False,
    pool: Optional[PersistentWorkerPool] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> FullRunResult:
    """Run every experiment at the given scale (default: the reduced scale).

    ``partition_executor`` selects the distributed coordinator's fan-out for
    the partitioning ablation (``"process"`` uses every core on city-scale
    runs; the merged solutions are executor-independent).  ``stream=True``
    runs that ablation in live streaming mode — per-shard streaming sessions
    on the persistent worker pool instead of offline greedy re-solves — so
    the executor and streaming knobs can be swept together from the CLI.

    ``pool`` optionally supplies one warm
    :class:`~repro.distributed.pool.PersistentWorkerPool` for every
    distributed solve in the run (the CLI's ``experiment`` command holds one
    across the whole invocation); without it the partitioning ablation still
    warms its own pool for the duration of its grid sweep.

    ``scenarios`` appends a scenario-suite comparison over exactly the
    named built-in scenarios (see :mod:`repro.scenarios`) to the run,
    sharing the same warm pool when one is supplied; ``None`` (default)
    skips the suite, and an empty sequence yields an empty suite rather
    than silently running the whole library.
    """
    chosen_scale = scale or DEFAULT_SCALE
    hitch_cfg = ExperimentConfig(scale=chosen_scale, working_model=WorkingModel.HITCHHIKING)
    hwh_cfg = ExperimentConfig(scale=chosen_scale, working_model=WorkingModel.HOME_WORK_HOME)

    scenario_suite = None
    if scenarios is not None:
        scenario_suite = run_scenario_suite(
            list(scenarios), executor=partition_executor, pool=pool
        )
    return FullRunResult(
        distributions=run_distribution_experiment(hitch_cfg),
        fig5_hitchhiking=run_fig5(config=hitch_cfg, bound_kind=bound_kind),
        fig5_home_work_home=run_fig5(config=hwh_cfg, bound_kind=bound_kind),
        market_insights=run_market_insight_sweep(config=hitch_cfg),
        surge_ablation=run_surge_ablation(config=hitch_cfg),
        partition_ablation=run_partition_ablation(
            config=hitch_cfg, executor=partition_executor, stream=stream, pool=pool
        ),
        scenario_suite=scenario_suite,
    )


def main() -> None:
    print(run_everything().render())


if __name__ == "__main__":
    main()
