"""Figures 3 and 4 — travel-time and travel-distance distributions.

The paper plots the marginals of the (cleaned) Porto trace and notes that
both follow a power-law-like heavy-tailed shape.  This experiment generates
the synthetic trace through the same cleaning pipeline and summarises both
marginals, which is what the Fig. 3 / Fig. 4 benchmarks assert on and print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.distributions import (
    DistributionSummary,
    travel_distance_summary,
    travel_time_summary,
)
from ..analysis.reporting import format_metric_dict
from .config import ExperimentConfig, build_day_trips


@dataclass(frozen=True)
class DistributionExperimentResult:
    """The two summaries, plus the trip count they were computed from."""

    travel_time: DistributionSummary
    travel_distance: DistributionSummary
    trip_count: int

    def render(self) -> str:
        lines = [
            f"trips analysed: {self.trip_count}",
            "",
            "Fig. 3 - travel time (minutes)",
            format_metric_dict(self.travel_time.as_dict()),
            "",
            "Fig. 4 - travel distance (km)",
            format_metric_dict(self.travel_distance.as_dict()),
        ]
        return "\n".join(lines)


def run_distribution_experiment(
    config: Optional[ExperimentConfig] = None,
) -> DistributionExperimentResult:
    """Run the Fig. 3 / Fig. 4 analysis on the synthetic day trace."""
    cfg = config or ExperimentConfig()
    trips = build_day_trips(cfg)
    return DistributionExperimentResult(
        travel_time=travel_time_summary(trips),
        travel_distance=travel_distance_summary(trips),
        trip_count=len(trips),
    )
