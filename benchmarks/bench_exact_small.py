"""Section VI-B small-scale check — exact optimum Z* as the upper bound.

The paper uses CPLEX/MOSEK to compute the exact integer optimum for small
instances (n <= 50, m <= 100) and measures the algorithms against it.  This
benchmark reproduces that check with the open-source HiGHS MILP solver: on a
small instance the greedy, maxMargin and Nearest values are compared against
Z*, and the LP relaxation Z*_f is verified to sit above Z*.
"""

import pytest

from repro.analysis import format_table
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload, run_all
from repro.offline import exact_optimum, lp_relaxation_bound
from repro.trace import WorkingModel

SMALL_SCALE = ExperimentScale(task_count=60, driver_counts=(12,), trips_generated=600)


@pytest.fixture(scope="module")
def small_instance():
    workload = build_workload(
        ExperimentConfig(scale=SMALL_SCALE, working_model=WorkingModel.HITCHHIKING)
    )
    return workload.instance_with_drivers(12)


@pytest.mark.benchmark(group="exact")
def test_exact_small_scale_check(benchmark, small_instance, save_table):
    exact = benchmark.pedantic(exact_optimum, args=(small_instance,), rounds=1, iterations=1)
    lp = lp_relaxation_bound(small_instance).upper_bound
    achieved = {name: result.total_value for name, result in run_all(small_instance).items()}

    rows = [["Z* (exact)", exact.optimum], ["Z*_f (LP relaxation)", lp]]
    rows += [[f"{name}", value] for name, value in achieved.items()]
    rows += [
        [f"ratio Z*/{name}", exact.optimum / value if value > 0 else float("inf")]
        for name, value in achieved.items()
    ]
    save_table(
        "exact_small_scale",
        "Small-scale exact check (n=12 drivers, m=60 tasks)\n"
        + format_table(["quantity", "value"], rows),
    )
    benchmark.extra_info["exact_optimum"] = exact.optimum
    benchmark.extra_info["lp_bound"] = lp

    exact.solution.validate()
    # Bound ordering: every algorithm <= Z* <= Z*_f.
    assert lp >= exact.optimum - 1e-6
    for value in achieved.values():
        assert value <= exact.optimum + 1e-6
    # The greedy algorithm recovers most of the optimum on small instances.
    assert achieved["Greedy"] >= 0.75 * exact.optimum
