"""Theorem 1 / Figure 2 — tightness of the 1/(D+1) approximation ratio.

The paper constructs an adversarial instance on which the greedy algorithm
achieves exactly 1/((D+1)(1-eps)) of the optimum.  This benchmark builds the
geometric realisation of that construction for several chain lengths D and
reports greedy, optimum, the achieved ratio and the theoretical bound —
the achieved ratio must approach the bound from above as D grows.
"""

import pytest

from repro.analysis import format_table
from repro.offline import build_tight_example, exact_optimum, greedy_assignment

CHAIN_LENGTHS = (2, 4, 6, 8)
EPSILON = 0.03


def run_tightness_sweep():
    rows = []
    for depth in CHAIN_LENGTHS:
        example = build_tight_example(chain_length=depth, epsilon=EPSILON)
        greedy = greedy_assignment(example.instance).total_value
        optimum = exact_optimum(example.instance).optimum
        rows.append(
            {
                "D": depth,
                "greedy": greedy,
                "optimum": optimum,
                "achieved_ratio": greedy / optimum,
                "bound": example.theoretical_bound,
            }
        )
    return rows


@pytest.mark.benchmark(group="theory")
def test_theorem1_tightness(benchmark, save_table):
    rows = benchmark.pedantic(run_tightness_sweep, rounds=1, iterations=1)
    table = format_table(
        ["D", "greedy", "optimum", "achieved_ratio", "1/(D+1)"],
        [[r["D"], r["greedy"], r["optimum"], r["achieved_ratio"], r["bound"]] for r in rows],
    )
    save_table("theorem1_tightness", "Theorem 1 tightness (Fig. 2 construction)\n" + table)

    for row in rows:
        benchmark.extra_info[f"ratio_D{row['D']}"] = row["achieved_ratio"]
        # Theorem 1 lower bound always holds...
        assert row["achieved_ratio"] >= row["bound"] - 1e-9
        # ...and the adversarial construction pins greedy close to it.
        assert row["achieved_ratio"] <= row["bound"] + 0.12

    # The achieved ratio degrades as the chain length grows (the bound is
    # asymptotically tight).
    ratios = [r["achieved_ratio"] for r in rows]
    assert all(later < earlier for earlier, later in zip(ratios, ratios[1:]))
