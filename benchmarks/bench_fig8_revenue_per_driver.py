"""Figure 8 — average revenue per driver vs. number of drivers.

Paper shape: as the market gets denser the competition between drivers grows
and the average payoff received by each driver declines (market congestion).
"""

import pytest

from repro.experiments import ALGORITHM_NAMES, run_market_insight_sweep


@pytest.mark.benchmark(group="fig6-9")
def test_fig8_revenue_per_driver(benchmark, hitchhiking_workload, save_table):
    result = benchmark.pedantic(
        run_market_insight_sweep, kwargs={"workload": hitchhiking_workload}, rounds=1, iterations=1
    )
    save_table("fig8_revenue_per_driver", result.render("revenue_per_driver"))

    for name in ALGORITHM_NAMES:
        series = result.series(name, "revenue_per_driver")
        benchmark.extra_info[f"revenue_per_driver_{name}_max_drivers"] = series.values[-1]
        # Congestion: per-driver revenue declines from the sparsest to the
        # densest market.
        assert series.trend() < 0.0
        assert series.values[-1] < series.values[0]
        assert all(v >= 0.0 for v in series.values)
