"""Shard-level streaming benchmark — persistent pool vs serial stream replay.

PR 3's streaming shard engine routes arrival batches to per-shard
``StreamingMarketInstance`` sessions kept alive inside a persistent worker
pool, overlapping window accumulation with the per-shard Hungarian solves.
This benchmark replays the same day-long order stream four ways — serially
and on a warm process pool at 1, 2 and 4 workers — and asserts:

* **parity is unconditional**: the pooled merge is bit-identical to the
  serial per-shard stream replay (assignments *and* profits), on any machine;
* **speed scales with cores**: with >= 2 usable cores the 2-worker pool must
  at least break even against the serial stream (the acceptance gate).  On
  1-core boxes a wall-clock gate would measure the scheduler, so the gate
  falls back to the report's critical-path speedup — total worker time over
  the slowest shard, i.e. what the fan-out achieves once the cores exist.

The pool is warmed (workers forked, sessions exercised) by a short stream
before the timed run — that amortisation across re-solves is exactly what the
persistent pool exists for.  Numbers land in
``benchmarks/results/BENCH_streaming_shards.json``; the ``smoke`` test at the
bottom is the CI gate (2 workers, small instance, timeout bounded).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.online.batch import BatchConfig, window_batches
from repro.trace import WorkingModel

#: Day-scale stream for the scaling run: enough per-shard work that the
#: Hungarian windows dominate the pool's IPC (deltas are tiny).
STREAM_SCALE = ExperimentScale(
    task_count=1800,
    driver_counts=(200,),
    trips_generated=9000,
)

#: Instance for the CI smoke run: small enough for a tiny runner, big enough
#: that per-shard solve time (~1 s serial) dominates the 2-worker pool's
#: messaging, so the speedup gate measures the fan-out rather than noise.
SMOKE_SCALE = ExperimentScale(
    task_count=1000,
    driver_counts=(120,),
    trips_generated=5000,
)

WINDOW_S = 600.0


def _build_stream(scale: ExperimentScale):
    config = ExperimentConfig(scale=scale, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    instance = workload.instance_with_drivers(scale.driver_counts[-1])
    batches = window_batches(instance.tasks, WINDOW_S)
    return config, instance, batches


def _timed_stream(coordinator, instance, batches, batch_config, rounds: int = 2):
    """Stream once untimed (forks workers, exercises sessions), then keep the
    best of ``rounds`` timed runs on the warm pool — best-of-N damps
    noisy-neighbor effects on shared runners without hiding real cost."""
    coordinator.solve_stream(instance, batches, config=batch_config)
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = coordinator.solve_stream(instance, batches, config=batch_config)
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def _fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
    )


@pytest.mark.benchmark(group="streaming")
def test_streaming_shards_scaling(save_json):
    """8 shards (4x2), serial stream vs warm process pool at 1/2/4 workers."""
    config, instance, batches = _build_stream(STREAM_SCALE)
    partitioner = SpatialPartitioner(config.bounding_box, 4, 2)
    batch_config = BatchConfig(window_s=WINDOW_S)

    with DistributedCoordinator(partitioner, executor="serial") as serial:
        serial_result, serial_s = _timed_stream(serial, instance, batches, batch_config)

    runs = {}
    results = {}
    for workers in (1, 2, 4):
        with DistributedCoordinator(
            partitioner, executor="process", max_workers=workers
        ) as pooled:
            result, elapsed = _timed_stream(pooled, instance, batches, batch_config)
        results[workers] = result
        runs[workers] = {
            "wall_s": elapsed,
            "speedup_vs_serial": serial_s / elapsed if elapsed > 0 else float("inf"),
            "critical_path_speedup": result.report.critical_path_speedup,
            "worker_count": result.report.worker_count,
        }

    payload = {
        "wall_serial_s": serial_s,
        "runs_by_workers": runs,
        "speedup_vs_serial_at_2_workers": runs[2]["speedup_vs_serial"],
        "shard_count": serial_result.report.shard_count,
        "batch_count": serial_result.report.batch_count,
        "window_s": WINDOW_S,
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "total_value": serial_result.solution.total_value,
        "served_count": serial_result.solution.served_count,
        "cpu_count": os.cpu_count(),
        "solution_parity": all(
            _fingerprint(results[w]) == _fingerprint(serial_result) for w in results
        ),
    }
    save_json("streaming_shards", payload)

    # Bit-identical stream == replay merge, unconditionally, at every width.
    assert payload["solution_parity"]
    assert serial_result.report.shard_count == 8

    usable_cores = os.cpu_count() or 1
    if usable_cores >= 2:
        # The acceptance gate proper: the warm 2-worker pool must at least
        # break even against the serial stream replay.
        assert runs[2]["speedup_vs_serial"] >= 1.0
    else:
        # Not enough cores to observe wall-clock scaling; gate on the
        # fan-out's critical path instead (what the pool achieves as soon as
        # the cores exist).
        assert runs[2]["critical_path_speedup"] >= 1.0


@pytest.mark.benchmark(group="streaming")
def test_streaming_shards_smoke(save_json):
    """CI smoke gate: 2 workers, small stream, parity + non-regression."""
    config, instance, batches = _build_stream(SMOKE_SCALE)
    partitioner = SpatialPartitioner(config.bounding_box, 2, 2)
    batch_config = BatchConfig(window_s=WINDOW_S)

    with DistributedCoordinator(partitioner, executor="serial") as serial:
        serial_result, serial_s = _timed_stream(serial, instance, batches, batch_config)
    with DistributedCoordinator(
        partitioner, executor="process", max_workers=2
    ) as pooled:
        pooled_result, pooled_s = _timed_stream(pooled, instance, batches, batch_config)

    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    payload = {
        "wall_serial_s": serial_s,
        "wall_process_s": pooled_s,
        "speedup_vs_serial": speedup,
        "critical_path_speedup": pooled_result.report.critical_path_speedup,
        "shard_count": pooled_result.report.shard_count,
        "batch_count": pooled_result.report.batch_count,
        "worker_count": 2,
        "window_s": WINDOW_S,
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "total_value": pooled_result.solution.total_value,
        "served_count": pooled_result.solution.served_count,
        "cpu_count": os.cpu_count(),
        "solution_parity": _fingerprint(pooled_result) == _fingerprint(serial_result),
    }
    save_json("streaming_smoke", payload)

    assert payload["solution_parity"]
    if (os.cpu_count() or 1) >= 2:
        # With two real cores the warm 2-worker pool must break even.
        assert payload["speedup_vs_serial"] >= 1.0
