"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
The default benchmark scale is reduced from the paper's (150 tasks instead of
1000, up to 45 drivers instead of 300 — the same 3%-30% driver/task density
band) so that the full harness completes in a few minutes on a laptop;
set ``REPRO_BENCH_SCALE=paper`` in the environment to run the paper's scale.

Each benchmark prints its series and also writes it to
``benchmarks/results/<name>.txt`` so the regenerated rows survive output
capturing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runtime import pin_blas_threads

# Pin BLAS/OpenMP pools to one thread *before* NumPy loads: the benchmark
# speedups must come from the shard fan-out, not from (and not fighting
# with) nested native threading.  setdefault semantics — an exported
# OMP_NUM_THREADS wins.
pin_blas_threads()

import pytest

from repro.experiments import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    ExperimentConfig,
    ExperimentScale,
    Workload,
    build_workload,
)
from repro.trace import WorkingModel

RESULTS_DIR = Path(__file__).parent / "results"

#: Reduced sweep used by default for the figure benchmarks.
BENCH_SCALE = ExperimentScale(
    task_count=150,
    driver_counts=(5, 15, 30, 45),
    trips_generated=1500,
)


def selected_scale() -> ExperimentScale:
    """The benchmark scale, switchable to the paper's via the environment."""
    choice = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if choice == "paper":
        return PAPER_SCALE
    if choice == "default":
        return DEFAULT_SCALE
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return selected_scale()


@pytest.fixture(scope="session")
def hitchhiking_config(bench_scale) -> ExperimentConfig:
    return ExperimentConfig(scale=bench_scale, working_model=WorkingModel.HITCHHIKING)


@pytest.fixture(scope="session")
def home_work_home_config(bench_scale) -> ExperimentConfig:
    return ExperimentConfig(scale=bench_scale, working_model=WorkingModel.HOME_WORK_HOME)


@pytest.fixture(scope="session")
def hitchhiking_workload(hitchhiking_config) -> Workload:
    return build_workload(hitchhiking_config)


@pytest.fixture(scope="session")
def home_work_home_workload(home_work_home_config) -> Workload:
    return build_workload(home_work_home_config)


@pytest.fixture(scope="session")
def save_table():
    """Persist (and echo) a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist (and echo) a machine-readable benchmark artifact.

    Scaling/streaming benchmarks write their numbers as
    ``benchmarks/results/BENCH_<name>.json`` so CI jobs and later sessions
    can diff wall times and speedups without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        path = RESULTS_DIR / f"BENCH_{name}.json"
        text = json.dumps(payload, indent=2, sort_keys=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[BENCH_{name}.json]\n{text}\n")

    return _save
