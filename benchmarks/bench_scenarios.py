"""Scenario engine benchmark: every built-in scenario, end to end, verified.

Pins the scenario-engine acceptance criteria and records the per-scenario
comparison the suite produces:

* **compile determinism** — compiling a spec twice yields byte-identical
  artifacts (``CompiledScenario.checksum``), per built-in scenario;
* **offline parity** — ``solve()`` of the compiled instance is bit-identical
  across the serial / thread / process policies on warm pools *and* the
  fork path, per scenario;
* **stream parity** — ``solve_stream()`` over the compiled arrival batches
  is bit-identical across the same three pool policies, and equal to the
  offline ``BatchedSimulator.run`` replay of the full task set (the
  stream == offline contract extended to every scenario);
* **metrics** — the scenario-suite rows (serve rate, revenue, mean wait,
  shard-load skew per scenario x mode, including the ``stream-horizon``
  rolling-horizon comparison rows) land in
  ``benchmarks/results/BENCH_scenarios.json``.

The ``smoke`` test at the bottom is the CI gate: one built-in scenario at a
reduced scale through a 2-worker pool, the same assertions, timeout
bounded, ``BENCH_scenarios_smoke.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, PersistentWorkerPool, SpatialPartitioner
from repro.online import BatchedSimulator
from repro.online.batch import BatchConfig
from repro.scenarios import compile_scenario, get_scenario, run_scenario_suite, scenario_names

#: Scale of the full verification run (every scenario keeps its shape; the
#: library defaults are for city-scale demos, this is bench-box sized).
FULL_TRIPS, FULL_DRIVERS = 400, 48

#: CI smoke scale: one scenario, small enough for a tiny runner.
SMOKE_TRIPS, SMOKE_DRIVERS = 200, 24

GRID_ROWS, GRID_COLS = 2, 2
POOL_WORKERS = 2

#: Rolling-horizon knobs of the suite's ``stream-horizon`` rows (the tuned
#: defaults of ``bench_rolling_horizon``; the forecaster is EWMA because a
#: live stream cannot see the future).
HORIZON, OVERLAP = 16, 4


def _solution_fingerprint(solution) -> tuple:
    return (
        solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in solution.plans),
        solution.total_value,
    )


def _verify_scenario(spec, pools) -> dict:
    """Compile determinism + offline/stream executor parity for one spec.

    Returns the per-scenario verification record that lands in the JSON.
    """
    compiled = compile_scenario(spec)
    deterministic = compiled.checksum() == compile_scenario(spec).checksum()
    instance = compiled.instance
    partitioner = SpatialPartitioner(spec.region, GRID_ROWS, GRID_COLS)

    offline_prints = []
    for executor, pool in pools.items():
        coordinator = DistributedCoordinator(partitioner, "greedy", executor=executor)
        offline_prints.append(
            _solution_fingerprint(coordinator.solve(instance, pool=pool).solution)
        )
    # The fork path (no pool) must agree too.
    offline_prints.append(
        _solution_fingerprint(
            DistributedCoordinator(partitioner, "greedy").solve(instance).solution
        )
    )
    offline_parity = all(p == offline_prints[0] for p in offline_prints)

    batches = compiled.arrival_batches()
    config = BatchConfig(window_s=spec.window_s)
    stream_prints = []
    wait_means = []
    for executor, pool in pools.items():
        coordinator = DistributedCoordinator(partitioner, executor=executor)
        result = coordinator.solve_stream(instance, batches, config=config, pool=pool)
        stream_prints.append(_solution_fingerprint(result.solution))
        wait_means.append(result.report.mean_wait_s)
    stream_parity = all(p == stream_prints[0] for p in stream_prints)
    wait_parity = all(w == wait_means[0] for w in wait_means)

    # Stream == offline replay: a 1x1 "shard" stream must equal the plain
    # batched simulator run over the completed task set.
    replay = BatchedSimulator(instance, config).run()
    mono = DistributedCoordinator(SpatialPartitioner(spec.region, 1, 1))
    mono_stream = mono.solve_stream(instance, batches, config=config)
    replay_parity = (
        mono_stream.solution.assignment() == replay.assignment()
        and mono_stream.report.wait_total_s == replay.total_wait_s
    )

    return {
        "checksum": compiled.checksum(),
        "compile_deterministic": deterministic,
        "offline_parity": offline_parity,
        "stream_parity": stream_parity,
        "stream_wait_parity": wait_parity,
        "stream_equals_offline_replay": replay_parity,
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "mean_wait_s": wait_means[0],
    }


def _run_verified_suite(trips, drivers, names, save_json, artifact_name):
    specs = [get_scenario(name).with_scale(trips, drivers) for name in names]
    start = time.perf_counter()
    pools = {}
    verification = {}
    try:
        for executor in ("serial", "thread", "process"):
            pools[executor] = PersistentWorkerPool(
                executor=executor, worker_count=POOL_WORKERS
            )
        for spec in specs:
            verification[spec.name] = _verify_scenario(spec, pools)
        suite = run_scenario_suite(
            specs,
            solvers=("greedy",),
            stream=True,
            rows=GRID_ROWS,
            cols=GRID_COLS,
            pool=pools["process"],
            horizon=HORIZON,
            overlap=OVERLAP,
            forecast="ewma",
        )
    finally:
        for pool in pools.values():
            pool.close()

    # Acceptance criterion of the exact-tier ROADMAP item: every published
    # row carries the optimality-gap columns, and the gap is never negative.
    for row in (row.as_dict() for row in suite.rows):
        for key in ("greedy_revenue", "lp_revenue", "lagrangian_bound", "optimality_gap"):
            assert row[key] is not None, f"row {row['scenario']}/{row['mode']} lost {key}"
        assert row["optimality_gap"] >= 0.0
        assert row["greedy_revenue"] <= row["lp_revenue"] + 1e-6
        assert row["lp_revenue"] <= row["lagrangian_bound"] + 1e-6

    all_parity = all(
        record["compile_deterministic"]
        and record["offline_parity"]
        and record["stream_parity"]
        and record["stream_wait_parity"]
        and record["stream_equals_offline_replay"]
        for record in verification.values()
    )
    payload = {
        "scenario_count": len(specs),
        "scenarios": names,
        "task_count": max(r["task_count"] for r in verification.values()),
        "driver_count": max(r["driver_count"] for r in verification.values()),
        "worker_count": POOL_WORKERS,
        "grid": f"{GRID_ROWS}x{GRID_COLS}",
        "horizon": HORIZON,
        "overlap": OVERLAP,
        "forecast": "ewma",
        "solution_parity": all_parity,
        "verification": verification,
        "rows": [row.as_dict() for row in suite.rows],
        "wall_clock_s": time.perf_counter() - start,
        "cpu_count": os.cpu_count(),
    }
    save_json(artifact_name, payload)
    return payload


@pytest.mark.benchmark(group="scenarios")
def test_scenario_suite_full(save_json):
    """Every built-in scenario: determinism + executor parity + suite rows."""
    payload = _run_verified_suite(
        FULL_TRIPS, FULL_DRIVERS, scenario_names(), save_json, "scenarios"
    )
    assert payload["scenario_count"] >= 5
    for name, record in payload["verification"].items():
        assert record["compile_deterministic"], f"{name}: compile not deterministic"
        assert record["offline_parity"], f"{name}: offline executors disagree"
        assert record["stream_parity"], f"{name}: streamed executors disagree"
        assert record["stream_wait_parity"], f"{name}: wait totals disagree"
        assert record["stream_equals_offline_replay"], f"{name}: stream != replay"
    # Every scenario must actually move orders (no degenerate city days).
    stream_rows = [row for row in payload["rows"] if row["mode"] == "stream-batched"]
    assert len(stream_rows) == payload["scenario_count"]
    assert all(row["serve_rate"] > 0.0 for row in stream_rows)
    # Every scenario also carries its rolling-horizon comparison row.
    horizon_rows = [row for row in payload["rows"] if row["mode"] == "stream-horizon"]
    assert len(horizon_rows) == payload["scenario_count"]
    assert all(row["serve_rate"] > 0.0 for row in horizon_rows)


@pytest.mark.benchmark(group="scenarios")
def test_scenario_smoke(save_json):
    """CI gate: one built-in scenario, 2 workers, parity asserted."""
    payload = _run_verified_suite(
        SMOKE_TRIPS, SMOKE_DRIVERS, ["stadium-event"], save_json, "scenarios_smoke"
    )
    record = payload["verification"]["stadium-event"]
    assert record["compile_deterministic"]
    assert record["offline_parity"]
    assert record["stream_parity"]
    assert record["stream_equals_offline_replay"]
    assert payload["solution_parity"]
