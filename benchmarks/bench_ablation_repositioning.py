"""Ablation — idle-driver repositioning towards demand hotspots.

The paper's takeaway (Section VI-C) is that the market designer must keep the
market dense enough for a high service rate.  Dispatch alone leaves idle
drivers wherever their last drop-off happened to be; this ablation measures
what proactive repositioning adds on top of the maxMargin dispatcher:
the serve rate with hotspot repositioning should be at least as high as
without it, at the cost of extra empty kilometres (negative running profit for
drivers who repositioned but won nothing).
"""

import pytest

from repro.analysis import format_table
from repro.geo import PORTO
from repro.online import (
    DemandHeatmap,
    HotspotRepositioning,
    MaxMarginDispatcher,
    OnlineSimulator,
)


def run_repositioning_ablation(instance):
    plain = OnlineSimulator(instance, MaxMarginDispatcher()).run()
    heatmap = DemandHeatmap.from_tasks(instance.tasks, PORTO)
    # Conservative settings: only long-idle drivers move, short hops only, and
    # only towards clearly busier zones.  Aggressive settings (move everyone
    # to the single hottest zone) herd the fleet and *lower* the serve rate.
    policy = HotspotRepositioning(
        heatmap,
        instance.cost_model.travel_model,
        idle_threshold_s=600.0,
        max_drive_km=3.0,
        improvement_factor=1.5,
    )
    repositioned = OnlineSimulator(instance, MaxMarginDispatcher(), repositioning=policy).run()
    return plain, repositioned


@pytest.mark.benchmark(group="ablation")
def test_ablation_repositioning(benchmark, hitchhiking_workload, save_table):
    instance = hitchhiking_workload.instance_with_drivers(
        hitchhiking_workload.config.scale.driver_counts[-1]
    )
    plain, repositioned = benchmark.pedantic(
        run_repositioning_ablation, args=(instance,), rounds=1, iterations=1
    )
    table = format_table(
        ["policy", "profit", "serve_rate", "served", "rejected"],
        [
            ["maxMargin (no repositioning)", plain.total_value, plain.serve_rate, plain.served_count, len(plain.rejected_tasks)],
            ["maxMargin + hotspot repositioning", repositioned.total_value, repositioned.serve_rate, repositioned.served_count, len(repositioned.rejected_tasks)],
        ],
    )
    save_table("ablation_repositioning", "Idle-driver repositioning ablation\n" + table)
    benchmark.extra_info["serve_rate_plain"] = plain.serve_rate
    benchmark.extra_info["serve_rate_repositioned"] = repositioned.serve_rate

    # Conservative repositioning must never collapse the serve rate; on this
    # workload (riders already give a 10-minute heads-up) the measured effect
    # is a small serve-rate gain paid for with empty kilometres.
    assert repositioned.serve_rate >= plain.serve_rate - 0.02
    assert repositioned.total_value >= 0.8 * plain.total_value
    assert repositioned.served_count + len(repositioned.rejected_tasks) == instance.task_count
