"""Ablation — spatial partitioning of the market (distributed mode).

The paper's introduction argues the matching problem can be partitioned at
city scale but not much further, because riders and drivers travel across the
city.  This ablation shards the same market into finer and finer zone grids,
solves each shard independently with the greedy algorithm and reports the
retained fraction of the unsharded objective: retention must degrade as the
grid gets finer, while per-shard work shrinks.
"""

import pytest

from repro.experiments import run_partition_ablation

GRIDS = ((1, 1), (2, 2), (3, 3), (4, 4))


@pytest.mark.benchmark(group="ablation")
def test_ablation_spatial_partitioning(benchmark, hitchhiking_config, save_table):
    result = benchmark.pedantic(
        run_partition_ablation,
        kwargs={"grids": GRIDS, "config": hitchhiking_config},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_partitioning", result.render())

    retentions = [p.value_retention for p in result.points]
    benchmark.extra_info["retention_2x2"] = retentions[1]
    benchmark.extra_info["retention_4x4"] = retentions[-1]

    # The 1x1 "sharding" is exactly the unsharded solve.
    assert retentions[0] == pytest.approx(1.0, rel=1e-6)
    # Finer sharding cannot create value and the finest grid loses a
    # noticeable share of it (the cross-zone trips the paper warns about).
    assert all(r <= 1.0 + 1e-6 for r in retentions)
    assert retentions[-1] < retentions[0]
    # Sharding still keeps the majority of the objective at city-district scale.
    assert retentions[1] > 0.5
