"""Service soak — ~1M synthetic orders through the asyncio dispatch gateway.

The dispatch service's claim is operational: orders arrive *one at a time*,
continuously, for several cities at once, and the service holds latency
while epochs rotate on warm per-city worker pools and every merged outcome
stays bit-identical to an offline replay of the ingested batches (parity
contract 15).  This benchmark is that claim under load:

* ``test_service_soak_million`` floods ~1M orders (4 cities x 32 epochs x
  ~7.8k orders) through one long-running service and records p50/p99
  end-to-end dispatch latency (submit -> the order's batch fully appended on
  its shard worker) in ``benchmarks/results/BENCH_service_soak.json``.
  Epochs bound the per-stream task network (its maintenance cost grows with
  stream length), so a million orders means many small merges on one
  service — the intended operating regime.  Parity is verified on the first
  epoch of every city (sampling keeps the replay from doubling the soak's
  wall clock).
* ``test_service_soak_smoke`` is the CI gate: a 2-worker process-pool soak,
  parity verified on **every** epoch, and an explicit no-orphan assertion —
  after teardown, zero child processes survive.  Artifact:
  ``BENCH_service_soak_smoke.json``.

Run the full soak explicitly (it is minutes, not seconds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_soak.py -k million

"""

from __future__ import annotations

import multiprocessing

from repro.service import SoakConfig, run_soak


def _assert_soak_sound(report, expect_parity_epochs: int) -> None:
    """The invariants every soak — full or smoke — must hold."""
    payload = report.to_payload()
    assert report.parity_ok, "parity contract 15 violated: service != replay"
    assert report.parity_checked == expect_parity_epochs
    assert payload["dispatch_latency"]["count"] == report.orders_submitted, (
        "some orders never completed dispatch"
    )
    assert payload["dispatch_latency"]["p50_ms"] is not None
    assert payload["dispatch_latency"]["p50_ms"] <= payload["dispatch_latency"]["p99_ms"]
    assert report.orders_served > 0
    assert payload["health"]["status"] == "ok"


class TestServiceSoak:
    def test_service_soak_million(self, save_json):
        """~1M orders, serial per-city pools (honest on a 1-core box),
        parity sampled on epoch 0 of every city."""
        config = SoakConfig(
            orders=1_000_000,
            cities=4,
            epochs=32,
            drivers_per_city=24,
            window_s=120.0,
            epoch_span_s=14_400.0,
            rows=2,
            cols=2,
            executor="serial",
            backpressure_depth=8,
            max_batch=512,
            seed=2017,
            parity_epochs=1,
        )
        report = run_soak(config)
        _assert_soak_sound(report, expect_parity_epochs=config.cities)
        save_json("service_soak", report.to_payload())

    def test_service_soak_smoke(self, save_json):
        """CI gate: 2-worker process pools, parity on every epoch, and no
        child process survives teardown."""
        config = SoakConfig(
            orders=20_000,
            cities=2,
            epochs=2,
            drivers_per_city=16,
            window_s=120.0,
            epoch_span_s=14_400.0,
            rows=2,
            cols=2,
            executor="process",
            workers=2,
            backpressure_depth=8,
            max_batch=512,
            seed=2017,
            parity_epochs=None,  # every epoch
        )
        report = run_soak(config)
        _assert_soak_sound(
            report, expect_parity_epochs=config.cities * config.epochs
        )
        assert multiprocessing.active_children() == [], (
            "service teardown leaked worker processes"
        )
        save_json("service_soak_smoke", report.to_payload())
