"""Micro-benchmarks of the core algorithmic kernels.

Not figures from the paper, but the operational numbers a user of the library
cares about: how long task-map construction, the greedy solve, the online
simulators and the LP bound take at the benchmark scale.  These use repeated
pytest-benchmark rounds (they are fast) so regressions are visible.

The ``TestVectorizedKernelSpeedup`` class additionally pins the payoff of the
vectorised geo/matching kernel: on a 1,000-driver x 1,000-task instance the
batched distance matrix and the vectorised candidate construction must beat
the scalar reference loops by at least 5x while producing identical results.
"""

import random
import time

import numpy as np
import pytest

from repro.geo import PORTO, HaversineEstimator
from repro.market import Driver, MarketInstance, Task, build_task_network
from repro.offline import greedy_assignment, lagrangian_bound, lp_relaxation_bound
from repro.online import (
    CandidateKernel,
    DriverState,
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
)


@pytest.fixture(scope="module")
def instance(hitchhiking_workload):
    return hitchhiking_workload.instance_with_drivers(
        hitchhiking_workload.config.scale.driver_counts[-1]
    )


@pytest.mark.benchmark(group="micro")
def test_micro_task_network_construction(benchmark, instance):
    network = benchmark(build_task_network, instance.tasks, instance.cost_model)
    assert network.task_count == instance.task_count


@pytest.mark.benchmark(group="micro")
def test_micro_task_maps_construction(benchmark, instance):
    def build_maps():
        fresh = MarketInstance(
            drivers=instance.drivers, tasks=instance.tasks, cost_model=instance.cost_model
        )
        return fresh.task_maps

    maps = benchmark(build_maps)
    assert len(maps) == instance.driver_count


@pytest.mark.benchmark(group="micro")
def test_micro_greedy_solve(benchmark, instance):
    solution = benchmark(greedy_assignment, instance)
    assert solution.total_value > 0.0


@pytest.mark.benchmark(group="micro")
def test_micro_online_max_margin(benchmark, instance):
    outcome = benchmark(lambda: OnlineSimulator(instance, MaxMarginDispatcher()).run())
    assert outcome.served_count > 0


@pytest.mark.benchmark(group="micro")
def test_micro_online_nearest(benchmark, instance):
    outcome = benchmark(lambda: OnlineSimulator(instance, NearestDispatcher()).run())
    assert outcome.served_count > 0


@pytest.mark.benchmark(group="micro")
def test_micro_lagrangian_bound(benchmark, instance):
    result = benchmark.pedantic(
        lagrangian_bound, args=(instance,), kwargs={"iterations": 10}, rounds=3, iterations=1
    )
    assert result.upper_bound > 0.0


@pytest.mark.benchmark(group="micro")
def test_micro_lp_relaxation_bound(benchmark, instance):
    result = benchmark.pedantic(lp_relaxation_bound, args=(instance,), rounds=1, iterations=1)
    assert result.upper_bound > 0.0


# ----------------------------------------------------------------------
# scalar vs vectorised geo/matching kernel (the dispatch hot path)
# ----------------------------------------------------------------------
KERNEL_DRIVERS = 1000
KERNEL_TASKS = 1000


@pytest.fixture(scope="module")
def kernel_instance():
    """A 1,000-driver x 1,000-task synthetic Porto instance."""
    rng = random.Random(42)

    def point():
        return PORTO.sample_uniform(rng)

    tasks = []
    for m in range(KERNEL_TASKS):
        source, destination = point(), point()
        start = rng.uniform(0.0, 6.0) * 3600.0
        distance = max(0.3, source.haversine_km(destination))
        duration = distance / 30.0 * 3600.0
        tasks.append(
            Task(
                task_id=f"t{m}",
                publish_ts=start - 600.0,
                source=source,
                destination=destination,
                start_deadline_ts=start,
                end_deadline_ts=start + duration * 1.4 + 120.0,
                price=2.0 + distance,
                distance_km=distance,
            )
        )
    drivers = [
        Driver(
            driver_id=f"d{n}",
            source=point(),
            destination=point(),
            start_ts=rng.uniform(0.0, 3.0) * 3600.0,
            end_ts=rng.uniform(5.0, 10.0) * 3600.0,
        )
        for n in range(KERNEL_DRIVERS)
    ]
    instance = MarketInstance.create(drivers=drivers, tasks=tasks)
    instance.task_network  # prebuild outside the timed sections
    return instance


class TestVectorizedKernelSpeedup:
    def test_cross_km_speedup_over_scalar_loop(self, kernel_instance, save_table):
        """Full 1,000 x 1,000 distance matrix: one cross_km call vs the
        nested scalar loop.  Requires >= 5x and bit-level agreement."""
        estimator = HaversineEstimator()
        origins = [d.source for d in kernel_instance.drivers]
        destinations = [t.source for t in kernel_instance.tasks]

        start = time.perf_counter()
        vectorized = estimator.cross_km(origins, destinations)
        vectorized_s = time.perf_counter() - start

        start = time.perf_counter()
        scalar = np.empty((len(origins), len(destinations)))
        for i, origin in enumerate(origins):
            for j, destination in enumerate(destinations):
                scalar[i, j] = estimator.distance_km(origin, destination)
        scalar_s = time.perf_counter() - start

        np.testing.assert_allclose(vectorized, scalar, atol=1e-9, rtol=0.0)
        speedup = scalar_s / max(1e-9, vectorized_s)
        save_table(
            "micro_cross_km",
            "\n".join(
                [
                    f"pairs={len(origins) * len(destinations)}",
                    f"scalar_s={scalar_s:.3f}",
                    f"vectorized_s={vectorized_s:.4f}",
                    f"speedup={speedup:.1f}x",
                ]
            ),
        )
        assert speedup >= 5.0

    def test_candidate_construction_speedup(self, kernel_instance, save_table):
        """Candidate-set construction over the full task stream: vectorised
        kernel (with and without the grid index) vs the scalar reference
        loop.  Requires >= 5x and identical candidate sets."""
        tasks = kernel_instance.tasks
        order = sorted(range(len(tasks)), key=lambda m: tasks[m].publish_ts)
        states = [DriverState.fresh(d) for d in kernel_instance.drivers]
        indexed = CandidateKernel(kernel_instance, states)
        exhaustive = CandidateKernel(kernel_instance, states, spatial_index=False)
        assert indexed.uses_spatial_index

        def sweep(fn):
            start = time.perf_counter()
            count = sum(len(fn(m, tasks[m], tasks[m].publish_ts)) for m in order)
            return count, time.perf_counter() - start

        scalar_count, scalar_s = sweep(indexed.candidates_for_scalar)
        grid_count, grid_s = sweep(indexed.candidates_for)
        flat_count, flat_s = sweep(exhaustive.candidates_for)

        assert grid_count == scalar_count
        assert flat_count == scalar_count
        speedup_grid = scalar_s / max(1e-9, grid_s)
        speedup_flat = scalar_s / max(1e-9, flat_s)
        save_table(
            "micro_candidate_kernel",
            "\n".join(
                [
                    f"drivers={KERNEL_DRIVERS} tasks={KERNEL_TASKS}",
                    f"candidates={scalar_count}",
                    f"scalar_s={scalar_s:.2f}",
                    f"vectorized_s={flat_s:.3f} (speedup={speedup_flat:.1f}x)",
                    f"vectorized_grid_s={grid_s:.3f} (speedup={speedup_grid:.1f}x)",
                ]
            ),
        )
        assert speedup_grid >= 5.0
        assert speedup_flat >= 5.0

    def test_online_simulation_end_to_end_speedup(self, kernel_instance, save_table):
        """Whole per-order simulations at 1,000 x 1,000: vectorised config vs
        the scalar reference config, identical outcomes required."""
        from repro.online import SimulationConfig

        subset = kernel_instance.subset_tasks(300)

        start = time.perf_counter()
        fast = OnlineSimulator(
            subset, MaxMarginDispatcher(), SimulationConfig()
        ).run()
        fast_s = time.perf_counter() - start

        start = time.perf_counter()
        slow = OnlineSimulator(
            subset,
            MaxMarginDispatcher(),
            SimulationConfig(use_vectorized_kernel=False),
        ).run()
        slow_s = time.perf_counter() - start

        assert [r.task_indices for r in fast.records] == [
            r.task_indices for r in slow.records
        ]
        save_table(
            "micro_online_simulation",
            "\n".join(
                [
                    f"drivers={KERNEL_DRIVERS} tasks=300",
                    f"scalar_s={slow_s:.2f}",
                    f"vectorized_s={fast_s:.3f}",
                    f"speedup={slow_s / max(1e-9, fast_s):.1f}x",
                ]
            ),
        )
        assert fast_s < slow_s
