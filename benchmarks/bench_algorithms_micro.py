"""Micro-benchmarks of the core algorithmic kernels.

Not figures from the paper, but the operational numbers a user of the library
cares about: how long task-map construction, the greedy solve, the online
simulators and the LP bound take at the benchmark scale.  These use repeated
pytest-benchmark rounds (they are fast) so regressions are visible.
"""

import pytest

from repro.market import MarketInstance, build_task_network
from repro.offline import greedy_assignment, lagrangian_bound, lp_relaxation_bound
from repro.online import MaxMarginDispatcher, NearestDispatcher, OnlineSimulator


@pytest.fixture(scope="module")
def instance(hitchhiking_workload):
    return hitchhiking_workload.instance_with_drivers(
        hitchhiking_workload.config.scale.driver_counts[-1]
    )


@pytest.mark.benchmark(group="micro")
def test_micro_task_network_construction(benchmark, instance):
    network = benchmark(build_task_network, instance.tasks, instance.cost_model)
    assert network.task_count == instance.task_count


@pytest.mark.benchmark(group="micro")
def test_micro_task_maps_construction(benchmark, instance):
    def build_maps():
        fresh = MarketInstance(
            drivers=instance.drivers, tasks=instance.tasks, cost_model=instance.cost_model
        )
        return fresh.task_maps

    maps = benchmark(build_maps)
    assert len(maps) == instance.driver_count


@pytest.mark.benchmark(group="micro")
def test_micro_greedy_solve(benchmark, instance):
    solution = benchmark(greedy_assignment, instance)
    assert solution.total_value > 0.0


@pytest.mark.benchmark(group="micro")
def test_micro_online_max_margin(benchmark, instance):
    outcome = benchmark(lambda: OnlineSimulator(instance, MaxMarginDispatcher()).run())
    assert outcome.served_count > 0


@pytest.mark.benchmark(group="micro")
def test_micro_online_nearest(benchmark, instance):
    outcome = benchmark(lambda: OnlineSimulator(instance, NearestDispatcher()).run())
    assert outcome.served_count > 0


@pytest.mark.benchmark(group="micro")
def test_micro_lagrangian_bound(benchmark, instance):
    result = benchmark.pedantic(
        lagrangian_bound, args=(instance,), kwargs={"iterations": 10}, rounds=3, iterations=1
    )
    assert result.upper_bound > 0.0


@pytest.mark.benchmark(group="micro")
def test_micro_lp_relaxation_bound(benchmark, instance):
    result = benchmark.pedantic(lp_relaxation_bound, args=(instance,), rounds=1, iterations=1)
    assert result.upper_bound > 0.0
