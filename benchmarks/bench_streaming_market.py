"""Streaming-append benchmark — incremental task maps vs full rebuilds.

``MarketInstance.with_tasks`` throws away the task network and every
per-driver task map, so consuming an order stream through it rebuilds
``O((N + M) · M)`` state on every arrival batch.
:class:`~repro.market.streaming.StreamingMarketInstance` extends those
structures by the new columns only — ``O((N + M) · B)`` per batch of ``B``
tasks — while staying bit-identical to the rebuild.

This benchmark replays the same day of orders both ways, asserts the final
states are equivalent (same greedy solution) and that the streaming path is
measurably sublinear — the whole stream must cost well under half of the
rebuild path, with the gap widening as the instance grows.  Numbers land in
``benchmarks/results/BENCH_streaming_append.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.market import MarketInstance, StreamingMarketInstance
from repro.offline import greedy_assignment
from repro.trace import WorkingModel

#: Day-scale stream: 1000 orders arriving in 16 batches over a 150-driver
#: fleet (the paper's task count; the rebuild/append gap widens with size).
STREAM_SCALE = ExperimentScale(
    task_count=1000,
    driver_counts=(150,),
    trips_generated=5000,
)
BATCH_COUNT = 16


@pytest.mark.benchmark(group="streaming")
def test_streaming_append_is_sublinear_vs_rebuild(save_json):
    config = ExperimentConfig(scale=STREAM_SCALE, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    base = workload.instance_with_drivers(STREAM_SCALE.driver_counts[-1])
    tasks = sorted(base.tasks, key=lambda t: (t.publish_ts, t.task_id))
    batch_size = (len(tasks) + BATCH_COUNT - 1) // BATCH_COUNT
    batches = [tasks[lo : lo + batch_size] for lo in range(0, len(tasks), batch_size)]

    # Warm up allocator/kernel caches outside the timed region, so the
    # timed comparison measures the algorithms rather than first-touch costs.
    warmup = StreamingMarketInstance(base.drivers, base.cost_model)
    warmup.append_tasks(batches[0])
    warmup.append_tasks(batches[1])

    # Streaming path: append each arrival batch incrementally.
    stream = StreamingMarketInstance(base.drivers, base.cost_model)
    streaming_s = []
    for batch in batches:
        start = time.perf_counter()
        stream.append_tasks(batch)
        streaming_s.append(time.perf_counter() - start)

    # Rebuild path: what with_tasks forces — a fresh network + task maps per
    # arrival batch over the growing prefix.
    rebuild_s = []
    grown = []
    for batch in batches:
        grown.extend(batch)
        start = time.perf_counter()
        rebuilt = MarketInstance(
            drivers=base.drivers, tasks=tuple(grown), cost_model=base.cost_model
        )
        rebuilt.task_network
        rebuilt.task_maps
        rebuild_s.append(time.perf_counter() - start)

    streaming_total = sum(streaming_s)
    rebuild_total = sum(rebuild_s)
    ratio = streaming_total / rebuild_total if rebuild_total > 0 else float("inf")

    # Equivalence: the streamed state solves identically to the rebuilt one.
    streamed_solution = greedy_assignment(stream.snapshot())
    rebuilt_solution = greedy_assignment(stream.rebuild())
    parity = (
        streamed_solution.assignment() == rebuilt_solution.assignment()
        and [p.profit for p in streamed_solution.plans]
        == [p.profit for p in rebuilt_solution.plans]
    )

    save_json(
        "streaming_append",
        {
            "task_count": len(tasks),
            "driver_count": base.driver_count,
            "batch_count": len(batches),
            "streaming_total_s": streaming_total,
            "rebuild_total_s": rebuild_total,
            "streaming_over_rebuild": ratio,
            "per_batch_streaming_s": streaming_s,
            "per_batch_rebuild_s": rebuild_s,
            "cpu_count": os.cpu_count(),
            "solution_parity": parity,
        },
    )

    assert parity
    # "Measurably sublinear", with slack for shared-machine timing noise:
    # the whole stream must cost well under the rebuild-per-batch path (in
    # practice ~3x less at this scale) ...
    assert streaming_total < 0.6 * rebuild_total
    # ... and the marginal batch must not grow like a rebuild: the last
    # append is the real sublinearity signal (~5x less than the rebuild).
    assert streaming_s[-1] < 0.5 * rebuild_s[-1]
