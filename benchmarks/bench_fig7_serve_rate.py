"""Figure 7 — probability that a pending order is served vs. number of drivers.

Paper shape: the serve rate increases as more drivers enter the market, for
every algorithm, and the offline Greedy serves at least as large a fraction
as the myopic Nearest heuristic.
"""

import pytest

from repro.experiments import ALGORITHM_NAMES, GREEDY, NEAREST, run_market_insight_sweep


@pytest.mark.benchmark(group="fig6-9")
def test_fig7_serve_rate(benchmark, hitchhiking_workload, save_table):
    result = benchmark.pedantic(
        run_market_insight_sweep, kwargs={"workload": hitchhiking_workload}, rounds=1, iterations=1
    )
    save_table("fig7_serve_rate", result.render("serve_rate"))

    for name in ALGORITHM_NAMES:
        series = result.series(name, "serve_rate")
        benchmark.extra_info[f"serve_rate_{name}_max_drivers"] = series.values[-1]
        assert series.trend() > 0.0
        assert all(0.0 <= v <= 1.0 for v in series.values)

    greedy = result.series(GREEDY, "serve_rate").values
    nearest = result.series(NEAREST, "serve_rate").values
    assert sum(greedy) >= sum(nearest) - 1e-9
