"""City-scale transport benchmark — zero-copy shm vs pickle vs serial.

``bench_distributed_scaling.py`` showed the gap this PR closes: the process
fan-out's *critical path* beat serial 3-4x while its *wall clock* did not,
because every shard payload was pickled through the executor pipe.  This
benchmark measures the same city twice over the persistent pool — pickle
transport and shared-memory transport — against the serial reference, and
records the whole story in ``benchmarks/results/BENCH_city_scale.json``:

* ``bytes_over_pipe`` per transport, straight from the coordinator reports —
  the shm run must move **>= 10x** fewer bytes through the pipe than the
  pickle run on the identical workload (descriptors vs full array columns);
* ``speedup_vs_serial`` for the shm run — the honest wall-clock gate, which
  only applies where the cores exist (``cpu_count >= 4``; single-core CI
  boxes gate on ``critical_path_speedup`` instead, exactly like the scaling
  benchmark, because wall clock there measures the scheduler);
* bit-identical merges across all runs (parity contract 16) — asserted
  unconditionally, on any machine;
* a streaming section: the same instance streamed over both transports,
  pinning that a steady-state stream *recycles* segments (``segment_reuses``)
  instead of allocating per batch, with zero pickle fallbacks.

Scale is switchable via ``REPRO_CITY_SCALE``: ``bench`` (default, minutes on
a laptop), ``large`` (tens of thousands of orders), or ``full`` — the
ISSUE's headline city of ~100k drivers x ~1M orders, which needs a big
multicore box and a long lunch.  The ``smoke`` test at the bottom is the CI
transport gate (2 workers, small instance, shm==pickle parity), writing
``BENCH_city_scale_smoke.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.online.batch import BatchConfig
from repro.trace import WorkingModel

#: Default city: big enough that per-shard solve time dominates pool startup
#: and payloads dwarf descriptors, small enough for a laptop run.
CITY_SCALES = {
    "bench": ExperimentScale(
        task_count=2400, driver_counts=(240,), trips_generated=12000
    ),
    "large": ExperimentScale(
        task_count=20_000, driver_counts=(2_000,), trips_generated=100_000
    ),
    # The ISSUE's headline city (~100k drivers x ~1M orders).  Generation
    # alone takes a while at this scale — run it deliberately, on real cores.
    "full": ExperimentScale(
        task_count=1_000_000, driver_counts=(100_000,), trips_generated=5_000_000
    ),
}

SMOKE_SCALE = ExperimentScale(
    task_count=800, driver_counts=(100,), trips_generated=4000
)

WINDOW_S = 600.0


def selected_city_scale() -> ExperimentScale:
    return CITY_SCALES[os.environ.get("REPRO_CITY_SCALE", "bench").lower()]


def _build_instance(scale: ExperimentScale):
    config = ExperimentConfig(scale=scale, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    return config, workload.instance_with_drivers(scale.driver_counts[-1])


def _fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
    )


def _stream_fingerprint(result):
    return _fingerprint(result) + (result.rejected_tasks,)


def _timed(fn, rounds: int = 1):
    """Best-of-N wall clock (damps noisy neighbors without hiding cost)."""
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def _transport_block(report, wall_s: float) -> dict:
    return {
        "transport": report.transport,
        "wall_s": wall_s,
        "bytes_over_pipe": report.bytes_over_pipe,
        "shm_bytes": report.shm_bytes,
        "segment_reuses": report.segment_reuses,
        "pickle_fallbacks": report.pickle_fallbacks,
    }


def _run_city(instance, partitioner, workers: int, rounds: int):
    """Offline + streaming over serial / pickle-pool / shm-pool; returns the
    JSON payload (parity already verified)."""
    serial = DistributedCoordinator(partitioner, "greedy", executor="serial")
    serial_result, serial_s = _timed(lambda: serial.solve(instance), rounds)
    serial_stream, serial_stream_s = _timed(
        lambda: serial.solve_stream(instance, config=BatchConfig(window_s=WINDOW_S)),
        rounds,
    )

    offline = {}
    streaming = {}
    pool_snapshots = {}
    for transport in ("pickle", "shm"):
        with DistributedCoordinator(
            partitioner, "greedy", executor="process",
            max_workers=workers, transport=transport,
        ) as coordinator:
            result, wall_s = _timed(
                lambda: coordinator.solve(instance, reuse_pool=True), rounds
            )
            stream, stream_s = _timed(
                lambda: coordinator.solve_stream(
                    instance, config=BatchConfig(window_s=WINDOW_S)
                ),
                rounds,
            )
            pool_snapshots[transport] = coordinator.stream_pool().stats.snapshot()
        assert _fingerprint(result) == _fingerprint(serial_result), transport
        assert _stream_fingerprint(stream) == _stream_fingerprint(serial_stream), transport
        offline[transport] = _transport_block(result.report, wall_s)
        offline[transport]["critical_path_speedup"] = result.report.critical_path_speedup
        streaming[transport] = _transport_block(stream.report, stream_s)

    pipe_ratio = (
        offline["pickle"]["bytes_over_pipe"] / offline["shm"]["bytes_over_pipe"]
        if offline["shm"]["bytes_over_pipe"]
        else float("inf")
    )
    # shard_bytes keys are shard ids (ints) — stringify for JSON.
    for snapshot in pool_snapshots.values():
        snapshot["shard_bytes"] = {
            str(k): v for k, v in snapshot["shard_bytes"].items()
        }
    return {
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "worker_count": workers,
        "cpu_count": os.cpu_count(),
        "wall_serial_s": serial_s,
        "wall_serial_stream_s": serial_stream_s,
        "offline": offline,
        "streaming": streaming,
        "speedup_vs_serial": serial_s / offline["shm"]["wall_s"],
        "speedup_vs_serial_pickle": serial_s / offline["pickle"]["wall_s"],
        "stream_speedup_vs_serial": serial_stream_s / streaming["shm"]["wall_s"],
        "critical_path_speedup": offline["shm"]["critical_path_speedup"],
        "bytes_over_pipe_ratio": pipe_ratio,
        "total_value": serial_result.solution.total_value,
        "served_count": serial_result.solution.served_count,
        "pool_stats": pool_snapshots,
        "solution_parity": True,  # asserted above, recorded for diffing
    }


@pytest.mark.benchmark(group="distributed")
def test_city_scale_transports(save_json):
    """The tentpole gate: shm moves >=10x fewer bytes over the pipe, merges
    stay bit-identical, and — where the cores exist — the pool finally beats
    serial wall clock."""
    config, instance = _build_instance(selected_city_scale())
    partitioner = SpatialPartitioner(config.bounding_box, 4, 2)
    payload = _run_city(instance, partitioner, workers=4, rounds=1)
    save_json("city_scale", payload)

    # The transport claim, unconditionally: descriptors vs array columns.
    assert payload["bytes_over_pipe_ratio"] >= 10.0
    assert payload["offline"]["shm"]["shm_bytes"] > 0
    assert payload["offline"]["shm"]["pickle_fallbacks"] == 0
    assert payload["streaming"]["shm"]["pickle_fallbacks"] == 0
    # Steady-state streams recycle segments instead of allocating per batch.
    assert payload["streaming"]["shm"]["segment_reuses"] > 0

    if (os.cpu_count() or 1) >= 4:
        # The honest multicore gate: zero-copy shipping + 4 workers must beat
        # the serial wall clock on the same machine.
        assert payload["speedup_vs_serial"] > 1.0
    else:
        # Single/dual-core boxes: wall clock measures the scheduler, so gate
        # on the fan-out's critical path (what the cores would buy).
        assert payload["critical_path_speedup"] > 1.0


@pytest.mark.benchmark(group="distributed")
def test_city_scale_smoke(save_json):
    """CI transport gate: 2 workers, small instance, shm == pickle == serial,
    >=10x fewer bytes over the pipe."""
    config, instance = _build_instance(SMOKE_SCALE)
    partitioner = SpatialPartitioner(config.bounding_box, 2, 2)
    payload = _run_city(instance, partitioner, workers=2, rounds=2)
    save_json("city_scale_smoke", payload)

    assert payload["bytes_over_pipe_ratio"] >= 10.0
    assert payload["offline"]["shm"]["pickle_fallbacks"] == 0
    if (os.cpu_count() or 1) >= 2:
        # With two real cores the shm fan-out must at least break even.
        assert payload["speedup_vs_serial"] >= 1.0
