"""Ablation — effect of the surge multiplier (Eq. 15) on the market.

Section VI-C argues that surge pricing is one of the levers a platform has to
control market congestion.  This ablation re-prices the same day of trips at
several static multipliers and reports how drivers' total profit, the serve
rate and per-driver revenue respond: profits scale with the multiplier while
the set of tasks that are *feasible* to serve stays essentially unchanged.
"""

import pytest

from repro.experiments import run_surge_ablation

MULTIPLIERS = (1.0, 1.2, 1.5, 2.0, 2.5)


@pytest.mark.benchmark(group="ablation")
def test_ablation_surge_multiplier(benchmark, hitchhiking_config, save_table):
    result = benchmark.pedantic(
        run_surge_ablation,
        kwargs={"multipliers": MULTIPLIERS, "config": hitchhiking_config},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_surge", result.render())

    profits = [p.total_profit for p in result.points]
    serve_rates = [p.serve_rate for p in result.points]
    benchmark.extra_info["profit_at_1x"] = profits[0]
    benchmark.extra_info["profit_at_2.5x"] = profits[-1]

    # Higher payoffs strictly increase drivers' total profit...
    assert all(later > earlier for earlier, later in zip(profits, profits[1:]))
    # ...and roughly proportionally (doubling fares should more than 1.5x profits).
    assert profits[-1] > 1.5 * profits[0]
    # ...while feasibility (which tasks can be reached in time) is unaffected.
    assert max(serve_rates) - min(serve_rates) <= 0.05
