"""Figure 3 — travel-time distribution of the (synthetic) Porto trace.

Paper shape: trip durations follow a power-law-like heavy-tailed
distribution.  The benchmark regenerates the distribution summary (count,
median, p90/p99, MLE tail exponent, heaviness) and asserts on the shape.
"""

import pytest

from repro.analysis import format_metric_dict
from repro.experiments import run_distribution_experiment


@pytest.mark.benchmark(group="fig3")
def test_fig3_travel_time_distribution(benchmark, hitchhiking_config, save_table):
    result = benchmark.pedantic(
        run_distribution_experiment, args=(hitchhiking_config,), rounds=1, iterations=1
    )
    summary = result.travel_time
    save_table(
        "fig3_travel_time",
        "Fig. 3 - travel time distribution (minutes)\n" + format_metric_dict(summary.as_dict()),
    )
    benchmark.extra_info["median_min"] = summary.median
    benchmark.extra_info["p99_min"] = summary.p99
    benchmark.extra_info["tail_exponent"] = summary.tail_exponent

    # Shape assertions: heavy right tail, city-trip median, power-law exponent
    # in the usual 1.5-3.5 band.
    assert summary.median < summary.mean
    assert summary.heaviness > 3.0
    assert 1.5 <= summary.tail_exponent <= 4.0
    assert 3.0 <= summary.median <= 15.0
