"""Figure 4 — travel-distance distribution of the (synthetic) Porto trace.

Paper shape: trip distances follow a power-law-like heavy-tailed
distribution, mirroring the travel-time marginal of Fig. 3.
"""

import pytest

from repro.analysis import format_metric_dict
from repro.experiments import run_distribution_experiment


@pytest.mark.benchmark(group="fig4")
def test_fig4_travel_distance_distribution(benchmark, hitchhiking_config, save_table):
    result = benchmark.pedantic(
        run_distribution_experiment, args=(hitchhiking_config,), rounds=1, iterations=1
    )
    summary = result.travel_distance
    save_table(
        "fig4_travel_distance",
        "Fig. 4 - travel distance distribution (km)\n" + format_metric_dict(summary.as_dict()),
    )
    benchmark.extra_info["median_km"] = summary.median
    benchmark.extra_info["p99_km"] = summary.p99
    benchmark.extra_info["tail_exponent"] = summary.tail_exponent

    assert summary.median < summary.mean
    assert summary.heaviness > 3.0
    assert 1.5 <= summary.tail_exponent <= 4.0
    # Median city trip sits between 1 and 8 km.
    assert 1.0 <= summary.median <= 8.0
