"""Offline solves on the persistent pool + load-aware pre-splitting.

PR 3 built the :class:`~repro.distributed.pool.PersistentWorkerPool` for live
streams; this benchmark measures what routing the *offline* path through it
buys.  The workload is the re-solve-heavy one the pool was built to amortise
— the same city solved repeatedly, as every figure sweep and ablation does —
replayed two ways:

* **fork** — ``DistributedCoordinator.solve()`` as before: every call forks
  a fresh executor, pays worker startup, ships payloads, tears down;
* **pool** — ``solve(pool=...)`` on one warm ``PersistentWorkerPool``:
  startup is paid once (untimed), every timed solve reuses the live workers.

Asserted, mirroring the streaming benchmarks' shape:

* **parity is unconditional**: the pooled merge is bit-identical to the fork
  path (assignments *and* profits), on any machine;
* **the warm pool at least breaks even** on repeated solves with >= 2 usable
  cores (on 1-core boxes the wall clock measures the scheduler, so the gate
  is skipped — the JSON still records the observed ratio);
* **load-aware pre-splitting helps**: a ``LoadAwarePartitioner`` seeded by
  the first solve's per-shard load report must not worsen the max/mean shard
  load of the blind grid that produced it.

Numbers land in ``benchmarks/results/BENCH_offline_pool.json``; the ``smoke``
test at the bottom is the CI gate (2 workers, small instance, timeout
bounded, ``BENCH_offline_pool_smoke.json``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import (
    DistributedCoordinator,
    LoadAwarePartitioner,
    PersistentWorkerPool,
    RebalancePolicy,
    ShardLoadReport,
    SpatialPartitioner,
)
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.trace import WorkingModel

#: Re-solve workload for the scaling run: per-shard greedy time dominates
#: the per-call executor startup being amortised.
OFFLINE_SCALE = ExperimentScale(
    task_count=1200,
    driver_counts=(150,),
    trips_generated=6000,
)

#: CI smoke instance: small enough for a tiny runner, big enough that the
#: warm pool's saving (no per-solve fork) is measurable over 3 solves.
SMOKE_SCALE = ExperimentScale(
    task_count=600,
    driver_counts=(80,),
    trips_generated=3000,
)

#: Pre-split knobs for the load-aware comparison: permissive enough that the
#: Gaussian downtown hotspot of the synthetic trace reliably triggers splits.
PRESPLIT_POLICY = RebalancePolicy(hot_factor=1.3, cold_factor=0.25, min_split_tasks=16)

ROUNDS = 3


def _build_instance(scale: ExperimentScale):
    config = ExperimentConfig(scale=scale, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    return config, workload.instance_with_drivers(scale.driver_counts[-1])


def _fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.per_shard_values,
    )


def _run_comparison(config, instance, rows, cols, workers):
    """Fork vs warm pool on one grid; returns the payload dict.

    One untimed warm-up solve per path first (the pool's forks its workers —
    the cost paid once per sweep; the fork path's levels first-run cache
    effects), then ``ROUNDS`` timed solves of each, *interleaved* so slow
    drift on shared runners hits both paths equally.  Every timed fork-path
    call still pays its own executor startup and teardown — that is exactly
    the overhead being amortised.
    """
    partitioner = SpatialPartitioner(config.bounding_box, rows, cols)
    fork_coordinator = DistributedCoordinator(
        partitioner, "greedy", executor="process", max_workers=workers
    )
    with PersistentWorkerPool(executor="process", worker_count=workers) as pool:
        pool_coordinator = DistributedCoordinator(
            partitioner, "greedy", executor="process", max_workers=workers
        )
        fork_result = fork_coordinator.solve(instance)
        pool_coordinator.solve(instance, pool=pool)
        fork_s = pool_s = 0.0
        pool_result = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            fork_result = fork_coordinator.solve(instance)
            fork_s += time.perf_counter() - start
            start = time.perf_counter()
            pool_result = pool_coordinator.solve(instance, pool=pool)
            pool_s += time.perf_counter() - start

    # Load-aware pre-splitting, seeded by the fork run's own load report.
    before = ShardLoadReport.from_prior(fork_result)
    refined = LoadAwarePartitioner(
        config.bounding_box, fork_result, policy=PRESPLIT_POLICY
    )
    after = ShardLoadReport.from_prior(refined.partition(instance))

    return {
        "rounds": ROUNDS,
        "wall_fork_s": fork_s,
        "wall_pool_s": pool_s,
        "warm_pool_speedup": fork_s / pool_s if pool_s > 0 else float("inf"),
        "shard_count": fork_result.report.shard_count,
        "worker_count": workers,
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "total_value": fork_result.solution.total_value,
        "served_count": fork_result.solution.served_count,
        "cpu_count": os.cpu_count(),
        "solution_parity": _fingerprint(pool_result) == _fingerprint(fork_result),
        "load_balance": {
            "max_over_mean_grid": before.max_over_mean,
            "max_over_mean_presplit": after.max_over_mean,
            "shard_count_grid": len(before.task_counts),
            "shard_count_presplit": len(after.task_counts),
        },
    }


@pytest.mark.benchmark(group="offline-pool")
def test_offline_pool_repeated_solves(save_json):
    """3x3 grid, 3 repeated solves: fork-per-call vs one warm 2-worker pool."""
    config, instance = _build_instance(OFFLINE_SCALE)
    payload = _run_comparison(config, instance, rows=3, cols=3, workers=2)
    save_json("offline_pool", payload)

    # Bit-identical pool == fork merge, unconditionally.
    assert payload["solution_parity"]
    # Pre-splitting must not worsen the balance of the grid that seeded it
    # (deterministic, so asserted on every machine).
    balance = payload["load_balance"]
    assert balance["max_over_mean_presplit"] <= balance["max_over_mean_grid"]
    assert balance["max_over_mean_grid"] > 1.0  # the grid really was skewed
    if (os.cpu_count() or 1) >= 2:
        # The acceptance gate proper: repeated solves on the warm pool must
        # at least break even against fork-per-call.
        assert payload["warm_pool_speedup"] >= 1.0


@pytest.mark.benchmark(group="offline-pool")
def test_offline_pool_smoke(save_json):
    """CI smoke gate: 2 workers, small instance, parity + cpu-gated speedup."""
    config, instance = _build_instance(SMOKE_SCALE)
    payload = _run_comparison(config, instance, rows=2, cols=2, workers=2)
    save_json("offline_pool_smoke", payload)

    assert payload["solution_parity"]
    balance = payload["load_balance"]
    assert balance["max_over_mean_presplit"] <= balance["max_over_mean_grid"]
    if (os.cpu_count() or 1) >= 2:
        assert payload["warm_pool_speedup"] >= 1.0
