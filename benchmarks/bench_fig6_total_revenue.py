"""Figure 6 — total market revenue vs. number of drivers.

Paper shape: as the number of drivers increases the market becomes denser,
more tasks are served and the total revenue generated in the market grows,
for every algorithm.
"""

import pytest

from repro.experiments import ALGORITHM_NAMES, run_market_insight_sweep


@pytest.mark.benchmark(group="fig6-9")
def test_fig6_total_revenue(benchmark, hitchhiking_workload, save_table):
    result = benchmark.pedantic(
        run_market_insight_sweep, kwargs={"workload": hitchhiking_workload}, rounds=1, iterations=1
    )
    save_table("fig6_total_revenue", result.render("total_revenue"))

    for name in ALGORITHM_NAMES:
        series = result.series(name, "total_revenue")
        benchmark.extra_info[f"revenue_{name}_max_drivers"] = series.values[-1]
        # Revenue grows with market density.
        assert series.trend() > 0.0
        assert series.values[-1] >= series.values[0]
        # Adjacent points never collapse to zero once the market is non-trivial.
        assert all(v >= 0.0 for v in series.values)
