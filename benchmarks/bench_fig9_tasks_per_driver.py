"""Figure 9 — average number of tasks served per driver vs. number of drivers.

Paper shape: mirrors Fig. 8 — as the number of drivers increases, the average
number of tasks served by each driver decreases.
"""

import pytest

from repro.experiments import ALGORITHM_NAMES, run_market_insight_sweep


@pytest.mark.benchmark(group="fig6-9")
def test_fig9_tasks_per_driver(benchmark, hitchhiking_workload, save_table):
    result = benchmark.pedantic(
        run_market_insight_sweep, kwargs={"workload": hitchhiking_workload}, rounds=1, iterations=1
    )
    save_table("fig9_tasks_per_driver", result.render("tasks_per_driver"))

    for name in ALGORITHM_NAMES:
        series = result.series(name, "tasks_per_driver")
        benchmark.extra_info[f"tasks_per_driver_{name}_max_drivers"] = series.values[-1]
        assert series.trend() < 0.0
        assert series.values[-1] < series.values[0]
        assert all(v >= 0.0 for v in series.values)
