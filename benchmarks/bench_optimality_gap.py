"""Optimality-gap benchmark: the exact tier across the scenario library.

Regenerates the "revenue with error bars" table of the ROADMAP's exact-tier
item and pins parity contract 17 at benchmark scale:

* **gap table** — per scenario, the greedy / LP / Lagrangian sandwich and
  the relative optimality gaps (shipped-vs-bound and greedy-vs-bound), plus
  per-shard gap extremes;
* **contract 17** — the ``solver_name="lp"`` merge is bit-identical across
  the serial / thread / process executors and on a warm pool, per scenario,
  with every per-shard bound record included in the fingerprint;
* **auto-selection** — ``solver_name="auto"`` at the default threshold:
  which shards kept greedy, and that the auto merge is executor-stable too;
* every gap in the artifact is asserted ``>= 0`` before it is written.

Artifacts: ``benchmarks/results/BENCH_optimality_gap.json`` (full) and
``BENCH_optimality_gap_smoke.json`` (CI gate: one scenario, 2 workers).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, PersistentWorkerPool, SpatialPartitioner
from repro.offline import DEFAULT_GAP_THRESHOLD
from repro.scenarios import compile_scenario, get_scenario, scenario_names

FULL_TRIPS, FULL_DRIVERS = 300, 36
SMOKE_TRIPS, SMOKE_DRIVERS = 150, 18

GRID_ROWS, GRID_COLS = 2, 2
POOL_WORKERS = 2
EXECUTORS = ("serial", "thread", "process")


def _fingerprint(result) -> tuple:
    """Contract 17's merge fingerprint: solution + every per-shard bound."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.per_shard_values,
        result.report.per_shard_bounds,
    )


def _gap_record(spec, pools) -> dict:
    """Solve one scenario with the exact tier and record bounds + parity."""
    compiled = compile_scenario(spec)
    instance = compiled.instance
    partitioner = SpatialPartitioner(spec.region, GRID_ROWS, GRID_COLS)

    greedy_start = time.perf_counter()
    greedy = DistributedCoordinator(partitioner, "greedy").solve(instance)
    greedy_wall = time.perf_counter() - greedy_start

    lp_prints, auto_prints = [], []
    lp_result = None
    lp_wall = 0.0
    for executor, pool in pools.items():
        start = time.perf_counter()
        result = DistributedCoordinator(partitioner, "lp", executor=executor).solve(
            instance, pool=pool
        )
        if executor == "serial":
            lp_result, lp_wall = result, time.perf_counter() - start
        lp_prints.append(_fingerprint(result))
        auto_prints.append(
            _fingerprint(
                DistributedCoordinator(
                    partitioner, "auto", executor=executor,
                    gap_threshold=DEFAULT_GAP_THRESHOLD,
                ).solve(instance, pool=pool)
            )
        )
    # The fork path (no pool) must agree with the warm-pool path.
    lp_prints.append(_fingerprint(DistributedCoordinator(partitioner, "lp").solve(instance)))

    report = lp_result.report
    assert report.bounds_reported
    shard_gaps = [b.optimality_gap for b in report.per_shard_bounds]
    auto_report = DistributedCoordinator(
        partitioner, "auto", gap_threshold=DEFAULT_GAP_THRESHOLD
    ).solve(instance).report

    return {
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "shard_count": report.shard_count,
        "greedy_revenue": report.greedy_revenue,
        "lp_revenue": report.lp_revenue,
        "lagrangian_bound": report.lagrangian_bound,
        "upper_bound": report.upper_bound,
        "optimality_gap": report.optimality_gap,
        "greedy_gap": report.greedy_gap,
        "max_shard_gap": max(shard_gaps),
        "min_shard_gap": min(shard_gaps),
        "lp_integral_shards": sum(1 for b in report.per_shard_bounds if b.lp_integral),
        "lp_repaired_shards": sum(1 for b in report.per_shard_bounds if b.lp_repaired),
        "auto_greedy_shards": sum(
            1 for b in auto_report.per_shard_bounds if b.chosen_solver == "greedy"
        ),
        "auto_lp_shards": sum(
            1 for b in auto_report.per_shard_bounds if b.chosen_solver == "lp"
        ),
        "lp_parity": all(p == lp_prints[0] for p in lp_prints),
        "auto_parity": all(p == auto_prints[0] for p in auto_prints),
        "greedy_wall_s": greedy_wall,
        "lp_wall_s": lp_wall,
    }


def _run_gap_bench(trips, drivers, names, save_json, artifact_name) -> dict:
    specs = [get_scenario(name).with_scale(trips, drivers) for name in names]
    start = time.perf_counter()
    pools = {}
    records = {}
    try:
        for executor in EXECUTORS:
            pools[executor] = PersistentWorkerPool(
                executor=executor, worker_count=POOL_WORKERS
            )
        for spec in specs:
            records[spec.name] = _gap_record(spec, pools)
    finally:
        for pool in pools.values():
            pool.close()

    for name, record in records.items():
        # Contract 17's gap invariant, asserted before anything is published.
        assert record["optimality_gap"] >= 0.0, name
        assert record["greedy_gap"] >= 0.0, name
        assert record["min_shard_gap"] >= 0.0, name
        assert record["greedy_revenue"] <= record["lp_revenue"] + 1e-6, name
        assert record["lp_revenue"] <= record["upper_bound"] + 1e-6, name

    lp_parity = all(r["lp_parity"] for r in records.values())
    auto_parity = all(r["auto_parity"] for r in records.values())
    payload = {
        "scenario_count": len(specs),
        "scenarios": names,
        "task_count": max(r["task_count"] for r in records.values()),
        "driver_count": max(r["driver_count"] for r in records.values()),
        "grid": f"{GRID_ROWS}x{GRID_COLS}",
        "worker_count": POOL_WORKERS,
        "gap_threshold": DEFAULT_GAP_THRESHOLD,
        "lp_parity": lp_parity,
        "auto_parity": auto_parity,
        "solution_parity": lp_parity and auto_parity,
        "max_optimality_gap": max(r["optimality_gap"] for r in records.values()),
        "max_greedy_gap": max(r["greedy_gap"] for r in records.values()),
        "records": records,
        "wall_clock_s": time.perf_counter() - start,
        "cpu_count": os.cpu_count(),
    }
    save_json(artifact_name, payload)
    return payload


@pytest.mark.benchmark(group="optimality-gap")
def test_optimality_gap_full(save_json):
    """Every built-in scenario through the exact tier, parity asserted."""
    payload = _run_gap_bench(
        FULL_TRIPS, FULL_DRIVERS, scenario_names(), save_json, "optimality_gap"
    )
    assert payload["scenario_count"] >= 5
    for name, record in payload["records"].items():
        assert record["lp_parity"], f"{name}: lp merge diverged across executors"
        assert record["auto_parity"], f"{name}: auto merge diverged across executors"
        # The LP tier must actually certify something: the shipped solution
        # sits within a sane distance of the bound on every scenario.
        assert record["optimality_gap"] <= 0.25, f"{name}: gap implausibly large"
    # The tier is exact on integral shards, so at least some shards across
    # the library must close their gap completely.
    assert any(r["lp_integral_shards"] > 0 for r in payload["records"].values())


@pytest.mark.benchmark(group="optimality-gap")
def test_optimality_gap_smoke(save_json):
    """CI gate: one scenario, 2 workers, the same invariants."""
    payload = _run_gap_bench(
        SMOKE_TRIPS, SMOKE_DRIVERS, ["morning-surge"], save_json, "optimality_gap_smoke"
    )
    record = payload["records"]["morning-surge"]
    assert record["lp_parity"] and record["auto_parity"]
    assert record["optimality_gap"] >= 0.0
    assert record["auto_greedy_shards"] + record["auto_lp_shards"] == record["shard_count"]
