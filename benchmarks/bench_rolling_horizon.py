"""Rolling-horizon dispatch benchmark: lookahead vs myopic, verified.

Pins the rolling-horizon acceptance criteria (parity contract 18) and
records the scenario-by-scenario comparison:

* **gate** — with the oracle forecaster (the compiled timeline replayed as
  the forecast, the upper envelope of what a live forecaster can know),
  rolling-horizon dispatch must improve **both** serve rate and mean wait
  over the myopic dispatcher on at least 4 of the 6 built-in scenarios;
* **degradation** — ``horizon=1`` is bit-identical to the myopic
  dispatcher (the lookahead machinery adds exactly nothing at horizon 1);
* **executor parity** — horizon dispatch over the streamed path is
  bit-identical across the serial / thread / process pool policies and the
  provided-pool vs own-pool paths (smoke);
* **metrics** — per-scenario myopic/horizon serve rate + mean wait deltas
  land in ``benchmarks/results/BENCH_rolling_horizon.json``.

The full run replays each compiled scenario offline (``BatchedSimulator``)
because the oracle forecaster reads the compiled task table — exactly the
"scenario-compiled timelines provide an oracle variant for testing" split:
live streams get EWMA (see the suite's ``stream-horizon`` rows in
``bench_scenarios``), the bench gate gets the oracle.

The ``smoke`` test at the bottom is the CI gate: one scenario at a reduced
scale, horizon streaming through 2-worker pools, the parity assertions,
``BENCH_rolling_horizon_smoke.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, PersistentWorkerPool, SpatialPartitioner
from repro.online import BatchedSimulator
from repro.online.batch import BatchConfig
from repro.scenarios import compile_scenario, get_scenario, scenario_names

FULL_TRIPS, FULL_DRIVERS = 400, 48
SMOKE_TRIPS, SMOKE_DRIVERS = 200, 24

#: Tuned rolling-horizon configuration (see docs/benchmarks.md): a
#: 16-window control horizon plus 4 coarse overlap blocks of 4 windows.
HORIZON, OVERLAP = 16, 4

GRID_ROWS, GRID_COLS = 2, 2
POOL_WORKERS = 2

#: Scenarios the gate must win on (out of the 6 built-ins).
GATE_WINS = 4


def _outcome_fingerprint(outcome) -> tuple:
    return (
        tuple((r.driver_id, r.task_indices, r.profit) for r in outcome.records),
        outcome.total_value,
        outcome.total_wait_s,
    )


def _solution_fingerprint(solution) -> tuple:
    return (
        solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in solution.plans),
        solution.total_value,
    )


def _compare_one(spec) -> dict:
    """Replay one compiled scenario myopically and with oracle lookahead."""
    compiled = compile_scenario(spec)
    instance = compiled.instance
    myopic_cfg = BatchConfig(window_s=spec.window_s)
    horizon_cfg = BatchConfig(
        window_s=spec.window_s, horizon=HORIZON, overlap=OVERLAP, forecast="oracle"
    )
    start = time.perf_counter()
    myopic = BatchedSimulator(instance, myopic_cfg).run()
    myopic_wall = time.perf_counter() - start
    start = time.perf_counter()
    horizon = BatchedSimulator(instance, horizon_cfg).run()
    horizon_wall = time.perf_counter() - start
    # horizon=1 must reproduce the myopic run bit for bit.
    degraded = BatchedSimulator(
        instance, BatchConfig(window_s=spec.window_s, horizon=1)
    ).run()
    return {
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "myopic": {
            "serve_rate": myopic.serve_rate,
            "mean_wait_s": myopic.mean_wait_s,
            "total_revenue": myopic.total_revenue,
            "wall_clock_s": myopic_wall,
        },
        "horizon": {
            "serve_rate": horizon.serve_rate,
            "mean_wait_s": horizon.mean_wait_s,
            "total_revenue": horizon.total_revenue,
            "wall_clock_s": horizon_wall,
        },
        "serve_rate_delta": horizon.serve_rate - myopic.serve_rate,
        "mean_wait_delta_s": horizon.mean_wait_s - myopic.mean_wait_s,
        "improved_both": (
            horizon.serve_rate > myopic.serve_rate
            and horizon.mean_wait_s < myopic.mean_wait_s
        ),
        "horizon1_equals_myopic": (
            _outcome_fingerprint(degraded) == _outcome_fingerprint(myopic)
        ),
    }


@pytest.mark.benchmark(group="rolling-horizon")
def test_rolling_horizon_full(save_json):
    """Oracle lookahead beats myopic on >= 4 of 6 scenarios, both metrics."""
    names = scenario_names()
    start = time.perf_counter()
    comparison = {
        name: _compare_one(get_scenario(name).with_scale(FULL_TRIPS, FULL_DRIVERS))
        for name in names
    }
    wins = sum(record["improved_both"] for record in comparison.values())
    payload = {
        "scenario_count": len(names),
        "scenarios": names,
        "horizon": HORIZON,
        "overlap": OVERLAP,
        "forecast": "oracle",
        "improved_both_count": wins,
        "comparison": comparison,
        "wall_clock_s": time.perf_counter() - start,
        "cpu_count": os.cpu_count(),
    }
    save_json("rolling_horizon", payload)
    for name, record in comparison.items():
        assert record["horizon1_equals_myopic"], f"{name}: horizon=1 != myopic"
    assert wins >= GATE_WINS, (
        f"rolling horizon improved both serve rate and mean wait on only "
        f"{wins}/{len(names)} scenarios (need {GATE_WINS}): "
        f"{ {n: r['improved_both'] for n, r in comparison.items()} }"
    )


@pytest.mark.benchmark(group="rolling-horizon")
def test_rolling_horizon_smoke(save_json):
    """CI gate: horizon streaming parity on 2-worker pools, one scenario."""
    spec = get_scenario("stadium-event").with_scale(SMOKE_TRIPS, SMOKE_DRIVERS)
    compiled = compile_scenario(spec)
    instance = compiled.instance
    batches = compiled.arrival_batches()
    partitioner = SpatialPartitioner(spec.region, GRID_ROWS, GRID_COLS)
    # Live streams forecast with EWMA (the oracle would need the future).
    horizon_cfg = BatchConfig(window_s=spec.window_s, horizon=HORIZON, overlap=OVERLAP)
    myopic_cfg = BatchConfig(window_s=spec.window_s)

    start = time.perf_counter()
    prints = {}
    reports = {}
    pools = {}
    try:
        for executor in ("serial", "thread", "process"):
            pools[executor] = PersistentWorkerPool(
                executor=executor, worker_count=POOL_WORKERS
            )
        for executor, pool in pools.items():
            coordinator = DistributedCoordinator(partitioner, executor=executor)
            result = coordinator.solve_stream(
                instance, batches, config=horizon_cfg, pool=pool
            )
            prints[executor] = _solution_fingerprint(result.solution)
            reports[executor] = result.report
        # Own-pool path (workers forked by the coordinator) must agree too.
        own = DistributedCoordinator(
            partitioner, executor="process"
        ).solve_stream(instance, batches, config=horizon_cfg)
        prints["own-pool"] = _solution_fingerprint(own.solution)
        # Myopic baseline and horizon=1 degradation on the warm serial pool.
        coordinator = DistributedCoordinator(partitioner, executor="serial")
        myopic = coordinator.solve_stream(
            instance, batches, config=myopic_cfg, pool=pools["serial"]
        )
        degraded = coordinator.solve_stream(
            instance,
            batches,
            config=BatchConfig(window_s=spec.window_s, horizon=1),
            pool=pools["serial"],
        )
    finally:
        for pool in pools.values():
            pool.close()

    parity = all(p == prints["serial"] for p in prints.values())
    degradation = _solution_fingerprint(degraded.solution) == _solution_fingerprint(
        myopic.solution
    )
    payload = {
        "scenario": spec.name,
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "worker_count": POOL_WORKERS,
        "grid": f"{GRID_ROWS}x{GRID_COLS}",
        "horizon": HORIZON,
        "overlap": OVERLAP,
        "forecast": "ewma",
        "executor_parity": parity,
        "horizon1_equals_myopic": degradation,
        "myopic": {
            "serve_rate": myopic.solution.serve_rate,
            "mean_wait_s": myopic.report.mean_wait_s,
        },
        "horizon_stream": {
            "serve_rate": own.solution.serve_rate,
            "mean_wait_s": reports["serial"].mean_wait_s,
        },
        "wall_clock_s": time.perf_counter() - start,
        "cpu_count": os.cpu_count(),
    }
    save_json("rolling_horizon_smoke", payload)
    assert parity, f"horizon stream fingerprints diverge: { {k: hash(v) for k, v in prints.items()} }"
    assert degradation, "horizon=1 stream != myopic stream"
    assert all(r.mean_wait_s == reports["serial"].mean_wait_s for r in reports.values())
