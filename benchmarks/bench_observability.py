"""Overhead budget for the flight recorder (parity contract 19's gate).

The tracing layer buys per-phase visibility into the dispatch hot path —
candidate-kernel build, per-window Hungarian, merge — and it must stay
cheap enough to leave on in soaks.  Two costs are measured on the same
streamed workload, interleaved so machine drift hits both arms equally:

* **traced** — ``solve_stream`` with an active :class:`TraceRecorder`;
  every hot-path span is recorded and stitched.  Gate: < 5% wall-clock
  overhead over the untraced run (min-of-rounds, to shed scheduler noise).
* **disabled** — tracing off, ``span()`` returns a shared null object.
  The per-call cost is microbenchmarked and multiplied by the span count a
  traced run actually records, then compared to the untraced wall clock.
  Gate: < 1%.

Parity is asserted unconditionally: the traced merge must be bit-identical
to the untraced one.  The per-phase breakdown (candidates / hungarian / lp /
transport / merge seconds) lands in
``benchmarks/results/BENCH_observability.json``; the ``smoke`` test at the
bottom is the CI gate (small instance, ``BENCH_observability_smoke.json``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.obs import trace as obs_trace
from repro.online.batch import BatchConfig
from repro.trace import WorkingModel

#: Streamed workload for the scaling run: enough windows that the per-span
#: clock reads are amortised over real Hungarian work.
OBS_SCALE = ExperimentScale(
    task_count=1200,
    driver_counts=(150,),
    trips_generated=6000,
)

#: CI smoke instance: small enough for a tiny runner, big enough that the
#: untraced wall clock dwarfs timer granularity.
SMOKE_SCALE = ExperimentScale(
    task_count=400,
    driver_counts=(60,),
    trips_generated=2000,
)

WINDOW_S = 600.0
DISABLED_CALLS = 200_000


def _build_instance(scale: ExperimentScale):
    config = ExperimentConfig(scale=scale, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    return config, workload.instance_with_drivers(scale.driver_counts[-1])


def _fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
        result.report.total_value,
        result.report.served_count,
    )


def _stream(config, instance):
    with DistributedCoordinator(
        SpatialPartitioner(config.bounding_box, 2, 2), executor="serial"
    ) as coordinator:
        return coordinator.solve_stream(instance, config=BatchConfig(window_s=WINDOW_S))


def _disabled_span_cost_s() -> float:
    """Per-call cost of ``span()`` with no recorder installed."""
    obs_trace.disable_tracing()
    start = time.perf_counter()
    for _ in range(DISABLED_CALLS):
        with obs_trace.span("noop"):
            pass
    return (time.perf_counter() - start) / DISABLED_CALLS


def _run_comparison(config, instance, rounds):
    """Traced vs untraced streamed solves, interleaved; returns the payload.

    One untimed warm-up per arm first (candidate caches, import costs),
    then ``rounds`` timed runs of each.  The serial executor keeps the
    measurement free of fork/scheduler noise — the span machinery being
    costed is identical under every executor policy.
    """
    untraced_result = _stream(config, instance)  # warm-up, reused for parity
    recorder = obs_trace.enable_tracing()
    try:
        _stream(config, instance)
    finally:
        obs_trace.disable_tracing()

    untraced_s = []
    traced_s = []
    traced_result = None
    spans = ()
    for _ in range(rounds):
        start = time.perf_counter()
        untraced_result = _stream(config, instance)
        untraced_s.append(time.perf_counter() - start)

        recorder = obs_trace.enable_tracing()
        try:
            start = time.perf_counter()
            traced_result = _stream(config, instance)
            traced_s.append(time.perf_counter() - start)
        finally:
            obs_trace.disable_tracing()
        spans = recorder.export()

    wall_untraced = min(untraced_s)
    wall_traced = min(traced_s)
    span_cost_s = _disabled_span_cost_s()
    phase_seconds = dict(obs_trace.phase_totals(spans))

    return {
        "rounds": rounds,
        "executor": "serial",
        "task_count": instance.task_count,
        "driver_count": instance.driver_count,
        "wall_untraced_s": wall_untraced,
        "wall_traced_s": wall_traced,
        "traced_overhead_pct": (wall_traced / wall_untraced - 1.0) * 100.0,
        "span_count": len(spans),
        "disabled_span_cost_ns": span_cost_s * 1e9,
        "disabled_overhead_pct": (
            len(spans) * span_cost_s / wall_untraced * 100.0
        ),
        "phase_seconds": phase_seconds,
        "solution_parity": _fingerprint(traced_result) == _fingerprint(untraced_result),
        "cpu_count": os.cpu_count(),
    }


def _assert_gates(payload):
    # Parity is unconditional: tracing must never change a dispatch outcome.
    assert payload["solution_parity"]
    # The breakdown covers the instrumented hot path.
    assert payload["phase_seconds"]["candidates"] > 0.0
    assert payload["phase_seconds"]["hungarian"] >= 0.0
    # Overhead budgets from the contract: traced < 5%, disabled < 1%.
    assert payload["traced_overhead_pct"] < 5.0
    assert payload["disabled_overhead_pct"] < 1.0


@pytest.mark.benchmark(group="observability")
def test_observability_overhead(save_json):
    """Scaling run: 5 interleaved rounds on the 1200-task stream."""
    config, instance = _build_instance(OBS_SCALE)
    payload = _run_comparison(config, instance, rounds=5)
    save_json("observability", payload)
    _assert_gates(payload)


@pytest.mark.benchmark(group="observability")
def test_observability_smoke(save_json):
    """CI smoke gate: 3 rounds on the small instance, same budgets."""
    config, instance = _build_instance(SMOKE_SCALE)
    payload = _run_comparison(config, instance, rounds=3)
    save_json("observability_smoke", payload)
    _assert_gates(payload)
