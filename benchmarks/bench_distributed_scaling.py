"""Scaling benchmark — process-pool shard fan-out vs the serial coordinator.

The paper's distributed story is that disjoint spatial shards can be solved
independently; PR 2's process executor is what actually buys wall-clock from
that independence.  This benchmark solves one city-scale instance twice —
serially and on a 4-worker process pool over an 8-shard (4x2) grid — and
asserts two things:

* **parity is unconditional**: the merged solutions are bit-identical
  (assignments *and* profits), on any machine;
* **speed scales with cores**: on a box with >= 4 usable cores the process
  pool must reach at least 2x the serial wall-clock.  On smaller boxes (CI
  containers are often 1-2 cores) a wall-clock assertion would measure the
  scheduler, not the code, so the gate falls back to the report's
  critical-path speedup — total worker time over the slowest shard, i.e. the
  speedup the fan-out achieves as soon as the cores exist.

Both runs are recorded in ``benchmarks/results/BENCH_distributed_scaling.json``
(wall times, speedup vs serial, shard/worker/core counts) so regressions are
diffable.  The ``smoke`` test at the bottom is the CI gate: a
2-worker fan-out on a small instance asserting parity and non-regression.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.trace import WorkingModel

#: City-scale instance for the scaling run: several times the paper's task
#: count so per-shard solve time dominates the process pool's startup cost
#: (with 600 tasks the whole serial solve is ~0.1 s and a wall-clock gate
#: would measure fork overhead, not the fan-out).
SCALING_SCALE = ExperimentScale(
    task_count=2400,
    driver_counts=(240,),
    trips_generated=12000,
)

#: Instance for the CI smoke fan-out: small enough to finish in seconds on a
#: tiny runner, big enough that the serial solve (~0.5 s) dominates the
#: 2-worker pool's startup cost, so "speedup >= 1" tests the fan-out rather
#: than the fork overhead.
SMOKE_SCALE = ExperimentScale(
    task_count=800,
    driver_counts=(100,),
    trips_generated=4000,
)


def _build_instance(scale: ExperimentScale):
    config = ExperimentConfig(scale=scale, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    return config, workload.instance_with_drivers(scale.driver_counts[-1])


def _timed_solve(coordinator, instance, rounds: int = 1):
    """Solve ``rounds`` times and keep the best wall-clock — best-of-N damps
    noisy-neighbor effects on shared runners without hiding real cost."""
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = coordinator.solve(instance)
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def _fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
    )


def _record(save_json, name, serial_result, serial_s, pooled_result, pooled_s, workers):
    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    payload = {
        "wall_serial_s": serial_s,
        "wall_process_s": pooled_s,
        "speedup_vs_serial": speedup,
        "critical_path_speedup": pooled_result.report.critical_path_speedup,
        "shard_count": pooled_result.report.shard_count,
        "empty_shard_count": pooled_result.report.empty_shard_count,
        "worker_count": workers,
        "cpu_count": os.cpu_count(),
        "task_count": pooled_result.solution.instance.task_count,
        "driver_count": pooled_result.solution.instance.driver_count,
        "total_value": pooled_result.solution.total_value,
        "served_count": pooled_result.solution.served_count,
        "solution_parity": _fingerprint(serial_result) == _fingerprint(pooled_result),
    }
    save_json(name, payload)
    return payload


@pytest.mark.benchmark(group="distributed")
def test_process_pool_scaling(save_json):
    """8 shards, 4 process workers, city-scale instance."""
    config, instance = _build_instance(SCALING_SCALE)
    partitioner = SpatialPartitioner(config.bounding_box, 4, 2)
    workers = 4

    serial_result, serial_s = _timed_solve(
        DistributedCoordinator(partitioner, "greedy", executor="serial"), instance
    )
    pooled_result, pooled_s = _timed_solve(
        DistributedCoordinator(partitioner, "greedy", executor="process", max_workers=workers),
        instance,
    )
    payload = _record(
        save_json, "distributed_scaling", serial_result, serial_s, pooled_result, pooled_s, workers
    )

    # Bit-identical merge, unconditionally.
    assert payload["solution_parity"]
    assert pooled_result.report.shard_count == 8

    usable_cores = os.cpu_count() or 1
    if usable_cores >= 4:
        # The acceptance gate proper: >= 2x serial wall-clock with 4 workers.
        assert payload["speedup_vs_serial"] >= 2.0
    else:
        # Not enough cores to observe wall-clock scaling; gate on the
        # fan-out's critical path instead (what the pool achieves once the
        # cores exist): total worker time must be >= 2x the slowest shard.
        assert payload["critical_path_speedup"] >= 2.0


@pytest.mark.benchmark(group="distributed")
def test_process_fanout_smoke(save_json):
    """CI smoke gate: 2 workers, small instance, parity + non-regression."""
    config, instance = _build_instance(SMOKE_SCALE)
    partitioner = SpatialPartitioner(config.bounding_box, 2, 2)
    workers = 2

    serial_result, serial_s = _timed_solve(
        DistributedCoordinator(partitioner, "greedy", executor="serial"), instance, rounds=2
    )
    pooled_result, pooled_s = _timed_solve(
        DistributedCoordinator(partitioner, "greedy", executor="process", max_workers=workers),
        instance,
        rounds=2,
    )
    payload = _record(
        save_json, "distributed_smoke", serial_result, serial_s, pooled_result, pooled_s, workers
    )

    assert payload["solution_parity"]
    if (os.cpu_count() or 1) >= 2:
        # With two real cores the 2-worker fan-out must at least break even.
        assert payload["speedup_vs_serial"] >= 1.0
