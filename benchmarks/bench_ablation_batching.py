"""Ablation — batched (rolling-horizon) dispatch window.

The paper lists non-heuristic online algorithms as future work; the batched
dispatcher is the standard industrial step in that direction.  This ablation
sweeps the batching window on the same workload and compares against the
per-order maxMargin heuristic and the clairvoyant offline greedy:

* a window of a couple of minutes recovers a sizeable share of the gap
  between the per-order heuristic and the offline plan;
* windows longer than the riders' publish lead start missing pickup
  deadlines and the value collapses — batching is a latency/quality
  trade-off, not a free lunch.
"""

import pytest

from repro.analysis import format_table
from repro.offline import greedy_assignment
from repro.online import MaxMarginDispatcher, OnlineSimulator, run_batched

WINDOWS_S = (30.0, 120.0, 300.0, 600.0)


def run_batching_ablation(instance):
    offline = greedy_assignment(instance).total_value
    per_order = OnlineSimulator(instance, MaxMarginDispatcher()).run().total_value
    rows = []
    for window in WINDOWS_S:
        outcome = run_batched(instance, window_s=window)
        rows.append(
            {
                "window_s": window,
                "profit": outcome.total_value,
                "serve_rate": outcome.serve_rate,
                "vs_per_order": outcome.total_value / per_order if per_order > 0 else 0.0,
                "vs_offline": outcome.total_value / offline if offline > 0 else 0.0,
            }
        )
    return offline, per_order, rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_batching_window(benchmark, hitchhiking_workload, save_table):
    instance = hitchhiking_workload.instance_with_drivers(
        hitchhiking_workload.config.scale.driver_counts[-1]
    )
    offline, per_order, rows = benchmark.pedantic(
        run_batching_ablation, args=(instance,), rounds=1, iterations=1
    )
    table = format_table(
        ["window_s", "profit", "serve_rate", "vs maxMargin", "vs offline greedy"],
        [[r["window_s"], r["profit"], r["serve_rate"], r["vs_per_order"], r["vs_offline"]] for r in rows],
    )
    save_table(
        "ablation_batching",
        f"Batched-dispatch ablation (offline greedy = {offline:.2f}, per-order maxMargin = {per_order:.2f})\n"
        + table,
    )
    benchmark.extra_info["per_order_profit"] = per_order
    benchmark.extra_info["best_batched_profit"] = max(r["profit"] for r in rows)

    # Short windows must be competitive with the per-order heuristic.
    best = max(r["profit"] for r in rows)
    assert best >= 0.8 * per_order
    # Nothing beats the clairvoyant offline plan.
    for r in rows:
        assert r["profit"] <= offline + 1e-6
