"""Figure 5 (right) — performance ratio vs. driver count, home-work-home model.

Paper shape: same algorithm ordering as the hitchhiking plot (Greedy best,
then maxMargin, then Nearest), with ratios generally no better than in the
hitchhiking model.
"""

import pytest

from repro.analysis import BoundKind
from repro.experiments import GREEDY, MAX_MARGIN, NEAREST, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_performance_ratio_home_work_home(benchmark, home_work_home_workload, save_table):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"workload": home_work_home_workload, "bound_kind": BoundKind.LP_RELAXATION},
        rounds=1,
        iterations=1,
    )
    save_table("fig5_home_work_home", result.render())
    for name in (GREEDY, MAX_MARGIN, NEAREST):
        benchmark.extra_info[f"mean_ratio_{name}"] = float(
            sum(result.ratio_series(name)) / len(result.points)
        )

    for name in (GREEDY, MAX_MARGIN, NEAREST):
        assert all(r >= 1.0 - 1e-6 for r in result.ratio_series(name))

    assert result.mean_efficiency(GREEDY) >= result.mean_efficiency(MAX_MARGIN) - 0.03
    assert result.mean_efficiency(GREEDY) >= result.mean_efficiency(NEAREST) - 0.02
    assert max(result.ratio_series(GREEDY)) < 2.0
