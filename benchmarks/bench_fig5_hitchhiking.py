"""Figure 5 (left) — performance ratio vs. driver count, hitchhiking model.

Paper shape: all three algorithms stay within a small factor of the LP
relaxation upper bound Z*_f; the offline Greedy achieves the best (lowest)
ratio, the online maxMargin heuristic is second and Nearest is worst.
"""

import pytest

from repro.analysis import BoundKind
from repro.experiments import GREEDY, MAX_MARGIN, NEAREST, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_performance_ratio_hitchhiking(benchmark, hitchhiking_workload, save_table):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"workload": hitchhiking_workload, "bound_kind": BoundKind.LP_RELAXATION},
        rounds=1,
        iterations=1,
    )
    save_table("fig5_hitchhiking", result.render())
    for name in (GREEDY, MAX_MARGIN, NEAREST):
        benchmark.extra_info[f"mean_ratio_{name}"] = float(
            sum(result.ratio_series(name)) / len(result.points)
        )

    # Every achieved profit respects the upper bound.
    for name in (GREEDY, MAX_MARGIN, NEAREST):
        assert all(r >= 1.0 - 1e-6 for r in result.ratio_series(name))

    # Who-wins shape: greedy is the best algorithm on average, nearest the worst.
    assert result.mean_efficiency(GREEDY) >= result.mean_efficiency(MAX_MARGIN) - 0.03
    assert result.mean_efficiency(MAX_MARGIN) >= result.mean_efficiency(NEAREST) - 0.02

    # Magnitude: the greedy ratio stays modest (the paper reports ratios well
    # under 2 across the sweep).
    assert max(result.ratio_series(GREEDY)) < 2.0
