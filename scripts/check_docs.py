#!/usr/bin/env python3
"""Docs gate: link/reference check over ``docs/`` + README, and execute the
README quickstart snippet.

Three checks, so the project's front door cannot rot:

1. **Markdown links** — every relative link target in ``README.md`` and
   ``docs/*.md`` must exist on disk (external ``http(s)`` links are left
   alone: CI should not fail on someone else's outage).
2. **Backticked path references** — prose like ``tests/distributed/...`` or
   ``benchmarks/results/BENCH_*.json`` is treated as a reference when it
   contains a ``/`` and looks like a repo path; the file (or, for globs, at
   least one match) must exist.  Docs that name a test pinning a contract
   stay honest this way.
3. **Quickstart execution** — the first ``python`` code block in the README
   is extracted and executed with ``src/`` on the path; the snippet every
   new reader copy-pastes must actually run.

Exit code 0 when everything holds, 1 with a per-finding report otherwise.
Run from anywhere: ``python scripts/check_docs.py``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
BACKTICK_REF = re.compile(r"`([^`\s]+)`")
#: Path-looking backticked tokens: contain a slash and end in a known
#: extension (or a trailing slash for directories).
PATH_SUFFIXES = (".py", ".md", ".json", ".txt", ".yml", ".csv", "/")


def check_links(path: Path, text: str) -> list[str]:
    problems = []
    for target in MARKDOWN_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def check_path_references(path: Path, text: str) -> list[str]:
    problems = []
    for token in BACKTICK_REF.findall(text):
        if "/" not in token or not token.endswith(PATH_SUFFIXES):
            continue
        candidate = token.rstrip("/")
        # Docs name library packages by their layer shorthand (`geo/`,
        # `market/streaming.py`): resolve against src/repro/ too.
        roots = (REPO_ROOT, REPO_ROOT / "src" / "repro")
        if any(ch in candidate for ch in "*?["):
            if not any(list(root.glob(candidate)) for root in roots):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: glob reference matches nothing -> {token}"
                )
        elif not any((root / candidate).exists() for root in roots):
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: dangling path reference -> {token}"
            )
    return problems


def extract_quickstart(readme_text: str) -> str | None:
    match = re.search(r"```python\n(.*?)```", readme_text, flags=re.DOTALL)
    return match.group(1) if match else None


def run_quickstart(snippet: str) -> list[str]:
    with tempfile.NamedTemporaryFile(
        "w", suffix="_quickstart.py", delete=False, dir=REPO_ROOT
    ) as handle:
        handle.write(snippet)
        script = Path(handle.name)
    try:
        src = str(REPO_ROOT / "src")
        inherited = os.environ.get("PYTHONPATH")
        proc = subprocess.run(
            [sys.executable, str(script)],
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": f"{src}{os.pathsep}{inherited}" if inherited else src,
            },
            capture_output=True,
            text=True,
            timeout=600,
        )
    finally:
        script.unlink(missing_ok=True)
    if proc.returncode != 0:
        return [
            "README quickstart snippet failed "
            f"(exit {proc.returncode}):\n{proc.stdout}{proc.stderr}"
        ]
    return []


def main() -> int:
    problems: list[str] = []
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        problems += check_links(path, text)
        problems += check_path_references(path, text)

    readme_text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    snippet = extract_quickstart(readme_text)
    if snippet is None:
        problems.append("README.md has no ```python quickstart block to execute")
    else:
        problems += run_quickstart(snippet)

    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in DOC_FILES)
    print(f"docs check OK ({checked}; quickstart executed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
